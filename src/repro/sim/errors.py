"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Internal control-flow exception that ends :meth:`Environment.run`.

    Carries the value of the event that terminated the run.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies an arbitrary ``cause`` that the
    interrupted process can inspect to decide how to react.
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]
