"""Event primitives for the discrete-event simulation kernel.

The kernel is organized around :class:`Event` objects.  An event moves
through three states:

* *pending* — created but not yet scheduled;
* *triggered* — given a value (or an exception) and placed on the
  environment's event heap;
* *processed* — popped from the heap; all callbacks have run.

Processes (see :mod:`repro.sim.process`) communicate exclusively by
yielding events and by succeeding/failing them.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, List, Optional

from .errors import SimulationError

#: Scheduling priorities.  Lower sorts earlier at equal simulation time.
URGENT = 0
NORMAL = 1

#: Sentinel distinguishing "not yet triggered" from "triggered with None".
PENDING = object()


class Event:
    """A one-shot occurrence that other entities can wait for.

    Parameters
    ----------
    env:
        The :class:`~repro.sim.core.Environment` the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused",
                 "_cancelled")

    def __init__(self, env):
        self.env = env
        #: Callables invoked with the event once it is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False
        #: Lazy-cancellation tombstone flag (see ``Environment.cancel``).
        self._cancelled: bool = False

    def __repr__(self):  # pragma: no cover - debugging aid
        state = (
            "pending"
            if self._value is PENDING
            else ("processed" if self.callbacks is None else "triggered")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the heap."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise SimulationError("value of event is not yet available")
        return self._ok

    @property
    def value(self):
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError("value of event is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure was handled and must not crash the run."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined ``env.schedule(self)`` — succeed() is the kernel's
        # hottest trigger path.
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see the exception re-raised at their
        ``yield`` statement.  If nobody handles it, the simulation run
        crashes (unless the event is *defused*).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (processed) event.

        Useful as a callback to chain events together.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Hot path: tens of thousands of timers per run.  Assign state
        # directly and push onto the heap in place (same entry a call
        # to ``env.schedule`` would produce) instead of chaining
        # through ``Event.__init__`` + ``Environment.schedule``.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._cancelled = False
        self.delay = delay
        heappush(
            env._queue, (env._now + delay, NORMAL, next(env._eid), self)
        )

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay}>"


class Deferred:
    """Minimal heap entry for a fire-and-forget callback.

    Carries exactly the state ``Environment.step`` touches — a
    callbacks list plus the ok/defused/cancelled flags — and nothing
    else, so ``Environment.schedule_callback`` can skip the full
    :class:`Timeout` construction path.  A ``Deferred`` is a cancel
    handle, not an event: processes cannot yield on it and it has no
    value accessors.
    """

    __slots__ = ("callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, fn: Callable[["Deferred"], None]):
        self.callbacks: Optional[List[Callable]] = [fn]
        self._value = None
        self._ok = True
        self._defused = False
        self._cancelled = False

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "processed" if self.callbacks is None else "scheduled"
        return f"<Deferred {state} at {id(self):#x}>"


class Initialize(Event):
    """Immediately-scheduled event used to start a new process."""

    __slots__ = ()

    def __init__(self, env, process):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class ConditionValue:
    """Ordered mapping of events to values produced by :class:`Condition`.

    Behaves like a read-only dict keyed by the original event objects,
    preserving their creation order.
    """

    __slots__ = ("events",)

    def __init__(self):
        self.events: List[Event] = []

    def __getitem__(self, key: Event):
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        return self.todict() == other

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (e._value for e in self.events)

    def items(self):
        return ((e, e._value) for e in self.events)

    def todict(self) -> dict:
        return {e: e._value for e in self.events}


class Condition(Event):
    """Waits for a boolean combination of events (``&``/``|``).

    The condition's value is a :class:`ConditionValue` containing the
    values of all events that had triggered by the time the condition
    itself triggered.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env, evaluate: Callable[[List[Event], int], bool],
                 events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        # Evaluate immediately in case the events already triggered.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and self._value is PENDING:
            self.succeed(ConditionValue())

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    def _build_value(self, event: Event) -> None:
        self._remove_check_callbacks()
        if event._ok:
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    def _remove_check_callbacks(self) -> None:
        for event in self._events:
            if event.callbacks is not None and self._check in event.callbacks:
                event.callbacks.remove(self._check)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self._remove_check_callbacks()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            # Delay value construction until all currently-scheduled
            # sibling events at this timestep have been processed.
            urgent = Event(self.env)
            urgent.callbacks.append(self._build_value)
            urgent._ok = True
            urgent._value = None
            self.env.schedule(urgent, priority=URGENT)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that triggers when *all* the given events trigger."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers when *any* of the given events triggers."""

    __slots__ = ()

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)
