"""Shared-resource primitives built on top of the event kernel.

Provides the queueing abstractions used by the fabric model:

* :class:`Store` — unbounded/bounded FIFO of arbitrary items;
* :class:`PriorityStore` — items dequeued lowest-priority-value first;
* :class:`FilterStore` — get with a predicate;
* :class:`Resource` — counted resource with FIFO request queue.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, List, Optional

from .core import Environment, Infinity
from .events import Event


class StorePut(Event):
    """Event returned by :meth:`Store.put`; triggers when the item is stored."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger_put_get()


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; triggers with the item."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.env)
        self.filter = filter
        store._get_queue.append(self)
        store._trigger_put_get()

    def cancel(self) -> None:
        """Withdraw this get request if it has not yet been fulfilled."""
        if not self.triggered:
            # Lazily removed by the store when it scans its queue.
            self.filter = _never


def _never(item: Any) -> bool:
    return False


class Store:
    """A FIFO store of items with blocking put/get semantics.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of stored items; ``inf`` (default) for unbounded.
    """

    def __init__(self, env: Environment, capacity: float = Infinity):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Request to add ``item``; blocks while the store is full."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request to remove and return the oldest item."""
        return StoreGet(self)

    # -- internals ------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._store_item(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self._take_item())
            return True
        return False

    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _take_item(self) -> Any:
        return self.items.pop(0)

    def _trigger_put_get(self) -> None:
        """Match queued puts and gets until no more progress is possible."""
        progress = True
        while progress:
            progress = False
            # Drop cancelled/processed gets.
            while self._get_queue and self._get_queue[0].triggered:
                self._get_queue.pop(0)
            if self._put_queue and not self._put_queue[0].triggered:
                if self._do_put(self._put_queue[0]):
                    self._put_queue.pop(0)
                    progress = True
            elif self._put_queue:
                self._put_queue.pop(0)
                progress = True
            if self._get_queue and not self._get_queue[0].triggered:
                if self._do_get(self._get_queue[0]):
                    self._get_queue.pop(0)
                    progress = True
            elif self._get_queue:
                self._get_queue.pop(0)
                progress = True


class PriorityItem:
    """Wrapper pairing a sortable priority with an arbitrary item."""

    __slots__ = ("priority", "item", "_seq")
    _counter = count()

    def __init__(self, priority, item):
        self.priority = priority
        self.item = item
        self._seq = next(PriorityItem._counter)

    def __lt__(self, other: "PriorityItem") -> bool:
        if self.priority == other.priority:
            return self._seq < other._seq
        return self.priority < other.priority

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """A store whose :meth:`get` returns the lowest-priority item first.

    Items must be :class:`PriorityItem` instances (or anything mutually
    comparable).  Ties break FIFO.
    """

    def _store_item(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _take_item(self) -> Any:
        return heapq.heappop(self.items)


class FilterStore(Store):
    """A store whose :meth:`get` accepts a predicate over items."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> StoreGet:
        return StoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        for i, item in enumerate(self.items):
            if event.filter(item):
                del self.items[i]
                event.succeed(item)
                return True
        return False

    def _trigger_put_get(self) -> None:
        # Unlike FIFO stores, a blocked head-of-line get must not block
        # later gets whose filters may match.
        progress = True
        while progress:
            progress = False
            if self._put_queue and not self._put_queue[0].triggered:
                if self._do_put(self._put_queue[0]):
                    self._put_queue.pop(0)
                    progress = True
            elif self._put_queue:
                self._put_queue.pop(0)
                progress = True
            for event in list(self._get_queue):
                if event.triggered:
                    self._get_queue.remove(event)
                    progress = True
                elif self._do_get(event):
                    self._get_queue.remove(event)
                    progress = True


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`."""

    __slots__ = ("resource", "_released")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self._released = False
        resource._queue.append(self)
        resource._trigger()

    def release(self) -> None:
        """Release the slot held (or still queued for) by this request."""
        self.resource.release(self)

    # Support `with resource.request() as req: yield req`.
    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.release()


class Resource:
    """A counted resource with a FIFO wait queue.

    ``capacity`` concurrent holders are allowed; additional requests
    block until a holder releases.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self._queue: List[ResourceRequest] = []

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        """Queue for a slot; the returned event triggers when granted."""
        return ResourceRequest(self)

    def release(self, request: ResourceRequest) -> None:
        """Return the slot held by ``request`` (idempotent)."""
        if request._released:
            return
        request._released = True
        if request in self.users:
            self.users.remove(request)
        elif request in self._queue:
            self._queue.remove(request)
        self._trigger()

    def _trigger(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            req = self._queue.pop(0)
            if req._released:
                continue
            self.users.append(req)
            req.succeed()
