"""Generator-based processes for the discrete-event kernel.

A *process* wraps a Python generator.  The generator yields
:class:`~repro.sim.events.Event` instances; the process suspends until
the yielded event is processed, at which point the event's value is sent
back into the generator (or its exception is thrown into it).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .errors import Interrupt, SimulationError
from .events import Event, Initialize, PENDING, URGENT


class Process(Event):
    """The execution of a generator inside an environment.

    A process is itself an event: it triggers with the generator's
    return value when the generator exits, or with the exception that
    escaped it.  Other processes can therefore ``yield`` a process to
    wait for its completion.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env, generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event the process is currently waiting for (None if the
        #: process is being initialized or has terminated).
        self._target: Optional[Event] = Initialize(env, self)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Process {self.name} ({'alive' if self.is_alive else 'dead'})>"

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process may be interrupted at any time while alive; the
        interrupt supersedes whatever event it was waiting for (the
        event remains valid and may be re-yielded).
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=URGENT)

    # -- kernel interface -------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the value/exception of ``event``."""
        env = self.env
        env._active_process = self

        # Detach from the previous target; an interrupt may arrive while
        # we are still registered with another event.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # Mark handled; the generator may re-raise.
                    event.defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                # Generator finished: the process event succeeds.
                env._active_process = None
                self._ok = True
                self._value = exc.value
                env.schedule(self)
                return
            except BaseException as exc:
                env._active_process = None
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                error = SimulationError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                self._ok = False
                self._value = error
                env.schedule(self)
                return

            if next_event.callbacks is not None:
                # Event not yet processed: register and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                env._active_process = None
                return

            # Event already processed; continue immediately with its value.
            event = next_event
