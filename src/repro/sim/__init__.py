"""A self-contained discrete-event simulation kernel.

This subpackage replaces the OPNET Modeler kernel used by the paper
(and the ``simpy`` library, unavailable offline) with a minimal,
well-tested equivalent: an event heap, generator-based processes, and
queueing resources.

Quick example::

    from repro.sim import Environment

    env = Environment()

    def clock(env, period):
        while True:
            yield env.timeout(period)
            print(env.now)

    env.process(clock(env, 1.0))
    env.run(until=3.5)
"""

from .core import Environment, Infinity
from .errors import EmptySchedule, Interrupt, SimulationError
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Deferred,
    Event,
    Timeout,
)
from .monitor import Counter, Monitor, Tally
from .process import Process
from .resources import (
    FilterStore,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Counter",
    "Deferred",
    "EmptySchedule",
    "Environment",
    "Event",
    "FilterStore",
    "Infinity",
    "Interrupt",
    "Monitor",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Tally",
    "Timeout",
]
