"""Lightweight instrumentation helpers for simulations.

The experiment harness records scalar time series (queue depths, busy
periods, event counts) with :class:`Monitor`, and aggregates them with
:class:`Counter`/:class:`Tally` without storing full traces.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class Monitor:
    """Records ``(time, value)`` samples of a scalar quantity."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"monitor {self.name!r}: time {time} precedes last sample"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def mean(self) -> float:
        """Arithmetic mean of the sampled values."""
        if not self.values:
            raise ValueError("empty monitor")
        return sum(self.values) / len(self.values)

    def time_average(self, until: float) -> float:
        """Time-weighted average assuming piecewise-constant values."""
        if not self.times:
            raise ValueError("empty monitor")
        if until < self.times[-1]:
            raise ValueError("'until' precedes last sample")
        total = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            t_next = self.times[i + 1] if i + 1 < len(self.times) else until
            total += v * (t_next - t)
        span = until - self.times[0]
        return total / span if span > 0 else self.values[-1]


class Counter:
    """A named bundle of monotonically increasing integer counters.

    ``incr`` sits on the per-packet hot path of every port and switch,
    so it is *pre-resolved* at construction time: the instance carries
    a closure over its own counts dict (no ``self`` re-resolution per
    call), and attaching an observer swaps in an observing closure
    instead of adding an ``if observer is not None`` branch that every
    unobserved packet would pay for.
    """

    __slots__ = ("_counts", "_observer", "incr")

    def __init__(self):
        self._counts: Dict[str, int] = {}
        self._observer: Optional[Callable[[str, int], None]] = None
        self._rebind()

    def _rebind(self) -> None:
        """(Re)build the ``incr`` fast path for the current observer."""
        counts = self._counts
        get = counts.get
        observer = self._observer
        if observer is None:

            def incr(key: str, amount: int = 1) -> None:
                counts[key] = get(key, 0) + amount

        else:

            def incr(key: str, amount: int = 1) -> None:
                counts[key] = get(key, 0) + amount
                observer(key, amount)

        self.incr = incr

    def attach_observer(
        self, observer: Optional[Callable[[str, int], None]]
    ) -> None:
        """Call ``observer(key, amount)`` on every increment.

        Pass ``None`` to detach and restore the zero-overhead path.
        """
        self._observer = observer
        self._rebind()

    @property
    def observer(self) -> Optional[Callable[[str, int], None]]:
        return self._observer

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def asdict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Counter({self._counts!r})"


class Tally:
    """Streaming mean/variance/min/max of observations (Welford)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self):
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        if self.n == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self):  # pragma: no cover - debugging aid
        if self.n == 0:
            return "Tally(empty)"
        return f"Tally(n={self.n}, mean={self._mean:.6g}, sd={self.stdev:.6g})"
