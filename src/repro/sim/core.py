"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple, Union

from .errors import EmptySchedule, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Deferred, Event, NORMAL, PENDING, Timeout, URGENT
from .process import Process

Infinity = float("inf")

#: Lazy cancellation leaves tombstones on the heap; once more than this
#: many accumulate *and* they outnumber live entries, the heap is
#: rebuilt without them so its size stays bounded under churn.
COMPACT_THRESHOLD = 64


class Environment:
    """A discrete-event simulation environment.

    Maintains the simulation clock and a priority heap of triggered
    events.  Entities interact with the environment through
    :meth:`process`, :meth:`timeout`, :meth:`event`, and :meth:`run`.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds).
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process", "_tombstones")

    def __init__(self, initial_time: float = 0.0):
        self._now: float = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Cancelled-but-not-yet-popped entries still on the heap.
        self._tombstones: int = 0

    def __repr__(self):  # pragma: no cover - debugging aid
        pending = len(self._queue) - self._tombstones
        return f"<Environment t={self._now:.9f} pending={pending}>"

    # -- clock / state ----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event creation ----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers once all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers once any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Place a triggered event onto the heap ``delay`` from now."""
        heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def schedule_callback(self, delay: float, fn: Callable[[Event], None],
                          priority: int = NORMAL) -> Deferred:
        """Fast path for fire-and-forget timers: run ``fn`` after ``delay``.

        Equivalent to ``self.timeout(delay).callbacks.append(fn)`` but
        skips full :class:`~repro.sim.events.Timeout` construction — the
        returned :class:`~repro.sim.events.Deferred` carries exactly the
        state :meth:`step` needs.  It occupies the same scheduling slot
        a ``Timeout`` created at this point would (same priority, same
        sequence number), so event ordering is unchanged.  The handle
        can be passed to :meth:`cancel`; it cannot be yielded on by a
        process.
        """
        handle = Deferred(fn)
        heappush(
            self._queue,
            (self._now + delay, priority, next(self._eid), handle),
        )
        return handle

    def cancel(self, event: Event) -> bool:
        """Cancel a scheduled-but-unprocessed event.

        The event's callbacks never run.  Returns ``True`` if the event
        was scheduled (and is now cancelled); ``False`` if it was never
        scheduled, has already been processed, or was already cancelled.

        Cancellation is lazy: the entry stays on the heap as a
        tombstone that :meth:`step` discards at pop, making ``cancel``
        O(1) instead of an O(n) heap rebuild.  Tombstones are compacted
        away once they outnumber live entries, so heap size stays
        bounded under repeated schedule/cancel churn.
        """
        if (
            event._cancelled
            or event.callbacks is None
            or event._value is PENDING
        ):
            return False
        event._cancelled = True
        self._tombstones += 1
        if (
            self._tombstones > COMPACT_THRESHOLD
            and self._tombstones * 2 > len(self._queue)
        ):
            # In place: ``run`` holds a local alias of the heap list.
            self._queue[:] = [
                entry for entry in self._queue if not entry[3]._cancelled
            ]
            heapq.heapify(self._queue)
            self._tombstones = 0
        return True

    def peek(self) -> float:
        """Time of the next scheduled live event (``inf`` if none)."""
        queue = self._queue
        while queue:
            entry = queue[0]
            if not entry[3]._cancelled:
                return entry[0]
            heappop(queue)
            self._tombstones -= 1
        return Infinity

    def step(self) -> None:
        """Process the next event on the heap.

        Raises
        ------
        EmptySchedule
            If no live events remain.
        """
        queue = self._queue
        while True:
            if not queue:
                raise EmptySchedule("no scheduled events")
            now, _, _, event = heappop(queue)
            if not event._cancelled:
                break
            # Tombstone: discard without touching the clock.
            self._tombstones -= 1
        self._now = now

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure crashes the run.
            raise event._value

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the heap is exhausted;
            a number — run until that simulation time;
            an :class:`Event` — run until that event is processed and
            return its value.
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be in the future")
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, delay=at - self._now, priority=URGENT)

        if isinstance(until, Event):
            if until.callbacks is None:
                return until._value if until._value is not PENDING else None
            until.callbacks.append(_stop_simulate)

        # The dispatch loop is ``step()`` unrolled with the heap and
        # heappop bound to locals: one method call plus two global
        # lookups saved per event is a measurable fraction of kernel
        # time at millions of events per run.  ``cancel`` compacts the
        # heap in place, so the local alias stays valid.
        queue = self._queue
        pop = heappop
        try:
            while True:
                while True:
                    if not queue:
                        raise EmptySchedule("no scheduled events")
                    now, _, _, event = pop(queue)
                    if not event._cancelled:
                        break
                    # Tombstone: discard without touching the clock.
                    self._tombstones -= 1
                self._now = now

                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)

                if not event._ok and not event._defused:
                    raise event._value
        except StopSimulation as exc:
            return exc.value
        except EmptySchedule:
            if isinstance(until, Event) and until._value is PENDING:
                raise SimulationError(
                    "no scheduled events left but 'until' event was not triggered"
                ) from None
        return None


def _stop_simulate(event: Event) -> None:
    """Callback used by :meth:`Environment.run` to halt the loop."""
    raise StopSimulation(event._value)
