"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, List, Optional, Tuple, Union

from .errors import EmptySchedule, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, NORMAL, PENDING, Timeout, URGENT
from .process import Process

Infinity = float("inf")


class Environment:
    """A discrete-event simulation environment.

    Maintains the simulation clock and a priority heap of triggered
    events.  Entities interact with the environment through
    :meth:`process`, :meth:`timeout`, :meth:`event`, and :meth:`run`.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (seconds).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now: float = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Environment t={self._now:.9f} pending={len(self._queue)}>"

    # -- clock / state ----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event creation ----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers once all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers once any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Place a triggered event onto the heap ``delay`` from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def cancel(self, event: Event) -> bool:
        """Remove a scheduled-but-unprocessed event from the heap.

        The event's callbacks never run.  Returns ``True`` if the event
        was found (and removed); ``False`` if it was never scheduled or
        has already been processed.
        """
        kept = [entry for entry in self._queue if entry[3] is not event]
        if len(kept) == len(self._queue):
            return False
        self._queue = kept
        heapq.heapify(self._queue)
        return True

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process the next event on the heap.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure crashes the run.
            exc = event._value
            raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the heap is exhausted;
            a number — run until that simulation time;
            an :class:`Event` — run until that event is processed and
            return its value.
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be in the future")
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, delay=at - self._now, priority=URGENT)

        if isinstance(until, Event):
            if until.callbacks is None:
                return until._value if until._value is not PENDING else None
            until.callbacks.append(_stop_simulate)

        try:
            while True:
                self.step()
        except StopSimulation as exc:
            return exc.value
        except EmptySchedule:
            if isinstance(until, Event) and until._value is PENDING:
                raise SimulationError(
                    "no scheduled events left but 'until' event was not triggered"
                ) from None
        return None


def _stop_simulate(event: Event) -> None:
    """Callback used by :meth:`Environment.run` to halt the loop."""
    raise StopSimulation(event._value)
