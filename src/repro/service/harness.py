"""In-process service bring-up for tests, benchmarks, and the CLI.

:func:`start_service` builds a simulation, wires the tap and optional
churn injector, starts the driver thread and the asyncio server on a
background thread, and hands back a :class:`ServiceHandle` that knows
how to mint clients and how to tear everything down in the right
order (server first, then driver — the driver stops the injector via
``Environment.cancel`` before the kernel thread exits).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..experiments.runner import SimulationSetup, build_simulation
from ..topology.registry import resolve_topology
from ..workloads.faults import FaultInjector
from .client import ServiceClient
from .driver import SimulationDriver
from .server import FabricService
from .tap import EventTap

#: Fault budget for "endless" churn: large enough that a serving
#: session never exhausts it, small enough to bound the fault log.
CHURN_FAULT_BUDGET = 1_000_000


@dataclass
class ServiceHandle:
    """A running service: address, live objects, and teardown."""

    host: str
    port: int
    setup: SimulationSetup
    driver: SimulationDriver
    service: FabricService
    tap: EventTap
    injector: Optional[FaultInjector] = None
    _loop: Optional[asyncio.AbstractEventLoop] = None
    _thread: Optional[threading.Thread] = None
    _stopped: bool = field(default=False, repr=False)

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def client(self, timeout: float = 30.0) -> ServiceClient:
        """Open a new blocking client connection to this service."""
        return ServiceClient(self.host, self.port, timeout=timeout)

    def stop(self, timeout: float = 10.0) -> dict:
        """Stop server then driver; returns the service summary."""
        if self._stopped:
            return self.service.summary()
        self._stopped = True
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.service.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)
        self.driver.stop(timeout=timeout)
        return self.service.summary()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_service(
    topology: str = "mesh9",
    algorithm: str = "parallel",
    manager: str = "full",
    host: str = "127.0.0.1",
    port: int = 0,
    seed: int = 0,
    churn: bool = False,
    mean_interval: float = 2e-3,
    batch: Optional[int] = None,
    **fm_kwargs,
) -> ServiceHandle:
    """Build, wire, and start a fabric service; returns its handle.

    With ``churn=True`` a :class:`~repro.workloads.faults.FaultInjector`
    keeps disturbing the fabric (FM host protected, effectively
    unlimited fault budget) so clients query a moving target.  The
    returned handle's ``port`` is the actual bound port (pass
    ``port=0`` for an ephemeral one).
    """
    spec = resolve_topology(topology)
    tap = EventTap()
    setup = build_simulation(
        spec, algorithm=algorithm, manager=manager, **fm_kwargs,
    )
    # attach_tracer is non-perturbing and retroactively opens the span
    # for the discovery that auto-started at power-up.
    setup.fm.attach_tracer(tap)
    injector = None
    if churn:
        protect = [spec.fm_host or (spec.endpoints[0]
                                    if spec.endpoints else None)]
        injector = FaultInjector(
            setup.fabric, mean_interval=mean_interval,
            protect=[p for p in protect if p],
            seed=seed, fm=setup.fm,
        )
        injector.run(faults=CHURN_FAULT_BUDGET)

    driver_kwargs = {} if batch is None else {"batch": batch}
    driver = SimulationDriver(setup, injector=injector, **driver_kwargs)
    driver.tap = tap
    service = FabricService(driver, host=host, port=port)

    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure = []

    async def _serve():
        try:
            address = await service.start()
        except Exception as exc:
            failure.append(exc)
            started.set()
            return
        handle.host, handle.port = address
        started.set()
        await service.serve_until_shutdown()

    def _run_loop():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_serve())
        finally:
            loop.close()

    handle = ServiceHandle(
        host=host, port=port, setup=setup, driver=driver,
        service=service, tap=tap, injector=injector,
        _loop=loop,
    )
    driver.start()
    thread = threading.Thread(target=_run_loop, name="service-loop",
                              daemon=True)
    handle._thread = thread
    thread.start()
    if not started.wait(timeout=30.0):
        driver.stop()
        raise RuntimeError("service failed to start within 30s")
    if failure:
        driver.stop()
        raise failure[0]
    return handle
