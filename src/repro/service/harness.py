"""In-process service bring-up for tests, benchmarks, and the CLI.

:func:`start_service` builds a simulation, wires the tap and optional
churn injector, starts the driver thread and the asyncio server on a
background thread, and hands back a :class:`ServiceHandle` that knows
how to mint clients and how to tear everything down in the right
order (server first, then driver — the driver stops the injector via
``Environment.cancel`` before the kernel thread exits).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..experiments.failover import build_failover_pair
from ..experiments.runner import SimulationSetup, build_simulation
from ..manager.failover import MODES, StandbyManager
from ..topology.registry import resolve_topology
from ..workloads.faults import FaultInjector
from .client import ServiceClient
from .driver import SimulationDriver
from .server import FabricService
from .tap import EventTap

#: Fault budget for "endless" churn: large enough that a serving
#: session never exhausts it, small enough to bound the fault log.
CHURN_FAULT_BUDGET = 1_000_000


@dataclass
class ServiceHandle:
    """A running service: address, live objects, and teardown."""

    host: str
    port: int
    setup: SimulationSetup
    driver: SimulationDriver
    service: FabricService
    tap: EventTap
    injector: Optional[FaultInjector] = None
    standby: Optional[StandbyManager] = None
    _loop: Optional[asyncio.AbstractEventLoop] = None
    _thread: Optional[threading.Thread] = None
    _stopped: bool = field(default=False, repr=False)

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def client(self, timeout: float = 30.0) -> ServiceClient:
        """Open a new blocking client connection to this service."""
        return ServiceClient(self.host, self.port, timeout=timeout)

    def stop(self, timeout: float = 10.0) -> dict:
        """Stop server then driver; returns the service summary."""
        if self._stopped:
            return self.service.summary()
        self._stopped = True
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.service.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)
        self.driver.stop(timeout=timeout)
        return self.service.summary()

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_service(
    topology: str = "mesh9",
    algorithm: str = "parallel",
    manager: str = "full",
    host: str = "127.0.0.1",
    port: int = 0,
    seed: int = 0,
    churn: bool = False,
    mean_interval: float = 2e-3,
    batch: Optional[int] = None,
    standby: Optional[str] = None,
    **fm_kwargs,
) -> ServiceHandle:
    """Build, wire, and start a fabric service; returns its handle.

    With ``churn=True`` a :class:`~repro.workloads.faults.FaultInjector`
    keeps disturbing the fabric (FM host protected, effectively
    unlimited fault budget) so clients query a moving target.  With
    ``standby="warm"`` (or ``"cold"``) a
    :class:`~repro.manager.failover.StandbyManager` heartbeats the
    primary from a second endpoint, ready for the ``kill_fm`` /
    ``promote_standby`` verbs.  The returned handle's ``port`` is the
    actual bound port (pass ``port=0`` for an ephemeral one).
    """
    spec = resolve_topology(topology)
    tap = EventTap()
    standby_mgr = None
    if standby is not None:
        if standby not in MODES:
            raise ValueError(
                f"standby must be one of {MODES}, got {standby!r}"
            )
        setup, standby_mgr = build_failover_pair(
            spec, algorithm=algorithm, mode=standby, manager=manager,
            fm_options=fm_kwargs or None,
        )
    else:
        setup = build_simulation(
            spec, algorithm=algorithm, manager=manager, **fm_kwargs,
        )
    # attach_tracer is non-perturbing and retroactively opens the span
    # for the discovery that auto-started at power-up.
    setup.fm.attach_tracer(tap)
    injector = None
    if churn:
        protect = [spec.fm_host or (spec.endpoints[0]
                                    if spec.endpoints else None)]
        if standby_mgr is not None:
            protect.append(standby_mgr.fm.endpoint.name)
        injector = FaultInjector(
            setup.fabric, mean_interval=mean_interval,
            protect=[p for p in protect if p],
            seed=seed, fm=setup.fm,
        )
        injector.run(faults=CHURN_FAULT_BUDGET)
    if standby_mgr is not None:
        # Start monitoring only once the primary's initial discovery
        # has finished: during the walk the fabric is congested enough
        # that the standby's tight heartbeat timeout misses, and three
        # early misses would promote it before the service is even up.
        ready = setup.fm.ready_event
        if (ready is not None and not ready.triggered
                and ready.callbacks is not None):
            ready.callbacks.append(lambda _ev: standby_mgr.start())
        else:
            standby_mgr.start()

    driver_kwargs = {} if batch is None else {"batch": batch}
    driver = SimulationDriver(setup, injector=injector, **driver_kwargs)
    driver.tap = tap
    driver.standby = standby_mgr
    if standby_mgr is not None:
        # Fires for verb-driven *and* heartbeat-driven promotions:
        # swap the served FM and publish the outcome on the feed.
        def _takeover_done(event) -> None:
            report = event.value
            setup.fm = standby_mgr.fm
            standby_mgr.fm.attach_tracer(tap)
            sink = getattr(driver, "feed", None)
            if sink is not None:
                sink({
                    "event": "failover",
                    "phase": "takeover_complete",
                    "fm": standby_mgr.fm.endpoint.name,
                    "mode": report.mode,
                    "detection_latency": report.detection_latency,
                    "recovery_time": report.recovery_time,
                    "repairs": report.repairs,
                    "devices_recovered": report.devices_recovered,
                    "sim_time": setup.env.now,
                })

        standby_mgr.takeover_event.callbacks.append(_takeover_done)
    service = FabricService(driver, host=host, port=port)

    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure = []

    async def _serve():
        try:
            address = await service.start()
        except Exception as exc:
            failure.append(exc)
            started.set()
            return
        handle.host, handle.port = address
        started.set()
        await service.serve_until_shutdown()

    def _run_loop():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_serve())
        finally:
            loop.close()

    handle = ServiceHandle(
        host=host, port=port, setup=setup, driver=driver,
        service=service, tap=tap, injector=injector,
        standby=standby_mgr, _loop=loop,
    )
    driver.start()
    thread = threading.Thread(target=_run_loop, name="service-loop",
                              daemon=True)
    handle._thread = thread
    thread.start()
    if not started.wait(timeout=30.0):
        driver.stop()
        raise RuntimeError("service failed to start within 30s")
    if failure:
        driver.stop()
        raise failure[0]
    return handle
