"""The service's JSON operation handlers.

Every operation is a pure function from simulation state to a
JSON-ready result document.  Handlers marked ``sim`` run **on the sim
thread** (between kernel events, via
:meth:`~repro.service.driver.SimulationDriver.submit`) because they
read or mutate live fabric/FM state; the rest touch only static
registries and may run anywhere.

Read operations
---------------
``ping``        liveness + schema version
``status``      FM status, discovery stats, driver/churn counters
``topology``    snapshot of the FM's :class:`~repro.manager.database.TopologyDatabase`
``path``        path + FM source route between two DSNs
``metrics``     end-of-scrape of the obs :class:`~repro.obs.metrics.MetricsRegistry`
``topologies``  registered topology families/aliases (+ describe)

Mutation verbs
--------------
``remove_device`` / ``restore_device`` / ``fail_link`` /
``restore_link``  hot topology changes (the API-driven fault plan)
``rediscover``    trigger a full rediscovery
``audit``         run the consistency auditor, report + feed the result
``kill_fm``       remove the primary FM's host endpoint (the service
                  must be running a standby; its heartbeats start
                  missing and it will eventually promote itself)
``promote_standby``  promote the standby immediately; the feed emits a
                  ``failover`` event when the takeover completes
``start_traffic`` start an application-traffic workload
                  (:class:`~repro.workloads.traffic.TrafficGenerator`)
                  from every active endpoint; params mirror
                  :class:`~repro.workloads.traffic.TrafficSpec`
``stop_traffic``  stop the running workload and return its final stats

``subscribe`` / ``unsubscribe`` / ``shutdown`` are connection-level and
handled by the server, not here.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

import networkx as nx

from ..fabric.fabric import FabricError
from ..manager.consistency import audit_topology
from ..obs.metrics import MetricsRegistry
from ..topology.registry import describe_topology, topology_catalog

#: Wire schema version, announced in the hello banner and ``ping``.
#: v1.1 added the ``start_traffic``/``stop_traffic`` verbs and the
#: traffic gauges in ``metrics`` (purely additive; v1 clients work).
SCHEMA = "repro/service/v1.1"


class ApiError(Exception):
    """A client-visible request failure (wrapped into the envelope)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def _require(params: dict, key: str, kind, kindname: str):
    value = params.get(key)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ApiError(
            "bad-request", f"{key!r} must be a {kindname}, got {value!r}"
        )
    return value


def _feed(driver, event: dict) -> None:
    """Publish to the event feed, if the server wired one up."""
    sink = getattr(driver, "feed", None)
    if sink is not None:
        sink(event)


# -- read operations ----------------------------------------------------------

def op_ping(setup, driver, params) -> dict:
    return {"schema": SCHEMA, "wall_time": time.time()}


def op_status(setup, driver, params) -> dict:
    fm = setup.fm
    ready = fm.ready_event is not None and fm.ready_event.triggered
    last = None
    if fm.history:
        stats = fm.history[-1]
        last = stats.asdict()
    injector = driver.injector
    manager = ("partial" if type(fm).__name__ == "PartialAssimilationManager"
               else "full")
    return {
        "sim_time": setup.env.now,
        "topology": setup.spec.name,
        "algorithm": fm.algorithm_key,
        "manager": manager,
        "ready": ready,
        "is_discovering": fm.is_discovering,
        "discoveries": len(fm.history),
        "devices_known": len(fm.database),
        "last_discovery": last,
        "counters": fm.counters.asdict(),
        "driver": {
            "events_stepped": driver.events_stepped,
            "commands_run": driver.commands_run,
            "crashed": repr(driver.crashed) if driver.crashed else None,
        },
        "churn": None if injector is None else {
            "faults_injected": len(injector.log),
            "mid_discovery_faults": injector.mid_discovery_faults,
            "kinds": injector.summary(),
        },
    }


def op_topology(setup, driver, params) -> dict:
    db = setup.fm.database
    devices = []
    links = []
    for record in sorted(db.devices(), key=lambda r: r.dsn):
        devices.append({
            "dsn": record.dsn,
            "type": "switch" if record.is_switch else "endpoint",
            "nports": record.nports,
            "fm_capable": record.fm_capable,
        })
        for index in sorted(record.ports):
            port = record.ports[index]
            if port.neighbor_dsn is None or not port.up:
                continue
            if port.neighbor_dsn not in db:
                continue
            far = (port.neighbor_dsn,
                   -1 if port.neighbor_port is None else port.neighbor_port)
            if (record.dsn, index) < far:
                links.append([record.dsn, index, far[0], far[1]])
    return {
        "sim_time": setup.env.now,
        "summary": db.summary(),
        "devices": devices,
        "links": links,
    }


def op_path(setup, driver, params) -> dict:
    src = _require(params, "src", int, "DSN integer")
    dst = _require(params, "dst", int, "DSN integer")
    db = setup.fm.database
    if src not in db:
        raise ApiError("unknown-dsn", f"DSN {src:#x} not in the database")
    if dst not in db:
        raise ApiError("unknown-dsn", f"DSN {dst:#x} not in the database")
    graph = db.graph()
    try:
        hops = nx.shortest_path(graph, src, dst)
    except nx.NetworkXNoPath:
        raise ApiError(
            "no-path", f"no path between {src:#x} and {dst:#x}"
        ) from None
    record = db.device(dst)
    fm_route = None
    if record.ingress_port is not None:
        fm_route = {
            "out_port": record.out_port,
            "ingress_port": record.ingress_port,
            "hops": [
                {"nports": hop.nports, "in_port": hop.in_port,
                 "out_port": hop.out_port}
                for hop in record.route_hops
            ],
        }
    return {
        "sim_time": setup.env.now,
        "src": src,
        "dst": dst,
        "hops": [int(dsn) for dsn in hops],
        "length": len(hops) - 1,
        "fm_route": fm_route,
    }


def op_metrics(setup, driver, params) -> dict:
    registry = MetricsRegistry()
    registry.scrape_setup(setup)
    registry.gauge(
        "service.events_stepped",
        help="kernel events advanced by the driver",
    ).set(driver.events_stepped)
    registry.gauge(
        "service.commands_run",
        help="commands executed on the sim thread",
    ).set(driver.commands_run)
    tap = getattr(driver, "tap", None)
    if tap is not None:
        registry.gauge("service.feed_pi5").set(tap.forwarded["pi5"])
        registry.gauge("service.feed_spans").set(tap.forwarded["span"])
    traffic = getattr(driver, "traffic", None)
    if traffic is not None:
        stats = traffic.stats()
        registry.gauge(
            "traffic.offered_load",
            help="requested per-endpoint load fraction",
        ).set(stats["offered_load"])
        registry.gauge("traffic.packets_injected").set(
            stats.get("packets_injected", 0))
        registry.gauge("traffic.packets_delivered").set(
            stats.get("packets_delivered", 0))
        registry.gauge(
            "traffic.delivered_bytes_per_s",
            help="application goodput since the generator started",
        ).set(stats.get("delivered_bytes_per_s", 0.0))
    return {"sim_time": setup.env.now, "metrics": registry.collect()}


def op_topologies(setup, driver, params) -> dict:
    result = {"catalog": topology_catalog()}
    name = params.get("describe")
    if name is not None:
        if not isinstance(name, str):
            raise ApiError("bad-request", "'describe' must be a name")
        try:
            result["described"] = describe_topology(name)
        except ValueError as exc:
            raise ApiError("unknown-topology", str(exc)) from None
    return result


# -- mutation verbs ------------------------------------------------------------

def _mutation_event(driver, setup, verb: str, target: str) -> None:
    _feed(driver, {
        "event": "mutation",
        "verb": verb,
        "target": target,
        "sim_time": setup.env.now,
    })


def op_remove_device(setup, driver, params) -> dict:
    name = _require(params, "name", str, "device name")
    try:
        setup.fabric.remove_device(name)
    except FabricError as exc:
        raise ApiError("bad-mutation", str(exc)) from None
    _mutation_event(driver, setup, "remove_device", name)
    return {"removed": name, "sim_time": setup.env.now}


def op_restore_device(setup, driver, params) -> dict:
    name = _require(params, "name", str, "device name")
    try:
        setup.fabric.restore_device(name)
    except FabricError as exc:
        raise ApiError("bad-mutation", str(exc)) from None
    _mutation_event(driver, setup, "restore_device", name)
    return {"restored": name, "sim_time": setup.env.now}


def op_fail_link(setup, driver, params) -> dict:
    a = _require(params, "a", str, "device name")
    b = _require(params, "b", str, "device name")
    try:
        setup.fabric.fail_link(a, b)
    except FabricError as exc:
        raise ApiError("bad-mutation", str(exc)) from None
    _mutation_event(driver, setup, "fail_link", f"{a}<->{b}")
    return {"failed": [a, b], "sim_time": setup.env.now}


def op_restore_link(setup, driver, params) -> dict:
    a = _require(params, "a", str, "device name")
    b = _require(params, "b", str, "device name")
    try:
        setup.fabric.restore_link(a, b)
    except FabricError as exc:
        raise ApiError("bad-mutation", str(exc)) from None
    _mutation_event(driver, setup, "restore_link", f"{a}<->{b}")
    return {"restored": [a, b], "sim_time": setup.env.now}


def op_rediscover(setup, driver, params) -> dict:
    force = bool(params.get("force", False))
    fm = setup.fm
    if fm.is_discovering and not force:
        raise ApiError(
            "busy", "a discovery is already running (pass force=true "
            "to abort it and restart)"
        )
    fm.start_discovery(trigger="change" if fm.history else "initial",
                       force=force)
    _mutation_event(driver, setup, "rediscover", setup.spec.name)
    return {"started": True, "sim_time": setup.env.now}


def _standby_for(driver):
    standby = getattr(driver, "standby", None)
    if standby is None:
        raise ApiError(
            "no-standby",
            "service was started without a standby FM "
            "(serve --standby warm|cold)",
        )
    return standby


def op_kill_fm(setup, driver, params) -> dict:
    standby = _standby_for(driver)
    if standby.active:
        raise ApiError(
            "bad-mutation", "the standby is already the active FM"
        )
    host = setup.fm.endpoint.name
    try:
        setup.fabric.remove_device(host)
    except FabricError as exc:
        raise ApiError("bad-mutation", str(exc)) from None
    standby.note_primary_failure(setup.env.now)
    _feed(driver, {
        "event": "failover",
        "phase": "primary_killed",
        "host": host,
        "standby": standby.fm.endpoint.name,
        "mode": standby.mode,
        "sim_time": setup.env.now,
    })
    return {
        "killed": host,
        "standby": standby.fm.endpoint.name,
        "mode": standby.mode,
        "sim_time": setup.env.now,
    }


def op_promote_standby(setup, driver, params) -> dict:
    standby = _standby_for(driver)
    if standby.active:
        raise ApiError("bad-mutation", "standby already promoted")
    # The harness wired a takeover_event callback at start-up that
    # swaps setup.fm and feeds the `takeover_complete` event, so it
    # fires for heartbeat-triggered promotions too — not just this
    # verb.
    standby.promote()
    return {
        "promoting": True,
        "standby": standby.fm.endpoint.name,
        "mode": standby.mode,
        "sim_time": setup.env.now,
    }


def op_start_traffic(setup, driver, params) -> dict:
    traffic = getattr(driver, "traffic", None)
    if traffic is not None and traffic.running:
        raise ApiError(
            "traffic-running",
            "a traffic workload is already running (stop_traffic first)",
        )
    from dataclasses import fields as dc_fields

    from ..workloads.traffic import TrafficGenerator, TrafficSpec
    seed = params.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ApiError("bad-request", f"'seed' must be an integer, "
                       f"got {seed!r}")
    known = {f.name for f in dc_fields(TrafficSpec)}
    spec_kwargs = {k: v for k, v in params.items() if k in known}
    try:
        spec = TrafficSpec(**spec_kwargs)
    except (TypeError, ValueError) as exc:
        raise ApiError("bad-request", str(exc)) from None
    if not spec.enabled:
        raise ApiError(
            "bad-request", "'load' must be positive to start traffic"
        )
    generator = TrafficGenerator(setup.fabric, spec, seed=seed)
    generator.attach_sinks(setup.entities)
    generator.start()
    driver.traffic = generator
    _mutation_event(driver, setup, "start_traffic",
                    f"load={spec.load:g} tc={spec.tc}")
    result = generator.describe()
    result["sim_time"] = setup.env.now
    return result


def op_stop_traffic(setup, driver, params) -> dict:
    traffic = getattr(driver, "traffic", None)
    if traffic is None or not traffic.running:
        raise ApiError(
            "no-traffic", "no traffic workload is running"
        )
    traffic.stop()
    _mutation_event(driver, setup, "stop_traffic",
                    f"load={traffic.load:g}")
    return {
        "stopped": True,
        "stats": traffic.stats(),
        "sim_time": setup.env.now,
    }


def op_audit(setup, driver, params) -> dict:
    report = audit_topology(setup.fabric, setup.fm)
    result = report.asdict()
    result["summary"] = report.summary()
    result["sample"] = [str(d) for d in report.differences[:20]]
    _feed(driver, {
        "event": "audit",
        "ok": report.ok,
        "differences": len(report.differences),
        "by_kind": report.by_kind(),
        "sim_time": setup.env.now,
    })
    return result


#: op -> (handler, runs-on-sim-thread).
HANDLERS: Dict[str, Tuple[Callable, bool]] = {
    "ping": (op_ping, False),
    "status": (op_status, True),
    "topology": (op_topology, True),
    "path": (op_path, True),
    "metrics": (op_metrics, True),
    "topologies": (op_topologies, False),
    "remove_device": (op_remove_device, True),
    "restore_device": (op_restore_device, True),
    "fail_link": (op_fail_link, True),
    "restore_link": (op_restore_link, True),
    "rediscover": (op_rediscover, True),
    "audit": (op_audit, True),
    "kill_fm": (op_kill_fm, True),
    "promote_standby": (op_promote_standby, True),
    "start_traffic": (op_start_traffic, True),
    "stop_traffic": (op_stop_traffic, True),
}

#: Ops that mutate the simulation (reported apart in service stats).
MUTATIONS = frozenset((
    "remove_device", "restore_device", "fail_link", "restore_link",
    "rediscover", "kill_fm", "promote_standby", "start_traffic",
    "stop_traffic",
))


def handler_for(op: str) -> Tuple[Callable, bool]:
    """Resolve an op name; raises :class:`ApiError` for unknown ops."""
    entry = HANDLERS.get(op)
    if entry is None:
        raise ApiError(
            "unknown-op",
            f"unknown op {op!r} (known: {', '.join(sorted(HANDLERS))}, "
            f"plus subscribe/unsubscribe/shutdown)",
        )
    return entry


def call_op(driver, op: str, params: Optional[dict] = None):
    """Synchronous dispatch (tests and in-process tools).

    Runs sim-thread ops through the driver's command queue exactly as
    the server would.
    """
    fn, needs_sim = handler_for(op)
    params = params or {}
    if needs_sim:
        return driver.call(lambda setup: fn(setup, driver, params))
    return fn(None, driver, params)
