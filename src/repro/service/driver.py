"""The simulation driver: one thread owns the kernel, everyone else asks.

The event kernel (:class:`~repro.sim.core.Environment`) is strictly
single-threaded — its heap, clock, and every fabric object are free of
locks by design, which is exactly what keeps batch runs bit-identical.
A serving daemon therefore may not let request handlers touch the
simulation directly.  :class:`SimulationDriver` enforces the split:

* the driver's thread is the *only* thread that ever advances the
  clock or reads fabric/FM state;
* clients :meth:`submit` closures; the driver executes them **between
  kernel events**, so every query and mutation observes (or produces)
  a consistent simulation state;
* the kernel advances in bounded batches, checking the command queue
  between batches, so query latency stays bounded even while a
  discovery storm keeps the heap full;
* when the heap drains (a quiescent fabric with no churn), the driver
  blocks on the command queue instead of spinning.

Determinism: the simulation itself stays deterministic — same event
order, same randomness — for a given sequence of submitted mutations
at given sim times.  What wall-clock serving adds is *when* a mutation
lands on the sim clock; see ``docs/SERVICE.md`` for the caveats.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Callable, Optional

from ..experiments.runner import SimulationSetup

Infinity = float("inf")

#: Kernel events advanced per command-queue check.
DEFAULT_BATCH = 128

#: Seconds the driver blocks waiting for a command while idle.
IDLE_WAIT = 0.02


class DriverStopped(RuntimeError):
    """Submitted to a driver that has stopped (or crashed)."""


class SimulationDriver:
    """Advance ``setup``'s simulation on a dedicated thread.

    Parameters
    ----------
    setup:
        A built simulation (:func:`~repro.experiments.runner.build_simulation`).
    injector:
        Optional running :class:`~repro.workloads.faults.FaultInjector`
        providing background churn; :meth:`stop` stops it first (its
        pending timers are cancelled via ``Environment.cancel``).
    batch:
        Kernel events processed between command-queue checks — the
        knob trading sim throughput against query latency.
    """

    def __init__(self, setup: SimulationSetup, injector=None,
                 batch: int = DEFAULT_BATCH):
        if batch < 1:
            raise ValueError("batch must be at least 1")
        self.setup = setup
        self.env = setup.env
        self.injector = injector
        self.batch = batch
        #: Exception that killed the kernel, if any (queries still run).
        self.crashed: Optional[BaseException] = None
        #: Kernel events stepped by this driver (service metric).
        self.events_stepped = 0
        #: Commands executed on the sim thread (service metric).
        self.commands_run = 0
        self._commands: "queue.Queue" = queue.Queue()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "SimulationDriver":
        if self._thread is not None:
            raise RuntimeError("driver already started")
        self._thread = threading.Thread(
            target=self._loop, name="sim-driver", daemon=True,
        )
        self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return (self._thread is not None and self._thread.is_alive()
                and not self._stop.is_set())

    def stop(self, timeout: float = 10.0) -> None:
        """Stop workloads, stop the loop, join the thread (idempotent)."""
        if self._thread is None or self._stop.is_set():
            self._stop.set()
            return
        workloads = [w for w in (self.injector,
                                 getattr(self, "traffic", None))
                     if w is not None]
        for workload in workloads:
            try:
                self.call(lambda _setup, w=workload: w.stop(),
                          timeout=timeout)
            except (DriverStopped, TimeoutError):
                pass
        self._stop.set()
        self._commands.put(None)  # wake an idle loop
        self._thread.join(timeout)
        self._drain_rejected()

    # -- command plane -------------------------------------------------------
    def submit(self, fn: Callable[[SimulationSetup], object]) -> Future:
        """Run ``fn(setup)`` on the sim thread between kernel events.

        Returns a :class:`concurrent.futures.Future` with the result;
        exceptions raised by ``fn`` propagate through it.
        """
        future: Future = Future()
        if self._stop.is_set() or self._thread is None:
            future.set_exception(DriverStopped("driver is not running"))
            return future
        self._commands.put((fn, future))
        return future

    def call(self, fn: Callable[[SimulationSetup], object],
             timeout: float = 30.0):
        """Blocking :meth:`submit` (raises on timeout / fn error)."""
        return self.submit(fn).result(timeout)

    # -- loop ----------------------------------------------------------------
    def _loop(self) -> None:
        env = self.env
        while not self._stop.is_set():
            self._run_pending_commands()
            if self._stop.is_set():
                break
            if self.crashed is not None or env.peek() == Infinity:
                # Nothing to simulate: block briefly for a command.
                try:
                    item = self._commands.get(timeout=IDLE_WAIT)
                except queue.Empty:
                    continue
                self._run_command(item)
                continue
            stepped = 0
            try:
                while stepped < self.batch and env.peek() != Infinity:
                    env.step()
                    stepped += 1
            except BaseException as exc:  # kernel died: keep serving reads
                self.crashed = exc
            self.events_stepped += stepped
        self._drain_rejected()

    def _run_pending_commands(self) -> None:
        while True:
            try:
                item = self._commands.get_nowait()
            except queue.Empty:
                return
            self._run_command(item)

    def _run_command(self, item) -> None:
        if item is None:  # stop() wake-up sentinel
            return
        fn, future = item
        if not future.set_running_or_notify_cancel():
            return
        self.commands_run += 1
        try:
            future.set_result(fn(self.setup))
        except BaseException as exc:
            future.set_exception(exc)

    def _drain_rejected(self) -> None:
        """Fail any commands left behind after the loop exits."""
        while True:
            try:
                item = self._commands.get_nowait()
            except queue.Empty:
                return
            if item is None:
                continue
            _fn, future = item
            if future.set_running_or_notify_cancel():
                future.set_exception(DriverStopped("driver stopped"))
