"""Event tap: the FM's observability stream, forwarded to the feed.

The FM already narrates its life through the tracer protocol
(:class:`~repro.obs.span.SpanTracer`): PI-5 arrivals become instants,
discovery runs / assimilation bursts / route distribution become spans
on the ``"fm"`` track.  :class:`EventTap` subclasses the tracer so
attaching it is exactly as non-perturbing as tracing (no events
scheduled, no randomness consumed) and forwards the feed-worthy subset
to a sink callback as JSON-ready documents:

* ``{"event": "pi5", ...}`` — every PI-5 notification (and local port
  event) the FM processes;
* ``{"event": "span", ...}`` — summaries of completed FM-track spans:
  discovery runs, partial-assimilation and repair bursts,
  restart-backoff episodes, route distribution.

Per-claim discovery spans and PI-4 transaction spans (tracks
``"discovery"``/``"pi4"``) are recorded but not forwarded — at service
rates they would swamp the feed.  Long-running daemons cannot keep
every span forever, so the tap trims closed spans once the in-memory
lists grow past a bound; it is a feed source, not an exporter.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..obs.span import Instant, Span, SpanTracer

#: Spans on these tracks are forwarded as feed summaries.
FEED_TRACKS = frozenset({"fm"})

#: Keep at most this many record objects before trimming closed ones.
TRIM_THRESHOLD = 4096


class EventTap(SpanTracer):
    """A :class:`SpanTracer` that forwards FM activity to ``sink``.

    ``sink`` receives one JSON-ready dict per feed event and must be
    cheap and non-raising (the server wraps a thread-safe queue
    handoff).  Passing ``sink=None`` makes the tap a plain bounded
    tracer.
    """

    def __init__(self, sink: Optional[Callable[[dict], None]] = None):
        super().__init__()
        self.sink = sink
        #: Forwarded feed events, by kind (service metrics).
        self.forwarded = {"pi5": 0, "span": 0}

    # -- tracer protocol -----------------------------------------------------
    def instant(self, name: str, cat: str, t: float, *,
                parent: Optional[Span] = None, track: str = "fm",
                **args: Any) -> Instant:
        event = super().instant(name, cat, t, parent=parent,
                                track=track, **args)
        if cat == "pi5" and self.sink is not None:
            self.forwarded["pi5"] += 1
            self.sink({"event": "pi5", "sim_time": t, **args})
        self._trim()
        return event

    def end(self, span: Span, t: float, **args: Any) -> None:
        already_closed = span.end is not None
        super().end(span, t, **args)
        if (not already_closed and span.track in FEED_TRACKS
                and self.sink is not None):
            self.forwarded["span"] += 1
            self.sink({
                "event": "span",
                "name": span.name,
                "kind": span.cat,
                "sim_time": t,
                "start": span.start,
                "duration": t - span.start,
                "args": dict(span.args),
            })
        self._trim()

    # -- memory bound --------------------------------------------------------
    def _trim(self) -> None:
        """Drop closed spans / old instants once the lists grow large.

        Open spans must survive (their handles are still held by the
        FM), so only closed ones are dropped; instants are pure
        history and can always go.
        """
        if len(self.spans) > TRIM_THRESHOLD:
            self.spans = [s for s in self.spans if s.end is None]
        if len(self.instants) > TRIM_THRESHOLD:
            del self.instants[:-64]
