"""A small blocking NDJSON client for the fabric service.

Used by the tests, the benchmark, and as the reference implementation
of the wire protocol: connect, read the hello banner, then exchange
one JSON line per request/response.  Feed events that arrive between
responses are stashed and read back with :meth:`ServiceClient.next_event`.

The client is intentionally synchronous — one socket, one reader —
because that is what a benchmark worker or test wants.  Concurrency
comes from running many clients, exactly like real tools would.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional


class ServiceError(Exception):
    """An ``"ok": false`` response from the service."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServiceClient:
    """Blocking client for one service connection.

    Usable as a context manager::

        with ServiceClient(host, port) as client:
            status = client.request("status")
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._events: List[dict] = []
        #: The hello banner sent by the server on connect.
        self.hello = self._read_document()
        if self.hello.get("event") != "hello":
            raise ServiceError("bad-hello",
                               f"expected hello banner, got {self.hello!r}")
        #: Wire schema version announced by the server.
        self.schema = self.hello.get("schema")

    # -- wire ---------------------------------------------------------------
    def _read_document(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    def _write_document(self, document: dict) -> None:
        self._file.write(json.dumps(document).encode() + b"\n")
        self._file.flush()

    # -- requests -----------------------------------------------------------
    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send ``op`` and return its result (raises :class:`ServiceError`).

        Feed events interleaved before the response are stashed for
        :meth:`next_event`.
        """
        self._next_id += 1
        request_id = self._next_id
        self._write_document({"id": request_id, "op": op, **params})
        while True:
            document = self._read_document()
            if "event" in document:
                self._events.append(document)
                continue
            if document.get("id") != request_id:
                continue  # stale response from an aborted exchange
            if document.get("ok"):
                return document["result"]
            error = document.get("error") or {}
            raise ServiceError(error.get("code", "unknown"),
                               error.get("message", "no message"))

    # -- failover verbs -----------------------------------------------------
    def kill_fm(self) -> Dict[str, Any]:
        """Remove the primary FM's host (requires a standby)."""
        return self.request("kill_fm")

    def promote_standby(self) -> Dict[str, Any]:
        """Promote the standby FM immediately; the takeover outcome
        arrives as a ``failover`` feed event."""
        return self.request("promote_standby")

    # -- event feed ---------------------------------------------------------
    def subscribe(self) -> Dict[str, Any]:
        return self.request("subscribe")

    def unsubscribe(self) -> Dict[str, Any]:
        return self.request("unsubscribe")

    def next_event(self, timeout: Optional[float] = None) -> dict:
        """Return the next feed event (stashed or fresh off the wire).

        Raises :class:`socket.timeout` if nothing arrives in time.
        """
        if self._events:
            return self._events.pop(0)
        previous = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            while True:
                document = self._read_document()
                if "event" in document:
                    return document
                # A response with no waiting request: drop it.
        finally:
            self._sock.settimeout(previous)

    def drain_events(self) -> List[dict]:
        """Return (and clear) the stash of already-received events."""
        events, self._events = self._events, []
        return events

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
