"""Fabric-manager-as-a-service: a control-plane daemon over the sim.

The paper's discovery process runs here as one-shot batch experiments;
a real AS fabric manager is a long-lived *service* that answers
topology and path queries while the fabric churns underneath it.  This
package provides that serving layer without touching the simulation
core:

* :class:`~repro.service.driver.SimulationDriver` — advances the
  deterministic event kernel on a dedicated thread and executes
  queries/mutations *between* events, so the sim state is never read
  or written mid-step;
* :class:`~repro.service.tap.EventTap` — a passive
  :class:`~repro.obs.span.SpanTracer` that additionally forwards PI-5
  notifications and FM span summaries to the live event feed;
* :mod:`~repro.service.api` — the JSON operation handlers (topology
  snapshots, path lookup, FM status, metrics scrape, mutation verbs);
* :class:`~repro.service.server.FabricService` — an asyncio front-end
  speaking line-delimited JSON to many concurrent clients;
* :class:`~repro.service.client.ServiceClient` — the small blocking
  client used by tests and :mod:`benchmarks.bench_service`;
* :func:`~repro.service.harness.start_service` — an in-process
  service for tests and benchmarks.

The wire schema is versioned (:data:`~repro.service.api.SCHEMA`); see
``docs/SERVICE.md`` for the API reference and determinism caveats.
"""

from .api import SCHEMA, ApiError
from .client import ServiceClient, ServiceError
from .driver import DriverStopped, SimulationDriver
from .harness import ServiceHandle, start_service
from .server import FabricService
from .tap import EventTap

__all__ = [
    "ApiError",
    "DriverStopped",
    "EventTap",
    "FabricService",
    "SCHEMA",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "SimulationDriver",
    "start_service",
]
