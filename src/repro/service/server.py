"""Asyncio front-end: line-delimited JSON over TCP, many clients.

One :class:`FabricService` wraps one
:class:`~repro.service.driver.SimulationDriver`.  Clients connect over
TCP and exchange newline-terminated JSON documents:

* on connect the server sends a hello banner
  ``{"event": "hello", "schema": "repro/service/v1.1", ...}``;
* each request line ``{"id": 7, "op": "topology", ...params}`` gets
  exactly one response line ``{"id": 7, "ok": true, "result": ...}``
  (or ``"ok": false`` with an ``error`` object — the connection
  survives request errors);
* after a ``subscribe`` request the server additionally pushes feed
  events (``{"event": "pi5"|"span"|"mutation"|"audit", "seq": n,
  ...}``) as they happen; responses and events never interleave
  within a line.

Requests from many clients are serviced concurrently by the asyncio
loop; the ones that touch simulation state await their turn on the
driver's command queue, so the kernel itself stays single-threaded.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Set, Tuple

from . import api
from .driver import SimulationDriver

#: Feed events buffered per subscriber before drops are counted.
FEED_QUEUE_LIMIT = 4096


class FeedHub:
    """Fan-out point between the sim thread and subscribed clients.

    ``publish`` is the only thread-safe entry point: it stamps a
    sequence number and hops onto the asyncio loop, which distributes
    the event to every subscriber queue.  A slow subscriber loses
    events (counted in ``dropped``) rather than stalling the feed.
    """

    def __init__(self):
        self._subscribers: Set[asyncio.Queue] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._lock = threading.Lock()
        self._seq = 0
        self.published = 0
        self.dropped = 0

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def publish(self, event: dict) -> None:
        """Thread-safe: forward ``event`` to every subscriber."""
        with self._lock:
            loop = self._loop
            if loop is None or loop.is_closed():
                return
            self._seq += 1
            event = dict(event, seq=self._seq)
            self.published += 1
        try:
            loop.call_soon_threadsafe(self._fan_out, event)
        except RuntimeError:  # loop shut down mid-publish
            pass

    def _fan_out(self, event: dict) -> None:
        for queue in list(self._subscribers):
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                self.dropped += 1

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue(maxsize=FEED_QUEUE_LIMIT)
        self._subscribers.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        self._subscribers.discard(queue)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)


def _encode(document: dict) -> bytes:
    return (json.dumps(document, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


class FabricService:
    """The daemon: accepts clients, dispatches ops, streams the feed."""

    def __init__(self, driver: SimulationDriver,
                 host: str = "127.0.0.1", port: int = 0):
        self.driver = driver
        self.host = host
        self.port = port
        self.hub = FeedHub()
        self.address: Optional[Tuple[str, int]] = None
        #: Service-level stats, reported by :meth:`summary`.
        self.requests = 0
        self.errors = 0
        self.connections_accepted = 0
        self.by_op: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._connections: Set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        loop = asyncio.get_running_loop()
        self.hub.bind(loop)
        # Handlers publish mutations/audits through the same feed the
        # tap uses (see api._feed).
        self.driver.feed = self.hub.publish
        tap = getattr(self.driver, "tap", None)
        if tap is not None:
            tap.sink = self.hub.publish
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (safe from the loop's thread)."""
        self._shutdown.set()

    def summary(self) -> dict:
        """One-line-able account of what the daemon did."""
        return {
            "connections": self.connections_accepted,
            "requests": self.requests,
            "errors": self.errors,
            "events_published": self.hub.published,
            "events_dropped": self.hub.dropped,
            "by_op": dict(sorted(self.by_op.items())),
        }

    # -- per-connection ------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections_accepted += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        write_lock = asyncio.Lock()
        feed_queue: Optional[asyncio.Queue] = None
        pump_task: Optional[asyncio.Task] = None

        async def send(document: dict) -> None:
            async with write_lock:
                writer.write(_encode(document))
                await writer.drain()

        try:
            await send({
                "event": "hello",
                "schema": api.SCHEMA,
                "topology": self.driver.setup.spec.name,
                "algorithm": self.driver.setup.fm.algorithm_key,
            })
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                request_id, response = None, None
                try:
                    document = json.loads(line)
                    if not isinstance(document, dict):
                        raise api.ApiError(
                            "bad-request", "request must be a JSON object"
                        )
                    request_id = document.get("id")
                    op = document.get("op")
                    if not isinstance(op, str):
                        raise api.ApiError(
                            "bad-request", "request needs a string 'op'"
                        )
                    if op == "subscribe":
                        if feed_queue is None:
                            feed_queue = self.hub.subscribe()
                            pump_task = asyncio.ensure_future(
                                self._pump(feed_queue, send)
                            )
                        result = {"subscribed": True}
                    elif op == "unsubscribe":
                        if pump_task is not None:
                            pump_task.cancel()
                            pump_task = None
                        if feed_queue is not None:
                            self.hub.unsubscribe(feed_queue)
                            feed_queue = None
                        result = {"subscribed": False}
                    elif op == "shutdown":
                        result = {"stopping": True}
                        self.requests += 1
                        self.by_op[op] = self.by_op.get(op, 0) + 1
                        await send({"id": request_id, "ok": True,
                                    "result": result})
                        self.request_shutdown()
                        break
                    else:
                        result = await self._dispatch(op, document)
                    self.requests += 1
                    self.by_op[op] = self.by_op.get(op, 0) + 1
                    response = {"id": request_id, "ok": True,
                                "result": result}
                except api.ApiError as exc:
                    self.errors += 1
                    response = {
                        "id": request_id, "ok": False,
                        "error": {"code": exc.code,
                                  "message": exc.message},
                    }
                except json.JSONDecodeError as exc:
                    self.errors += 1
                    response = {
                        "id": request_id, "ok": False,
                        "error": {"code": "bad-json", "message": str(exc)},
                    }
                except Exception as exc:  # handler bug: report, stay up
                    self.errors += 1
                    response = {
                        "id": request_id, "ok": False,
                        "error": {"code": "internal",
                                  "message": f"{type(exc).__name__}: "
                                             f"{exc}"},
                    }
                await send(response)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.CancelledError):
            pass
        finally:
            if pump_task is not None:
                pump_task.cancel()
            if feed_queue is not None:
                self.hub.unsubscribe(feed_queue)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, op: str, params: dict):
        fn, needs_sim = api.handler_for(op)
        if needs_sim:
            future = self.driver.submit(
                lambda setup: fn(setup, self.driver, params)
            )
            return await asyncio.wrap_future(future)
        # Registry-only ops may still build large specs; keep them off
        # the event loop.
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: fn(None, self.driver, params)
        )

    async def _pump(self, queue: asyncio.Queue, send) -> None:
        try:
            while True:
                event = await queue.get()
                await send(event)
        except asyncio.CancelledError:
            pass
