"""The fabric manager's topology database.

During discovery the FM accumulates, per device: its general
information (type, DSN, port count), the state of each port, the
device's neighbours, and a source route from the FM to the device —
"the paths that these packets need to reach fabric devices are computed
as the topology information grows" (paper, section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..capability import DEVICE_TYPE_ENDPOINT, DEVICE_TYPE_SWITCH
from ..routing.turnpool import Hop, TurnPool, build_turn_pool


class DatabaseError(RuntimeError):
    """Raised on inconsistent database updates."""


@dataclass
class PortRecord:
    """What the FM knows about one port of a device."""

    #: None until the port's status block has been read.
    up: Optional[bool] = None
    #: DSN of the device on the far side, once discovered.
    neighbor_dsn: Optional[int] = None
    #: Far-side port index, once known.
    neighbor_port: Optional[int] = None


@dataclass
class DeviceRecord:
    """What the FM knows about one device."""

    dsn: int
    type_code: int
    nports: int
    fm_capable: bool = False
    fm_priority: int = 0
    #: Port of this device on which FM requests arrive (None for the
    #: FM's own endpoint).
    ingress_port: Optional[int] = None
    #: Switch traversals between the FM and this device (the route the
    #: FM uses to address it).
    route_hops: List[Hop] = field(default_factory=list)
    #: FM-local egress port for the first link of the route.
    out_port: int = 0
    ports: Dict[int, PortRecord] = field(default_factory=dict)

    @property
    def is_switch(self) -> bool:
        return self.type_code == DEVICE_TYPE_SWITCH

    @property
    def is_endpoint(self) -> bool:
        return self.type_code == DEVICE_TYPE_ENDPOINT

    def route(self) -> TurnPool:
        """The FM -> device source route as a packed turn pool."""
        return build_turn_pool(self.route_hops)

    def port(self, index: int) -> PortRecord:
        """The record for port ``index`` (created on first access)."""
        if not 0 <= index < self.nports:
            raise DatabaseError(
                f"port {index} outside device {self.dsn:#x} "
                f"with {self.nports} ports"
            )
        return self.ports.setdefault(index, PortRecord())


class TopologyDatabase:
    """DSN-keyed store of device records and links."""

    def __init__(self):
        self._devices: Dict[int, DeviceRecord] = {}

    # -- mutation ------------------------------------------------------------
    def clear(self) -> None:
        """Discard everything (the paper's full-rediscovery assumption)."""
        self._devices.clear()

    def add_device(self, record: DeviceRecord) -> DeviceRecord:
        if record.dsn in self._devices:
            raise DatabaseError(f"device {record.dsn:#x} already known")
        self._devices[record.dsn] = record
        return record

    def add_link(self, dsn_a: int, port_a: int, dsn_b: int,
                 port_b: Optional[int]) -> None:
        """Record connectivity between two known devices.

        ``port_b`` may be None when the far-side port index is not yet
        known (it is learned from the completion's arrival port).
        """
        rec_a = self.device(dsn_a)
        pa = rec_a.port(port_a)
        pa.up = True
        pa.neighbor_dsn = dsn_b
        pa.neighbor_port = port_b
        rec_b = self.device(dsn_b)
        if port_b is not None:
            pb = rec_b.port(port_b)
            pb.up = True
            pb.neighbor_dsn = dsn_a
            pb.neighbor_port = port_a

    # -- queries --------------------------------------------------------------
    def __contains__(self, dsn: int) -> bool:
        return dsn in self._devices

    def __len__(self) -> int:
        return len(self._devices)

    def device(self, dsn: int) -> DeviceRecord:
        try:
            return self._devices[dsn]
        except KeyError:
            raise DatabaseError(f"unknown device {dsn:#x}") from None

    def devices(self) -> List[DeviceRecord]:
        return list(self._devices.values())

    def switches(self) -> List[DeviceRecord]:
        return [r for r in self._devices.values() if r.is_switch]

    def endpoints(self) -> List[DeviceRecord]:
        return [r for r in self._devices.values() if r.is_endpoint]

    # -- routes ----------------------------------------------------------------
    def extend_route(self, parent: DeviceRecord,
                     egress_port: int) -> Tuple[List[Hop], int]:
        """Route to the device behind ``parent``'s ``egress_port``.

        Returns ``(route_hops, fm_out_port)``.  For the FM's own
        endpoint (no ingress), the route starts on the FM's local port
        ``egress_port`` with zero turns; otherwise the parent switch is
        traversed with one more turn.
        """
        if parent.ingress_port is None:
            return list(parent.route_hops), egress_port
        if not parent.is_switch:
            raise DatabaseError(
                f"cannot route through endpoint {parent.dsn:#x}"
            )
        hops = list(parent.route_hops)
        hops.append(Hop(parent.nports, parent.ingress_port, egress_port))
        return hops, parent.out_port

    def route_to_fm(self, record: DeviceRecord) -> Tuple[TurnPool, int]:
        """Source route *from* ``record`` back to the FM endpoint.

        Returns ``(turn_pool, device_out_port)``; used to program
        event-route capabilities.  The reverse route traverses the same
        switches in opposite order, swapping ingress and egress.
        """
        if record.ingress_port is None:
            raise DatabaseError("the FM endpoint needs no route to itself")
        reverse_hops = [
            Hop(hop.nports, hop.out_port, hop.in_port)
            for hop in reversed(record.route_hops)
        ]
        return build_turn_pool(reverse_hops), record.ingress_port

    def mark_port_down(self, dsn: int, port_index: int) -> None:
        """Record a link failure on both sides of the link."""
        record = self.device(dsn)
        port = record.port(port_index)
        port.up = False
        neighbor = port.neighbor_dsn
        if neighbor is not None and neighbor in self._devices:
            far = self._devices[neighbor]
            if port.neighbor_port is not None:
                far.port(port.neighbor_port).up = False
            else:
                for candidate in far.ports.values():
                    if candidate.neighbor_dsn == dsn:
                        candidate.up = False

    def prune_unreachable(self, root_dsn: int) -> List[int]:
        """Drop devices no longer connected to ``root_dsn``.

        Returns the DSNs removed.  Used by partial change assimilation
        after link-down events.
        """
        graph = self.graph()
        if root_dsn not in graph:
            return []
        keep = nx.node_connected_component(graph, root_dsn)
        removed = [dsn for dsn in self._devices if dsn not in keep]
        for dsn in removed:
            del self._devices[dsn]
        # Clear dangling neighbor references.
        gone = set(removed)
        for record in self._devices.values():
            for port in record.ports.values():
                if port.neighbor_dsn in gone:
                    port.neighbor_dsn = None
                    port.neighbor_port = None
                    port.up = False
        return removed

    def recompute_routes(self, fm_dsn: int) -> None:
        """Rebuild every record's source route from the FM.

        After a partial assimilation, routes discovered through a
        now-removed region would be stale; shortest paths over the
        updated database replace them.
        """
        graph = self.graph()
        if fm_dsn not in graph:
            return
        paths = nx.single_source_shortest_path(graph, fm_dsn)
        for dsn, node_path in paths.items():
            record = self._devices[dsn]
            if dsn == fm_dsn:
                record.route_hops = []
                record.ingress_port = None
                continue
            hops: List[Hop] = []
            for k in range(1, len(node_path) - 1):
                _, in_port = self._link_ports(node_path[k - 1],
                                              node_path[k])
                out_port, _ = self._link_ports(node_path[k],
                                               node_path[k + 1])
                middle = self._devices[node_path[k]]
                hops.append(Hop(middle.nports, in_port, out_port))
            first_out, _ = self._link_ports(node_path[0], node_path[1])
            _, ingress = self._link_ports(node_path[-2], node_path[-1])
            record.route_hops = hops
            record.out_port = first_out
            record.ingress_port = ingress

    def _link_ports(self, dsn_a: int, dsn_b: int) -> Tuple[int, int]:
        """Ports wiring two adjacent known devices (lowest first)."""
        record_a = self.device(dsn_a)
        for index in sorted(record_a.ports):
            port = record_a.ports[index]
            if port.neighbor_dsn == dsn_b and port.up:
                far = port.neighbor_port
                if far is None:
                    record_b = self.device(dsn_b)
                    for j in sorted(record_b.ports):
                        if record_b.ports[j].neighbor_dsn == dsn_a:
                            far = j
                            break
                if far is None:
                    raise DatabaseError(
                        f"far port of {dsn_a:#x}->{dsn_b:#x} unknown"
                    )
                return index, far
        raise DatabaseError(
            f"no up link between {dsn_a:#x} and {dsn_b:#x}"
        )

    # -- views -----------------------------------------------------------------
    def graph(self) -> nx.Graph:
        """The discovered topology as a DSN-keyed networkx graph."""
        g = nx.Graph()
        for record in self._devices.values():
            g.add_node(
                record.dsn,
                kind="switch" if record.is_switch else "endpoint",
                nports=record.nports,
            )
        for record in self._devices.values():
            for index, port in record.ports.items():
                if port.neighbor_dsn is not None and port.up:
                    if port.neighbor_dsn in self._devices:
                        g.add_edge(record.dsn, port.neighbor_dsn)
        return g

    def summary(self) -> dict:
        """Counts used by experiment reports."""
        return {
            "devices": len(self._devices),
            "switches": len(self.switches()),
            "endpoints": len(self.endpoints()),
            "links": self.graph().number_of_edges(),
        }
