"""The fabric manager's topology database.

During discovery the FM accumulates, per device: its general
information (type, DSN, port count), the state of each port, the
device's neighbours, and a source route from the FM to the device —
"the paths that these packets need to reach fabric devices are computed
as the topology information grows" (paper, section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..capability import DEVICE_TYPE_ENDPOINT, DEVICE_TYPE_SWITCH
from ..routing.turnpool import Hop, TurnPool, build_turn_pool, intern_hop


class DatabaseError(RuntimeError):
    """Raised on inconsistent database updates."""


@dataclass(slots=True)
class PortRecord:
    """What the FM knows about one port of a device."""

    #: None until the port's status block has been read.
    up: Optional[bool] = None
    #: DSN of the device on the far side, once discovered.
    neighbor_dsn: Optional[int] = None
    #: Far-side port index, once known.
    neighbor_port: Optional[int] = None


@dataclass(slots=True)
class DeviceRecord:
    """What the FM knows about one device."""

    dsn: int
    type_code: int
    nports: int
    fm_capable: bool = False
    fm_priority: int = 0
    #: Port of this device on which FM requests arrive (None for the
    #: FM's own endpoint).
    ingress_port: Optional[int] = None
    #: Switch traversals between the FM and this device (the route the
    #: FM uses to address it).
    route_hops: List[Hop] = field(default_factory=list)
    #: FM-local egress port for the first link of the route.
    out_port: int = 0
    ports: Dict[int, PortRecord] = field(default_factory=dict)

    @property
    def is_switch(self) -> bool:
        return self.type_code == DEVICE_TYPE_SWITCH

    @property
    def is_endpoint(self) -> bool:
        return self.type_code == DEVICE_TYPE_ENDPOINT

    def route(self) -> TurnPool:
        """The FM -> device source route as a packed turn pool."""
        return build_turn_pool(self.route_hops)

    def port(self, index: int) -> PortRecord:
        """The record for port ``index`` (created on first access)."""
        if not 0 <= index < self.nports:
            raise DatabaseError(
                f"port {index} outside device {self.dsn:#x} "
                f"with {self.nports} ports"
            )
        return self.ports.setdefault(index, PortRecord())


class TopologyDatabase:
    """DSN-keyed store of device records and links."""

    def __init__(self):
        self._devices: Dict[int, DeviceRecord] = {}
        #: True while every record's route fields are exactly what
        #: :meth:`recompute_routes` would produce — the invariant that
        #: lets an incremental recompute keep untouched subtrees.
        #: Additions (new devices/links) clear it: their routes come
        #: from the discovery walk, not from a recompute.
        self._routes_canonical = False
        #: Shortest-path tree of the last recompute:
        #: ``dsn -> (parent_dsn, parent_out_port, ingress_port)``
        #: (``(None, None, None)`` for the FM endpoint).
        self._route_tree: Dict[int, Tuple] = {}
        #: Devices whose port records mutated since the last recompute;
        #: their (and their children's) hops must be re-derived.
        self._touched: set = set()

    # -- mutation ------------------------------------------------------------
    def clear(self) -> None:
        """Discard everything (the paper's full-rediscovery assumption)."""
        self._devices.clear()
        self._routes_canonical = False
        self._route_tree = {}
        self._touched = set()

    def touch(self, dsn: int) -> None:
        """Note an out-of-band port mutation on ``dsn``.

        Callers that flip port state directly on a record (rather than
        through :meth:`mark_port_down` / :meth:`add_link`) must report
        it here so an incremental route recompute re-derives the hops
        around that device.
        """
        self._touched.add(dsn)

    def add_device(self, record: DeviceRecord) -> DeviceRecord:
        if record.dsn in self._devices:
            raise DatabaseError(f"device {record.dsn:#x} already known")
        self._devices[record.dsn] = record
        self._routes_canonical = False
        return record

    def add_link(self, dsn_a: int, port_a: int, dsn_b: int,
                 port_b: Optional[int]) -> None:
        """Record connectivity between two known devices.

        ``port_b`` may be None when the far-side port index is not yet
        known (it is learned from the completion's arrival port).
        """
        rec_a = self.device(dsn_a)
        pa = rec_a.port(port_a)
        pa.up = True
        pa.neighbor_dsn = dsn_b
        pa.neighbor_port = port_b
        rec_b = self.device(dsn_b)
        if port_b is not None:
            pb = rec_b.port(port_b)
            pb.up = True
            pb.neighbor_dsn = dsn_a
            pb.neighbor_port = port_a
        self._routes_canonical = False

    # -- queries --------------------------------------------------------------
    def __contains__(self, dsn: int) -> bool:
        return dsn in self._devices

    def __len__(self) -> int:
        return len(self._devices)

    def device(self, dsn: int) -> DeviceRecord:
        try:
            return self._devices[dsn]
        except KeyError:
            raise DatabaseError(f"unknown device {dsn:#x}") from None

    def devices(self) -> List[DeviceRecord]:
        return list(self._devices.values())

    def switches(self) -> List[DeviceRecord]:
        return [r for r in self._devices.values() if r.is_switch]

    def endpoints(self) -> List[DeviceRecord]:
        return [r for r in self._devices.values() if r.is_endpoint]

    # -- routes ----------------------------------------------------------------
    def extend_route(self, parent: DeviceRecord,
                     egress_port: int) -> Tuple[List[Hop], int]:
        """Route to the device behind ``parent``'s ``egress_port``.

        Returns ``(route_hops, fm_out_port)``.  For the FM's own
        endpoint (no ingress), the route starts on the FM's local port
        ``egress_port`` with zero turns; otherwise the parent switch is
        traversed with one more turn.
        """
        if parent.ingress_port is None:
            return list(parent.route_hops), egress_port
        if not parent.is_switch:
            raise DatabaseError(
                f"cannot route through endpoint {parent.dsn:#x}"
            )
        hops = list(parent.route_hops)
        hops.append(intern_hop(parent.nports, parent.ingress_port,
                               egress_port))
        return hops, parent.out_port

    def route_to_fm(self, record: DeviceRecord) -> Tuple[TurnPool, int]:
        """Source route *from* ``record`` back to the FM endpoint.

        Returns ``(turn_pool, device_out_port)``; used to program
        event-route capabilities.  The reverse route traverses the same
        switches in opposite order, swapping ingress and egress.
        """
        if record.ingress_port is None:
            raise DatabaseError("the FM endpoint needs no route to itself")
        reverse_hops = [
            intern_hop(hop.nports, hop.out_port, hop.in_port)
            for hop in reversed(record.route_hops)
        ]
        return build_turn_pool(reverse_hops), record.ingress_port

    def mark_port_down(self, dsn: int, port_index: int) -> None:
        """Record a link failure on both sides of the link."""
        record = self.device(dsn)
        port = record.port(port_index)
        port.up = False
        self._touched.add(dsn)
        neighbor = port.neighbor_dsn
        if neighbor is not None and neighbor in self._devices:
            far = self._devices[neighbor]
            self._touched.add(neighbor)
            if port.neighbor_port is not None:
                far.port(port.neighbor_port).up = False
            else:
                for candidate in far.ports.values():
                    if candidate.neighbor_dsn == dsn:
                        candidate.up = False

    def prune_unreachable(self, root_dsn: int) -> List[int]:
        """Drop devices no longer connected to ``root_dsn``.

        Returns the DSNs removed.  Used by partial change assimilation
        after link-down events.
        """
        graph = self.graph()
        if root_dsn not in graph:
            return []
        keep = nx.node_connected_component(graph, root_dsn)
        removed = [dsn for dsn in self._devices if dsn not in keep]
        for dsn in removed:
            del self._devices[dsn]
        # Clear dangling neighbor references.
        gone = set(removed)
        for record in self._devices.values():
            for port in record.ports.values():
                if port.neighbor_dsn in gone:
                    port.neighbor_dsn = None
                    port.neighbor_port = None
                    port.up = False
                    self._touched.add(record.dsn)
        return removed

    @property
    def routes_canonical(self) -> bool:
        """Whether stored routes match a recompute of the current state."""
        return self._routes_canonical

    def recompute_routes(self, fm_dsn: int,
                         incremental: bool = False) -> dict:
        """Rebuild every record's source route from the FM.

        After a partial assimilation, routes discovered through a
        now-removed region would be stale; shortest paths over the
        updated database replace them.

        With ``incremental=True`` and a database whose routes are
        already in recompute-canonical form, only routes transiting
        the changed region are rebuilt — records whose shortest-path
        parent, link ports, and full ancestor chain are untouched keep
        their stored hops.  The result is bit-identical to a full
        recompute; when the canonical invariant does not hold (fresh
        discovery output, merged databases), the call silently runs
        the full recompute instead.

        Returns ``{"mode", "rebuilt", "kept"}`` counters for
        diagnostics and benchmarks.
        """
        if incremental and self._routes_canonical:
            return self._recompute_incremental(fm_dsn)
        return self._recompute_full(fm_dsn)

    def _recompute_full(self, fm_dsn: int) -> dict:
        graph = self.graph()
        if fm_dsn not in graph:
            return {"mode": "full", "rebuilt": 0, "kept": 0}
        tree: Dict[int, Tuple] = {}
        paths = nx.single_source_shortest_path(graph, fm_dsn)
        for dsn, node_path in paths.items():
            record = self._devices[dsn]
            if dsn == fm_dsn:
                record.route_hops = []
                record.ingress_port = None
                tree[dsn] = (None, None, None)
                continue
            hops: List[Hop] = []
            for k in range(1, len(node_path) - 1):
                _, in_port = self._link_ports(node_path[k - 1],
                                              node_path[k])
                out_port, _ = self._link_ports(node_path[k],
                                               node_path[k + 1])
                middle = self._devices[node_path[k]]
                hops.append(intern_hop(middle.nports, in_port, out_port))
            first_out, _ = self._link_ports(node_path[0], node_path[1])
            _, ingress = self._link_ports(node_path[-2], node_path[-1])
            record.route_hops = hops
            record.out_port = first_out
            record.ingress_port = ingress
            # Parent-side egress of the last link: the final hop's
            # out_port, or the FM-local port for direct neighbours.
            tree[dsn] = (node_path[-2],
                         hops[-1].out_port if hops else first_out,
                         ingress)
        self._route_tree = tree
        self._touched = set()
        self._routes_canonical = True
        return {"mode": "full", "rebuilt": max(0, len(paths) - 1),
                "kept": 0}

    def _recompute_incremental(self, fm_dsn: int) -> dict:
        """Deletion-safe incremental recompute (see recompute_routes).

        Replays exactly the shortest-path-tree construction of the full
        recompute — a level-synchronous BFS over the adjacency built in
        :meth:`graph`'s insertion order, so parent tie-breaks match
        networkx bit for bit — but materializes hops only for records
        whose tree edge changed, whose endpoints saw port mutations, or
        whose ancestors did.
        """
        if fm_dsn not in self._devices:
            return {"mode": "incremental", "rebuilt": 0, "kept": 0}
        # Adjacency in graph()'s construction order: devices in
        # insertion order, ports in record order, both directions
        # recorded when an edge is first seen (networkx add_edge).
        adj: Dict[int, Dict[int, bool]] = {
            dsn: {} for dsn in self._devices
        }
        for record in self._devices.values():
            a = record.dsn
            near = adj[a]
            for port in record.ports.values():
                b = port.neighbor_dsn
                if b is not None and port.up and b in adj and b not in near:
                    near[b] = True
                    adj[b][a] = True
        # Level-synchronous BFS, mirroring networkx's
        # single_source_shortest_path discovery order.
        parent: Dict[int, Optional[int]] = {fm_dsn: None}
        order: List[int] = [fm_dsn]
        thislevel: List[int] = [fm_dsn]
        while thislevel:
            nextlevel: List[int] = []
            for v in thislevel:
                for w in adj[v]:
                    if w not in parent:
                        parent[w] = v
                        order.append(w)
                        nextlevel.append(w)
            thislevel = nextlevel

        tree: Dict[int, Tuple] = {fm_dsn: (None, None, None)}
        old_tree = self._route_tree
        touched = self._touched
        dirty: set = set()
        rebuilt = 0
        fm_record = self._devices[fm_dsn]
        fm_record.route_hops = []
        fm_record.ingress_port = None
        for v in order[1:]:
            p = parent[v]
            old = old_tree.get(v)
            if (old is not None and old[0] == p and p not in dirty
                    and p not in touched and v not in touched):
                # Same parent, both endpoints untouched, clean ancestor
                # chain: the stored route is already what a full
                # recompute would rebuild.
                tree[v] = old
                continue
            out_port, in_port = self._link_ports(p, v)
            entry = (p, out_port, in_port)
            tree[v] = entry
            if entry == old and p not in dirty:
                continue
            dirty.add(v)
            rebuilt += 1
            record = self._devices[v]
            if p == fm_dsn:
                record.route_hops = []
                record.out_port = out_port
            else:
                prec = self._devices[p]
                hops = list(prec.route_hops)
                hops.append(intern_hop(prec.nports, prec.ingress_port,
                                       out_port))
                record.route_hops = hops
                record.out_port = prec.out_port
            record.ingress_port = in_port
        self._route_tree = tree
        self._touched = set()
        return {"mode": "incremental", "rebuilt": rebuilt,
                "kept": len(order) - 1 - rebuilt}

    def _link_ports(self, dsn_a: int, dsn_b: int) -> Tuple[int, int]:
        """Ports wiring two adjacent known devices (lowest first)."""
        record_a = self.device(dsn_a)
        for index in sorted(record_a.ports):
            port = record_a.ports[index]
            if port.neighbor_dsn == dsn_b and port.up:
                far = port.neighbor_port
                if far is None:
                    record_b = self.device(dsn_b)
                    for j in sorted(record_b.ports):
                        if record_b.ports[j].neighbor_dsn == dsn_a:
                            far = j
                            break
                if far is None:
                    raise DatabaseError(
                        f"far port of {dsn_a:#x}->{dsn_b:#x} unknown"
                    )
                return index, far
        raise DatabaseError(
            f"no up link between {dsn_a:#x} and {dsn_b:#x}"
        )

    # -- views -----------------------------------------------------------------
    def graph(self) -> nx.Graph:
        """The discovered topology as a DSN-keyed networkx graph."""
        g = nx.Graph()
        for record in self._devices.values():
            g.add_node(
                record.dsn,
                kind="switch" if record.is_switch else "endpoint",
                nports=record.nports,
            )
        for record in self._devices.values():
            for index, port in record.ports.items():
                if port.neighbor_dsn is not None and port.up:
                    if port.neighbor_dsn in self._devices:
                        g.add_edge(record.dsn, port.neighbor_dsn)
        return g

    def summary(self) -> dict:
        """Counts used by experiment reports."""
        return {
            "devices": len(self._devices),
            "switches": len(self.switches()),
            "endpoints": len(self.endpoints()),
            "links": self.graph().number_of_edges(),
        }
