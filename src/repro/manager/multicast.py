"""Multicast group management — one of the fabric-management functions
the paper enumerates in section 2 ("multicast group management").

After discovery, the FM can build a multicast group: it computes a
distribution tree over its topology database (the union of shortest
paths between the member endpoints), then programs each on-tree
switch's multicast forwarding table through the multicast capability
(PI-4 writes, up to eight operations per packet).  Member endpoints
then reach the whole group with a single injected packet whose
turn-pool field carries the group id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from ..capability.multicast import MULTICAST_CAP_ID, OP_ADD, encode_op
from ..protocols import pi4
from ..sim.events import Event
from .fm import FabricManager


class MulticastError(RuntimeError):
    """Raised when a group cannot be built."""


@dataclass
class GroupProgrammingStats:
    """Cost of programming one multicast group."""

    group: int
    members: int = 0
    switches_programmed: int = 0
    table_entries: int = 0
    writes_sent: int = 0
    write_failures: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


def compute_group_tree(db, member_dsns: Sequence[int]) -> Dict[int, Set[int]]:
    """Distribution tree as ``{device_dsn: {ports on the tree}}``.

    The tree is the union of shortest paths from the first member to
    every other member — loop-free by construction (a union of
    shortest paths from one source is a tree).
    """
    members = list(dict.fromkeys(member_dsns))
    if len(members) < 2:
        raise MulticastError("a multicast group needs at least two members")
    for dsn in members:
        record = db.device(dsn)
        if not record.is_endpoint:
            raise MulticastError(f"{dsn:#x} is not an endpoint")

    graph = db.graph()
    root = members[0]
    ports: Dict[int, Set[int]] = {}
    edges: Set[Tuple[int, int]] = set()
    for member in members[1:]:
        try:
            path = nx.shortest_path(graph, root, member)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise MulticastError(
                f"member {member:#x} unreachable from {root:#x}"
            ) from None
        for a, b in zip(path, path[1:]):
            edges.add((min(a, b), max(a, b)))
    for a, b in edges:
        port_a, port_b = db._link_ports(a, b)
        ports.setdefault(a, set()).add(port_a)
        ports.setdefault(b, set()).add(port_b)
    return ports


class MulticastGroupManager:
    """Builds and programs multicast groups on behalf of the FM."""

    def __init__(self, fm: FabricManager):
        self.fm = fm
        self.env = fm.env
        #: Groups built so far: group id -> member dsn list.
        self.groups: Dict[int, List[int]] = {}

    def create_group(self, group: int,
                     member_dsns: Sequence[int]) -> Event:
        """Program ``group``; the event triggers with the stats."""
        tree = compute_group_tree(self.fm.database, member_dsns)
        stats = GroupProgrammingStats(
            group=group, members=len(set(member_dsns)),
            started_at=self.env.now,
        )
        done = self.env.event()
        outstanding = [0]
        all_sent = [False]

        def on_write(completion, _ctx) -> None:
            outstanding[0] -= 1
            if not isinstance(completion, pi4.WriteCompletion) or \
                    completion.status != pi4.STATUS_OK:
                stats.write_failures += 1
            if all_sent[0] and outstanding[0] == 0 and not done.triggered:
                stats.finished_at = self.env.now
                self.groups[group] = list(dict.fromkeys(member_dsns))
                done.succeed(stats)

        db = self.fm.database
        for dsn, port_set in sorted(tree.items()):
            record = db.device(dsn)
            if not record.is_switch:
                continue  # endpoints consume; no table to program
            stats.switches_programmed += 1
            ops = [encode_op(OP_ADD, group, port)
                   for port in sorted(port_set)]
            stats.table_entries += len(ops)
            out = record.out_port if record.ingress_port is not None else None
            for start in range(0, len(ops), 8):
                chunk = tuple(ops[start:start + 8])
                message = pi4.WriteRequest(
                    cap_id=MULTICAST_CAP_ID, offset=0, tag=0, data=chunk,
                )
                outstanding[0] += 1
                stats.writes_sent += 1
                self.fm.send_request(
                    message, record.route(), out, callback=on_write,
                )
        all_sent[0] = True
        if outstanding[0] == 0:
            stats.finished_at = self.env.now
            self.groups[group] = list(dict.fromkeys(member_dsns))
            done.succeed(stats)
        return done
