"""Fabric management: the paper's primary contribution.

Provides the fabric manager, its topology database, the processing
time model of Fig. 4, the three discovery implementations of section 3,
and the availability machinery (election, failover, path distribution,
plus the future-work partial and collaborative discovery extensions).
"""

from .consistency import (
    ConsistencyReport,
    Difference,
    TopologyAuditor,
    audit_topology,
)
from .database import DatabaseError, DeviceRecord, PortRecord, TopologyDatabase
from .discovery import (
    ALGORITHM_CLASSES,
    DiscoveryStats,
    ParallelDiscovery,
    SerialDeviceDiscovery,
    SerialPacketDiscovery,
    make_algorithm,
)
from .discovery.distributed import (
    ClaimingParallelDiscovery,
    CollaborativeDiscovery,
    CollaborativeStats,
)
from .discovery.partial import PartialAssimilationManager
from .election import Candidacy, Election, ElectionAgent, ElectionResult
from .failover import FailoverReport, StandbyManager
from .fm import DiscoveryAborted, FabricManager
from .path_distribution import DistributionStats, PathDistributor
from .timing import (
    ALGORITHMS,
    PARALLEL,
    SERIAL_DEVICE,
    SERIAL_PACKET,
    ProcessingTimeModel,
)

__all__ = [
    "ALGORITHMS",
    "ALGORITHM_CLASSES",
    "Candidacy",
    "ClaimingParallelDiscovery",
    "CollaborativeDiscovery",
    "CollaborativeStats",
    "ConsistencyReport",
    "DatabaseError",
    "DeviceRecord",
    "Difference",
    "DiscoveryAborted",
    "DiscoveryStats",
    "TopologyAuditor",
    "audit_topology",
    "DistributionStats",
    "Election",
    "ElectionAgent",
    "ElectionResult",
    "FabricManager",
    "FailoverReport",
    "PARALLEL",
    "ParallelDiscovery",
    "PartialAssimilationManager",
    "PathDistributor",
    "PortRecord",
    "ProcessingTimeModel",
    "SERIAL_DEVICE",
    "SERIAL_PACKET",
    "SerialDeviceDiscovery",
    "SerialPacketDiscovery",
    "StandbyManager",
    "TopologyDatabase",
    "make_algorithm",
]
