"""Path distribution to fabric endpoints.

"The information gathered by [discovery] is used to build a set of
paths between fabric endpoints" (abstract); dynamically distributing
new paths after a topological change is the paper's last future-work
item (section 5).  The distributor computes, from the FM's database,
every endpoint's shortest route to every other endpoint and writes the
entries into the endpoints' path-table capabilities with PI-4 writes
(one write per entry — an entry is five dwords, under the eight-dword
PI-4 limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..capability import PATH_TABLE_CAP_ID, PathTableCapability
from ..protocols import pi4
from ..routing.paths import PathError, db_endpoint_routes
from ..sim.events import Event
from .fm import FabricManager


@dataclass
class DistributionStats:
    """Cost of one path-distribution round."""

    endpoints: int = 0
    entries_written: int = 0
    writes_sent: int = 0
    write_failures: int = 0
    unroutable_pairs: int = 0
    bytes_sent: int = 0
    started_at: float = 0.0
    finished_at: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            raise ValueError("distribution has not finished")
        return self.finished_at - self.started_at

    def asdict(self) -> dict:
        return {
            "endpoints": self.endpoints,
            "entries_written": self.entries_written,
            "writes_sent": self.writes_sent,
            "write_failures": self.write_failures,
            "unroutable_pairs": self.unroutable_pairs,
            "bytes_sent": self.bytes_sent,
            "duration": self.duration,
        }


class PathDistributor:
    """Distributes endpoint-to-endpoint routes after a discovery."""

    def __init__(self, fm: FabricManager):
        self.fm = fm
        self.env = fm.env

    def distribute(self) -> Event:
        """Start distribution; the event triggers with the stats."""
        stats = DistributionStats(started_at=self.env.now)
        done = self.env.event()
        outstanding = [0]
        all_sent = [False]

        def on_write(completion, _ctx) -> None:
            outstanding[0] -= 1
            if isinstance(completion, pi4.WriteCompletion) and \
                    completion.status == pi4.STATUS_OK:
                stats.entries_written += 1
            else:
                stats.write_failures += 1
            _finish_if_done()

        def _finish_if_done() -> None:
            if all_sent[0] and outstanding[0] == 0 and not done.triggered:
                stats.finished_at = self.env.now
                done.succeed(stats)

        db = self.fm.database
        endpoints = db.endpoints()
        stats.endpoints = len(endpoints)
        fm_dsn = self.fm.endpoint.dsn
        for record in endpoints:
            try:
                routes = db_endpoint_routes(db, record.dsn)
            except PathError:
                stats.unroutable_pairs += 1
                continue
            # Address the endpoint itself: loopback for the FM's own
            # endpoint, its discovered route otherwise.
            target_pool = record.route()
            target_out: Optional[int]
            target_out = None if record.dsn == fm_dsn else record.out_port
            for slot, (dst_dsn, (pool, _src_out)) in enumerate(
                sorted(routes.items())
            ):
                entry = PathTableCapability.encode_entry(
                    dst_dsn, pool.pool, pool.bits
                )
                message = pi4.WriteRequest(
                    cap_id=PATH_TABLE_CAP_ID,
                    offset=slot * 5,
                    tag=0,
                    data=tuple(entry),
                )
                outstanding[0] += 1
                stats.writes_sent += 1
                stats.bytes_sent += 8 + 16 + 16 + 20 + 4  # framing+hdr+pi4+data+pcrc
                self.fm.send_request(
                    message, target_pool, target_out, callback=on_write,
                )
        all_sent[0] = True
        _finish_if_done()
        return done
