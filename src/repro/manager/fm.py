"""The fabric manager (FM).

A software entity running on a fabric endpoint (paper, section 2).
This class implements the management behaviour the paper studies:

* it owns the topology database and runs one of the three discovery
  implementations over the fabric;
* it processes every inbound management packet serially, spending the
  algorithm-dependent ``T_FM`` per packet (charged by the hosting
  :class:`~repro.protocols.entity.ManagementEntity`);
* it reacts to PI-5 events by starting the change assimilation process
  — a full rediscovery that discards all previously collected
  information (the paper's stated assumption);
* after a discovery it programs every device's event-route capability
  so future PI-5 notifications can reach it;
* it retries requests that time out, so discovery terminates even if a
  device dies mid-discovery.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..capability import (
    BASELINE_CAP_ID,
    CLAIM_CAP_ID,
    EVENT_ROUTE_CAP_ID,
    GENERAL_INFO_DWORDS,
    ClaimCapability,
    EventRouteCapability,
    decode_general_info,
)
from ..capability.registers import get_field
from ..fabric.endpoint import Endpoint
from ..fabric.packet import PI_DEVICE_MANAGEMENT, PI_EVENT, Packet
from ..protocols import pi4, pi5
from ..protocols.entity import ManagementEntity
from ..protocols.transaction import (
    TimeoutPolicy,
    Transaction,
    TransactionEngine,
)
from ..routing.turnpool import TurnPool
from ..sim.monitor import Counter
from .database import TopologyDatabase
from .discovery import make_algorithm
from .discovery.base import DiscoveryAlgorithm, DiscoveryStats
from .timing import PARALLEL, ProcessingTimeModel


class DiscoveryAborted(RuntimeError):
    """The FM exhausted its restart budget without converging.

    The discovery still *terminated* — its stats carry
    ``aborted=True`` — so nothing hangs on the horizon timeout; this
    exception exists for callers that want budget exhaustion to be
    loud (see :func:`repro.experiments.churn.run_until_quiescent`).
    """


class FabricManager:
    """The primary fabric manager, hosted on ``endpoint``."""

    def __init__(self, endpoint: Endpoint, entity: ManagementEntity,
                 timing: Optional[ProcessingTimeModel] = None,
                 algorithm: str = PARALLEL,
                 request_timeout: float = 1e-3,
                 max_retries: int = 3,
                 program_event_routes: bool = True,
                 auto_start: bool = True,
                 arrival_clears_timeout: bool = True,
                 parallel_window: Optional[int] = None,
                 max_discovery_restarts: int = 8,
                 restart_backoff: float = 0.0,
                 verify_sample: int = 0,
                 verify_seed: int = 0,
                 epoch: int = 1,
                 fence_ownership: bool = False):
        if not endpoint.fm_capable:
            raise ValueError(f"{endpoint.name} is not FM capable")
        self.endpoint = endpoint
        self.entity = entity
        self.env = endpoint.env
        self.timing = timing or ProcessingTimeModel()
        self.algorithm_key = algorithm
        self.program_event_routes = program_event_routes
        #: Whether a completion reaching the FM endpoint clears its
        #: request timer even while it waits in the FM's serial
        #: processing queue.  Disabling this reproduces a retry storm
        #: under the Parallel algorithm on large fabrics (the FM's own
        #: backlog exceeds the timeout) — kept as an ablation switch.
        self.arrival_clears_timeout = arrival_clears_timeout
        #: Optional bound on the Parallel algorithm's outstanding
        #: requests (None = unbounded, the paper's Fig. 3).
        self.parallel_window = parallel_window
        #: Bounded restart/repair policy: at most this many consecutive
        #: automatic restarts (suspect subtrees, unassimilated deferred
        #: events, convergence-guard mismatches) before the FM gives up
        #: and surfaces ``aborted`` in the run's stats.  A PI-5 event
        #: or an explicit :meth:`start_discovery` resets the streak.
        self.max_discovery_restarts = max_discovery_restarts
        #: Base delay before an automatic restart; doubles with each
        #: consecutive restart (0 = restart immediately, the historical
        #: behaviour).
        self.restart_backoff = restart_backoff
        #: Post-discovery convergence guard: after a clean run, re-read
        #: the general information of this many discovered devices (a
        #: seeded sample) and trigger repair on any mismatch.  0
        #: disables the guard (default — guard probes cost packets and
        #: would perturb the paper-faithful measurements).
        self.verify_sample = verify_sample
        #: Seed for the guard's sample choice (combined with the run
        #: index, so consecutive discoveries sample different devices).
        self.verify_seed = verify_seed
        #: Consecutive automatic restarts since the last clean
        #: convergence or external trigger.
        self._restart_streak = 0
        #: Whether the FM reacts to port events before any explicit
        #: discovery — with it on, fabric power-up triggers the initial
        #: discovery by itself ("the topology discovery process is
        #: triggered after fabric initialization").
        self._enabled = auto_start
        #: Ownership epoch (the claim-capability generation this FM
        #: stamps when fencing is on).  A promoted standby runs at the
        #: old primary's epoch + 1; see :mod:`repro.manager.election`.
        self.epoch = epoch
        #: Split-brain fencing: after every clean full discovery, read
        #: each device's claim capability and stamp it with this FM's
        #: epoch.  Observing a *newer* epoch means a later election was
        #: won by someone else — this FM demotes itself instead of
        #: reprogramming event routes.  Off by default (fencing costs
        #: packets and would perturb the paper-faithful measurements).
        self.fence_ownership = fence_ownership
        #: Set once this FM fenced itself off (see :meth:`demote`).
        self.demoted = False
        #: Passive observers called with every accepted PI-5 event
        #: (after duplicate suppression, before assimilation).  This is
        #: the control-plane replication tee a warm standby subscribes
        #: to; an empty list costs nothing and listeners must not
        #: schedule simulation events.
        self.pi5_listeners: List[Callable[[pi5.PortEvent], None]] = []

        #: Optional :class:`repro.obs.span.SpanTracer` (see
        #: :meth:`attach_tracer`).  ``None`` keeps every instrumented
        #: path at a single ``is not None`` test.
        self.tracer = None
        self.database = TopologyDatabase()
        self.discovery: Optional[DiscoveryAlgorithm] = None
        #: Stats of every completed discovery, in order.
        self.history: List[DiscoveryStats] = []
        #: Triggers when the current discovery's event routes are
        #: programmed (or immediately after discovery if disabled).
        self.ready_event = None
        #: Callbacks invoked with the stats of each finished discovery.
        self.on_discovery_complete: List[Callable[[DiscoveryStats], None]] = []
        self.counters = Counter()
        #: Accumulated FM busy time and packet count (Fig. 4 data).
        self.processing_time_total = 0.0
        self.processing_packets = 0

        #: The retrying transaction layer.  Tags are salted with the
        #: endpoint's serial number so concurrent FMs (failover,
        #: election) never collide in the responders' duplicate caches.
        self.engine = TransactionEngine(
            self.env, entity, self.counters,
            max_retries=max_retries,
            default_timeout=request_timeout,
            policy=TimeoutPolicy(
                endpoint.params, self.timing, algorithm,
                floor=request_timeout,
            ),
            tag_salt=endpoint.dsn & 0x7FFF,
            on_transmit=self._on_request_transmitted,
            known_devices=self.database.__len__,
        )
        #: Alias of the engine's outstanding map (legacy name; the
        #: partial-assimilation subclass clears it directly).
        self._pending = self.engine.pending
        #: Highest PI-5 sequence number processed per reporter: lossy
        #: fabrics blindly repeat event notifications, and the repeats
        #: must not be double-assimilated.
        self._event_seqs: Dict[int, int] = {}
        #: PI-5 events that arrived while a discovery was running.
        #: They are re-checked against the fresh database when the run
        #: finishes; any not yet reflected trigger one more discovery
        #: (a change in a region the run had already read would
        #: otherwise be lost forever).
        self._deferred_events: List[pi5.PortEvent] = []

        entity.manager = self

    # -- observability -------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Record spans for discoveries, transactions, and restarts.

        The tracer (:class:`repro.obs.span.SpanTracer`) is passive —
        it never schedules events or consumes randomness — so
        attaching one leaves simulation results bit-identical.  Pass
        ``None`` to detach.
        """
        self.tracer = tracer
        self.engine.tracer = tracer
        # An auto-started FM begins its initial discovery during
        # construction, before a trace session can install itself.
        # Open that run's top-level span retroactively so its claim /
        # port-read children don't end up parentless.
        discovery = self.discovery
        if (tracer is not None and discovery is not None
                and not discovery.done and discovery.span is None
                and discovery.stats.started_at is not None):
            discovery.span = tracer.begin(
                f"discovery:{discovery.key}", "discovery",
                discovery.stats.started_at, track="fm",
                algorithm=discovery.key,
                trigger=discovery.stats.trigger,
            )

    # -- cost model (paper Fig. 4) -----------------------------------------
    def packet_cost(self, packet: Packet) -> float:
        """FM time to process one management packet."""
        cost = self.timing.fm_time(self.algorithm_key, len(self.database))
        self._record_cost(cost)
        return cost

    def _record_cost(self, cost: float) -> None:
        """Accumulate FM busy time (the measured Fig. 4 quantity)."""
        self.processing_time_total += cost
        self.processing_packets += 1

    def mean_processing_time(self) -> float:
        """Average FM time per processed packet so far (Fig. 4)."""
        if self.processing_packets == 0:
            raise RuntimeError("the FM has not processed any packet yet")
        return self.processing_time_total / self.processing_packets

    # -- request layer ------------------------------------------------------
    @property
    def request_timeout(self) -> float:
        """Base (and floor) request timeout of the transaction layer."""
        return self.engine.default_timeout

    @request_timeout.setter
    def request_timeout(self, value: float) -> None:
        self.engine.default_timeout = value
        self.engine.policy.floor = value

    @property
    def max_retries(self) -> int:
        return self.engine.max_retries

    @max_retries.setter
    def max_retries(self, value: int) -> None:
        self.engine.max_retries = value

    def send_request(self, message, pool: TurnPool,
                     out_port: Optional[int], callback: Callable,
                     ctx: Any = None, retries: Optional[int] = None,
                     timeout: Optional[float] = None,
                     span_parent: Optional[Any] = None) -> int:
        """Send a PI-4 request; ``callback(completion_or_None, ctx)``.

        The completion (or ``None`` after the retries are exhausted) is
        delivered after the FM has been charged its per-packet
        processing time.  ``retries``/``timeout`` override the FM-wide
        defaults (used for cheap liveness probes).  ``span_parent``
        nests the transaction's span under the caller's (tracing only).
        """
        return self.engine.open(
            message, pool, out_port, callback, ctx=ctx,
            retries=retries, timeout=timeout, stats=self._active_stats(),
            span_parent=span_parent,
        )

    def _on_request_transmitted(self, entry: Transaction, packet) -> None:
        """Engine hook: per-transmission byte accounting."""
        if entry.stats is not None:
            entry.stats.requests_sent += 1
            entry.stats.bytes_sent += packet.size_bytes(
                self.endpoint.params.framing_overhead,
                self.endpoint.params.pcrc_bytes,
            )

    def note_packet_arrival(self, packet: Packet) -> None:
        """Called by the entity when a management packet is enqueued at
        the FM endpoint (before the FM's serial processing)."""
        if not self.arrival_clears_timeout:
            return
        if packet.header.pi != PI_DEVICE_MANAGEMENT:
            return
        try:
            message = pi4.decode(packet.payload)
        except pi4.Pi4Error:
            return
        self.engine.note_arrival(message.tag)

    def _active_stats(self) -> Optional[DiscoveryStats]:
        if self.discovery is not None and not self.discovery.done:
            return self.discovery.stats
        return None

    # -- inbound management packets ---------------------------------------
    def handle_management_packet(self, packet: Packet,
                                 port) -> None:
        """Called by the entity after charging the FM processing time."""
        if packet.header.pi == PI_EVENT:
            try:
                event = pi5.decode(packet.payload)
            except pi5.Pi5Error:
                self.counters.incr("pi5_decode_errors")
                return
            self.counters.incr("pi5_received")
            if self.tracer is not None:
                self.tracer.instant(
                    "pi5", "pi5", self.env.now, track="fm",
                    reporter=event.reporter_dsn, port=event.port,
                    up=event.up, seq=event.seq,
                )
            if event.seq <= self._event_seqs.get(event.reporter_dsn, 0):
                # A blind retransmission of an event already processed.
                self.counters.incr("pi5_duplicates")
                return
            self._event_seqs[event.reporter_dsn] = event.seq
            for listener in list(self.pi5_listeners):
                listener(event)
            self._handle_event(event)
            return
        if packet.header.pi != PI_DEVICE_MANAGEMENT:
            self.counters.incr("unknown_pi")
            return
        message = packet.meta.get("pi4_msg")
        if message is None:
            try:
                message = pi4.decode(packet.payload)
            except pi4.Pi4Error:
                self.counters.incr("pi4_decode_errors")
                return
        if not pi4.is_completion(message):
            self.counters.incr("unexpected_requests")
            return
        entry = self.engine.complete(message)
        if entry is None:
            stats = self._active_stats()
            if stats is not None:
                stats.stale_completions += 1
            return
        stats = entry.stats
        if stats is not None:
            stats.completions_received += 1
            stats.bytes_received += packet.size_bytes(
                self.endpoint.params.framing_overhead,
                self.endpoint.params.pcrc_bytes,
            )
            # Fig. 7(a): the simulation time at which the FM finished
            # processing each discovery packet.
            stats.packet_timeline.append(
                (stats.completions_received, self.env.now)
            )
        entry.callback(message, entry.ctx)

    # -- PI-5 events / change assimilation ----------------------------------
    def handle_local_event(self, event: pi5.PortEvent) -> None:
        """Port event on the FM's own endpoint (no packet needed)."""
        self.counters.incr("local_events")
        if self.tracer is not None:
            self.tracer.instant(
                "pi5", "pi5", self.env.now, track="fm",
                reporter=event.reporter_dsn, port=event.port,
                up=event.up, seq=event.seq, local=True,
            )
        for listener in list(self.pi5_listeners):
            listener(event)
        self._handle_event(event)

    def _handle_event(self, event: pi5.PortEvent) -> None:
        if not self._enabled:
            self.counters.incr("events_before_enable")
            return
        # An external change signal: the restart budget guards against
        # *silent* divergence loops, not against real event streams.
        self._restart_streak = 0
        if self.discovery is not None and not self.discovery.done:
            # The running discovery reads live port state, so it *may*
            # observe this change — unless it already passed through
            # that region.  Defer and re-check when it finishes.
            self.counters.incr("events_during_discovery")
            self._deferred_events.append(event)
            return
        if event.reporter_dsn in self.database:
            record = self.database.device(event.reporter_dsn)
            known = record.ports.get(event.port)
            if known is not None and known.up == event.up:
                self.counters.incr("events_stale")
                return
        self.counters.incr("changes_assimilated")
        trigger = "initial" if not self.history else "change"
        self.start_discovery(trigger=trigger)

    # -- discovery ------------------------------------------------------------
    @property
    def is_discovering(self) -> bool:
        return self.discovery is not None and not self.discovery.done

    def start_discovery(self, trigger: str = "initial",
                        force: bool = False) -> DiscoveryAlgorithm:
        """Discard the database and run a full discovery.

        Returns the algorithm instance; wait on its ``done_event`` for
        the :class:`DiscoveryStats`.
        """
        self._enabled = True
        if self.is_discovering:
            if not force:
                raise RuntimeError("discovery already in progress")
            old = self.discovery
            if (self.tracer is not None and old is not None
                    and old.span is not None and old._span_owned):
                self.tracer.end(old.span, self.env.now, aborted=True)
                old.span = None
            # cancel_all == the historical ``_pending.clear()`` (no
            # callbacks fire) plus closure of the orphaned spans.
            self.engine.cancel_all()
        self.database.clear()
        if self.ready_event is None or self.ready_event.triggered:
            # Keep a pending ready_event across immediate restarts so
            # waiters see "ready" only once the fabric is quiescent.
            self.ready_event = self.env.event()
        algorithm = make_algorithm(self.algorithm_key, self)
        self.discovery = algorithm
        algorithm.done_event.callbacks.append(self._discovery_finished)
        algorithm.start(trigger=trigger)
        return algorithm

    def _event_assimilated(self, event: pi5.PortEvent) -> bool:
        """Whether the (fresh) database already reflects ``event``."""
        if event.reporter_dsn in self.database:
            record = self.database.device(event.reporter_dsn)
            known = record.ports.get(event.port)
            return known is not None and known.up == event.up
        # Unknown reporter: a down event there is moot (the device is
        # unreachable anyway), but an up event means something appeared
        # that the run missed.
        return not event.up

    def _discovery_finished(self, event) -> None:
        stats: DiscoveryStats = event.value
        self.history.append(stats)
        for callback in list(self.on_discovery_complete):
            callback(stats)
        deferred, self._deferred_events = self._deferred_events, []
        stale_deferred = any(
            not self._event_assimilated(e) for e in deferred
        )
        suspects = (
            set(self.discovery.suspect_roots)
            if self.discovery is not None else set()
        )
        if stale_deferred or suspects:
            # A change arrived mid-run in a region the run had already
            # covered, or a branch died under the walker: the database
            # may be silently wrong.  Repair or go again — bounded
            # (event routes will be programmed by the final run).
            if self._resolve_inconsistency(suspects, stats):
                return
            # Budget exhausted: terminate with the abort surfaced in
            # the stats instead of looping (or hanging a caller on the
            # horizon timeout).
        elif self.verify_sample > 0 and len(self.database) > 1:
            # The streak resets only once the guard passes — a clean
            # walk with failing guard probes is still divergence.
            self._start_convergence_guard(stats)
            return
        else:
            self._restart_streak = 0
        self._fence_then_finish(stats)

    def _finish_ready(self, stats: DiscoveryStats) -> None:
        """Program event routes (or trigger ready immediately)."""
        if self.program_event_routes:
            self.env.process(
                self._program_event_routes(),
                name=f"fm-routes:{self.endpoint.name}",
            )
        else:
            self.ready_event.succeed(stats)

    # -- bounded restart / repair policy ------------------------------------
    def _resolve_inconsistency(self, suspects: Iterable[int],
                               stats: DiscoveryStats) -> bool:
        """React to a possibly-divergent database after a run.

        Prefers a targeted subtree repair (see the partial-assimilation
        subclass), escalates to a full rediscovery, and gives up once
        ``max_discovery_restarts`` consecutive automatic restarts have
        not produced a clean run.  Returns ``True`` when repair or
        restart was initiated (the caller must not finish the run);
        ``False`` when the budget is exhausted — ``stats.aborted`` is
        set and the caller finishes normally so nothing hangs.
        """
        if self._restart_streak >= self.max_discovery_restarts:
            stats.aborted = True
            self.counters.incr("discovery_aborted")
            return False
        # Repairs and restarts share the budget: every automatic
        # recovery action consumes one slot, so a pathological fabric
        # cannot alternate repair/restart forever.
        self._restart_streak += 1
        suspects = {dsn for dsn in suspects if dsn in self.database}
        if suspects and self._attempt_repair(suspects):
            self.counters.incr("subtree_repairs")
            return True
        self.counters.incr("discovery_restarts")
        self._schedule_restart("restart")
        return True

    def _attempt_repair(self, suspects: set) -> bool:
        """Repair suspect subtrees without a full rediscovery.

        The base FM has no partial machinery — every discovery discards
        the database — so it always escalates; the partial-assimilation
        subclass overrides this with a targeted region re-exploration.
        """
        return False

    def _schedule_restart(self, trigger: str) -> None:
        """Start the next automatic rediscovery, after optional backoff."""
        if self.restart_backoff <= 0:
            self.start_discovery(trigger=trigger)
            return
        delay = self.restart_backoff * (2 ** (self._restart_streak - 1))
        timer = self.env.timeout(delay)
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "backoff", "restart", self.env.now, track="fm",
                trigger=trigger, streak=self._restart_streak,
            )

        def fire(_event) -> None:
            # A PI-5 event may have kicked off a discovery during the
            # backoff window; do not stack a second one.
            superseded = self.is_discovering or not self._enabled
            if span is not None:
                self.tracer.end(span, self.env.now, superseded=superseded)
            if superseded:
                return
            self.start_discovery(trigger=trigger)

        timer.callbacks.append(fire)

    # -- post-discovery convergence guard -----------------------------------
    def _start_convergence_guard(self, stats: DiscoveryStats) -> None:
        """Re-read a seeded sample of discovered devices.

        A clean-looking run can still be stale if a change landed in a
        region the walk had already covered *and* its PI-5 event was
        lost.  The guard re-reads the general information of
        ``verify_sample`` devices; a timeout or a serial-number
        mismatch marks the device suspect and triggers the bounded
        restart/repair policy.
        """
        candidates = sorted(
            record.dsn for record in self.database.devices()
            if record.ingress_port is not None
        )
        count = min(self.verify_sample, len(candidates))
        if count == 0:
            self._fence_then_finish(stats)
            return
        rng = random.Random((self.verify_seed << 16) ^ len(self.history))
        sample = rng.sample(candidates, count)
        self.counters.incr("guard_probes", count)
        state = {"outstanding": count}
        mismatched: set = set()

        def on_reread(completion, dsn: int) -> None:
            state["outstanding"] -= 1
            ok = isinstance(completion, pi4.ReadCompletion)
            if ok:
                info = decode_general_info(list(completion.data))
                ok = info["dsn"] == dsn
            if not ok:
                mismatched.add(dsn)
            if state["outstanding"] == 0:
                self._guard_settled(stats, mismatched)

        for dsn in sample:
            record = self.database.device(dsn)
            message = pi4.ReadRequest(
                cap_id=BASELINE_CAP_ID, offset=0, tag=0,
                count=GENERAL_INFO_DWORDS,
            )
            self.send_request(
                message, record.route(), record.out_port,
                callback=on_reread, ctx=dsn,
            )

    def _guard_settled(self, stats: DiscoveryStats,
                       mismatched: set) -> None:
        if not mismatched:
            self._restart_streak = 0
            self._fence_then_finish(stats)
            return
        self.counters.incr("guard_mismatches", len(mismatched))
        if not self._resolve_inconsistency(mismatched, stats):
            self._fence_then_finish(stats)

    # -- ownership fencing ----------------------------------------------------
    def demote(self, stats: Optional[DiscoveryStats] = None,
               reason: str = "fenced") -> None:
        """Fence this FM off: it stops acting as a manager for good.

        Called when the FM observes a claim from a newer ownership
        epoch (it lost an election round it never saw — the classic
        resurrected-old-primary case) or loses a same-epoch duel to a
        higher-ranked candidate.  Outstanding transactions are
        cancelled, further PI-5 events are ignored, and a pending
        ``ready_event`` is resolved so waiters do not hang.  A demotion
        mid-discovery abandons the walk.  Idempotent.
        """
        if self.demoted:
            return
        self.demoted = True
        self._enabled = False
        self.counters.incr("fm_demotions")
        if self.tracer is not None:
            self.tracer.instant(
                "demoted", "failover", self.env.now, track="fm",
                reason=reason, epoch=self.epoch,
            )
        self.engine.cancel_all()
        self._deferred_events.clear()
        ready = self.ready_event
        if ready is not None and not ready.triggered:
            fallback = self.history[-1] if self.history else None
            ready.succeed(stats if stats is not None else fallback)

    @staticmethod
    def _decode_claim(data) -> Optional[Tuple[int, int]]:
        """``(owner_dsn, generation)`` from a claim read, or ``None``."""
        if len(data) < 3:
            return None
        d0, high, low = data[0], data[1], data[2]
        if not get_field(d0, 31, 1):
            return None
        return ((high << 32) | low, get_field(d0, 0, 16))

    def _fence_then_finish(self, stats: DiscoveryStats) -> None:
        """Run the ownership-fencing pass before declaring ready."""
        if self.demoted:
            return
        if (not self.fence_ownership or stats.aborted
                or len(self.database) <= 1):
            self._finish_ready(stats)
            return
        self._stamp_ownership(stats)

    def _stamp_ownership(self, stats: DiscoveryStats,
                         attempt: int = 0,
                         then: Optional[Callable[[DiscoveryStats],
                                                 None]] = None) -> None:
        """Serially re-read every device's claim, then stamp our epoch.

        Two phases, on purpose: *all* claims are read before *any* is
        written, so a resurrected old primary discovers it was deposed
        (some device carries a newer generation) before it can clobber
        a single claim of the new primary.  A same-epoch foreign claim
        is a duel: the election tie-break (higher DSN wins) decides —
        the loser demotes, the winner advances one epoch (an implicit
        new election round) and re-stamps, which overwrites the loser's
        claims everywhere.
        """
        finish = then if then is not None else self._finish_ready
        records = [
            r for r in self.database.devices() if r.ingress_port is not None
        ]
        if not records:
            finish(stats)
            return
        token = object()
        self._fence_token = token
        self.counters.incr("fence_passes")
        observed: Dict[int, Optional[Tuple[int, int]]] = {}
        state = {"outstanding": len(records)}
        me = self.endpoint.dsn

        def claim_of(completion) -> Optional[Tuple[int, int]]:
            ok = (isinstance(completion, pi4.ReadCompletion)
                  and getattr(completion, "status",
                              pi4.STATUS_OK) == pi4.STATUS_OK)
            return self._decode_claim(list(completion.data)) if ok else None

        def on_read(completion, dsn: int) -> None:
            if self._fence_token is not token or self.demoted:
                return
            observed[dsn] = claim_of(completion)
            state["outstanding"] -= 1
            if state["outstanding"] == 0:
                write_phase()

        def write_phase() -> None:
            override = False
            for dsn in sorted(observed):
                claim = observed[dsn]
                if claim is None:
                    continue
                owner, generation = claim
                if generation > self.epoch or (
                        generation == self.epoch and owner > me):
                    self.counters.incr("fence_deposed_observations")
                    self.demote(stats)
                    return
                if generation == self.epoch and owner < me:
                    override = True
            if override and attempt < 2:
                # We outrank the same-epoch claimant: advance an epoch
                # and re-stamp — the new generation overwrites theirs.
                self.epoch += 1
                self.counters.incr("fence_epoch_bumps")
                self._stamp_ownership(stats, attempt + 1, then=then)
                return
            need = [
                dsn for dsn in sorted(observed)
                if observed[dsn] != (me, self.epoch)
            ]
            if not need:
                finish(stats)
                return
            wstate = {"outstanding": len(need)}

            def settle() -> None:
                wstate["outstanding"] -= 1
                if wstate["outstanding"] == 0:
                    finish(stats)

            def on_conflict_read(completion, dsn: int) -> None:
                if self._fence_token is not token or self.demoted:
                    return
                claim = claim_of(completion)
                if claim is not None:
                    owner, generation = claim
                    if generation > self.epoch or (
                            generation == self.epoch and owner > me):
                        self.demote(stats)
                        return
                settle()

            def on_write(completion, dsn: int) -> None:
                if self._fence_token is not token or self.demoted:
                    return
                if completion is None:
                    self.counters.incr("fence_write_failures")
                elif completion.status == pi4.STATUS_CONFLICT:
                    # Lost a same-epoch write race: a serial re-read
                    # tells us to whom, and the tie-break decides.
                    self.counters.incr("fence_conflicts")
                    record = self.database.device(dsn)
                    self.send_request(
                        pi4.ReadRequest(cap_id=CLAIM_CAP_ID, offset=0,
                                        tag=0, count=3),
                        record.route(), record.out_port,
                        callback=on_conflict_read, ctx=dsn,
                    )
                    return
                else:
                    self.counters.incr("devices_fenced")
                settle()

            values = tuple(ClaimCapability.encode(me, self.epoch))
            for dsn in need:
                record = self.database.device(dsn)
                self.send_request(
                    pi4.WriteRequest(cap_id=CLAIM_CAP_ID, offset=0,
                                     tag=0, data=values),
                    record.route(), record.out_port,
                    callback=on_write, ctx=dsn,
                )

        for record in records:
            self.send_request(
                pi4.ReadRequest(cap_id=CLAIM_CAP_ID, offset=0, tag=0,
                                count=3),
                record.route(), record.out_port,
                callback=on_read, ctx=record.dsn,
            )

    def _program_event_routes(self):
        """Write every device's route back to the FM (PI-4 writes)."""
        ready = self.ready_event
        outstanding = [0]
        all_sent = [False]
        done = self.env.event()

        def on_write_done(completion, ctx) -> None:
            outstanding[0] -= 1
            if completion is None:
                self.counters.incr("event_route_write_failures")
            else:
                self.counters.incr("event_routes_programmed")
            if all_sent[0] and outstanding[0] == 0 and not done.triggered:
                done.succeed()

        records = [
            r for r in self.database.devices() if r.ingress_port is not None
        ]
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "route_distribution", "routes", self.env.now,
                track="fm", devices=len(records),
            )
        for record in records:
            pool, out_port = self.database.route_to_fm(record)
            values = EventRouteCapability.encode(
                pool.pool, pool.bits, out_port
            )
            message = pi4.WriteRequest(
                cap_id=EVENT_ROUTE_CAP_ID, offset=0, tag=0,
                data=tuple(values),
            )
            outstanding[0] += 1
            self.send_request(
                message, record.route(), record.out_port,
                callback=on_write_done, span_parent=span,
            )
        all_sent[0] = True
        if outstanding[0] == 0:
            done.succeed()
        yield done
        if span is not None:
            self.tracer.end(span, self.env.now)
        if not ready.triggered:
            ready.succeed(self.history[-1] if self.history else None)

    # -- views -----------------------------------------------------------------
    def last_stats(self) -> DiscoveryStats:
        """Stats of the most recent completed discovery."""
        if not self.history:
            raise RuntimeError("no discovery has completed yet")
        return self.history[-1]

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "discovering" if self.is_discovering else "idle"
        return (
            f"<FabricManager on {self.endpoint.name} "
            f"[{self.algorithm_key}] {state}, "
            f"{len(self.database)} devices known>"
        )
