"""Management-entity processing-time model (paper Fig. 4, Figs. 8-9).

The paper measured, by profiling a software FM on a 3 GHz Pentium 4,
the time the FM spends processing one PI-4 packet under each discovery
implementation (Fig. 4):

* it is largest for Serial Packet, smaller for Serial Device, smallest
  for Parallel ("the implementation of the serial algorithms is more
  complex");
* it grows mildly with network size (bigger topology database);
* the *device*-side processing time is low, constant, and independent
  of both the algorithm and the network size.

These times are exogenous inputs to the simulation, scaled by the *FM
processing factor* and *device processing factor* studied in Figs. 8
and 9 — both are **speed** multipliers (factor 4 = four times faster,
factor 0.2 = five times slower).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Algorithm keys used throughout the manager package.
SERIAL_PACKET = "serial_packet"
SERIAL_DEVICE = "serial_device"
PARALLEL = "parallel"

ALGORITHMS = (SERIAL_PACKET, SERIAL_DEVICE, PARALLEL)

#: Default per-packet FM processing times (seconds) calibrated to the
#: shape and magnitude of Fig. 4 (roughly 13-25 microseconds).
DEFAULT_FM_BASE: Dict[str, float] = {
    SERIAL_PACKET: 19.0e-6,
    SERIAL_DEVICE: 16.0e-6,
    PARALLEL: 13.0e-6,
}

#: Growth of FM processing time with the number of known devices
#: (seconds per device) — the topology database gets slower to search.
DEFAULT_FM_SLOPE = 25.0e-9

#: Device-side PI-4 processing time (seconds): low, constant.
DEFAULT_DEVICE_TIME = 2.5e-6


@dataclass
class ProcessingTimeModel:
    """Computes FM and device packet-processing times.

    Parameters
    ----------
    fm_base:
        Per-algorithm base FM time at an empty topology database.
    fm_slope:
        Additional FM time per device already in the database.
    device_time:
        Device-side time to serve one PI-4 request.
    fm_factor / device_factor:
        Speed multipliers (Figs. 8-9); must be positive.
    """

    fm_base: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_FM_BASE)
    )
    fm_slope: float = DEFAULT_FM_SLOPE
    device_time: float = DEFAULT_DEVICE_TIME
    fm_factor: float = 1.0
    device_factor: float = 1.0

    def __post_init__(self):
        if self.fm_factor <= 0 or self.device_factor <= 0:
            raise ValueError("processing factors must be positive")
        missing = [a for a in ALGORITHMS if a not in self.fm_base]
        if missing:
            raise ValueError(f"fm_base missing algorithms: {missing}")
        if any(t <= 0 for t in self.fm_base.values()):
            raise ValueError("FM base times must be positive")
        if self.device_time <= 0:
            raise ValueError("device time must be positive")
        if self.fm_slope < 0:
            raise ValueError("fm_slope must be non-negative")

    def fm_time(self, algorithm: str, known_devices: int = 0) -> float:
        """FM time to process one packet under ``algorithm``."""
        try:
            base = self.fm_base[algorithm]
        except KeyError:
            raise ValueError(f"unknown algorithm {algorithm!r}") from None
        return (base + self.fm_slope * known_devices) / self.fm_factor

    def device_processing_time(self) -> float:
        """Device time to serve one PI-4 request."""
        return self.device_time / self.device_factor

    def with_factors(self, fm_factor: Optional[float] = None,
                     device_factor: Optional[float] = None,
                     ) -> "ProcessingTimeModel":
        """Copy of the model with different processing factors."""
        return ProcessingTimeModel(
            fm_base=dict(self.fm_base),
            fm_slope=self.fm_slope,
            device_time=self.device_time,
            fm_factor=self.fm_factor if fm_factor is None else fm_factor,
            device_factor=(
                self.device_factor if device_factor is None else device_factor
            ),
        )

    def to_dict(self) -> dict:
        """JSON/pickle-ready rendering (for spawn-safe job descriptions)."""
        return {
            "fm_base": dict(self.fm_base),
            "fm_slope": self.fm_slope,
            "device_time": self.device_time,
            "fm_factor": self.fm_factor,
            "device_factor": self.device_factor,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "ProcessingTimeModel":
        """Rebuild a model from :meth:`to_dict` output.

        Unknown and missing keys raise :class:`ValueError` — a
        misspelled factor silently reverting to the default would
        invalidate a whole sweep.
        """
        known = ("fm_base", "fm_slope", "device_time", "fm_factor",
                 "device_factor")
        unknown = sorted(set(document) - set(known))
        if unknown:
            raise ValueError(
                f"unknown ProcessingTimeModel fields: {', '.join(unknown)}"
            )
        missing = sorted(set(known) - set(document))
        if missing:
            raise ValueError(
                f"missing ProcessingTimeModel fields: {', '.join(missing)}"
            )
        return cls(
            fm_base=dict(document["fm_base"]),
            fm_slope=document["fm_slope"],
            device_time=document["device_time"],
            fm_factor=document["fm_factor"],
            device_factor=document["device_factor"],
        )
