"""The three discovery implementations compared by the paper."""

from typing import Dict, Type

from ..timing import PARALLEL, SERIAL_DEVICE, SERIAL_PACKET
from .base import DiscoveryAlgorithm, DiscoveryStats, Target
from .parallel import ParallelDiscovery
from .serial_device import SerialDeviceDiscovery
from .serial_packet import SerialPacketDiscovery

#: Registry of algorithm key -> implementation class.
ALGORITHM_CLASSES: Dict[str, Type[DiscoveryAlgorithm]] = {
    SERIAL_PACKET: SerialPacketDiscovery,
    SERIAL_DEVICE: SerialDeviceDiscovery,
    PARALLEL: ParallelDiscovery,
}


def make_algorithm(key: str, fm) -> DiscoveryAlgorithm:
    """Instantiate the discovery algorithm named ``key`` for ``fm``."""
    try:
        cls = ALGORITHM_CLASSES[key]
    except KeyError:
        raise ValueError(
            f"unknown discovery algorithm {key!r}; "
            f"choose from {sorted(ALGORITHM_CLASSES)}"
        ) from None
    return cls(fm)


__all__ = [
    "ALGORITHM_CLASSES",
    "DiscoveryAlgorithm",
    "DiscoveryStats",
    "ParallelDiscovery",
    "SerialDeviceDiscovery",
    "SerialPacketDiscovery",
    "Target",
    "make_algorithm",
]
