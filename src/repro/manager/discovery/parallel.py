"""Parallel discovery: propagation-order exploration (Fig. 3).

"Discovery packets spread throughout the fabric in an uncontrolled way.
The FM sends new PI-4 packets as soon as it receives responses to
previous requests ... the order in which devices are discovered is not
deterministic" (paper, section 3.3).  The exploration queue of the
serial algorithms is replaced by a table of pending packets (kept by
the FM's request layer); discovery completes when that table empties.

The propagation-order algorithm is the classic one of Rodeheffer &
Schroeder's Autonet reconfiguration (paper reference [9]).

An optional *window* bounds the number of outstanding requests (a real
FM implementation has finite request state).  Small windows move the
Fig. 8(b) device-speed knee inward — with ``window=4`` the Parallel
time rises visibly by device factor 0.1 — but in this timing regime
(T_FM well above the round trip) no window short of full serialization
reproduces the paper's knee at factor 1/3; see EXPERIMENTS.md.  Set it
with ``FabricManager(parallel_window=...)``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..database import DeviceRecord
from ..timing import PARALLEL
from .base import DiscoveryAlgorithm, Target


class ParallelDiscovery(DiscoveryAlgorithm):
    """Unconstrained (or windowed) propagation-order exploration."""

    key = PARALLEL

    def __init__(self, fm, window: Optional[int] = None):
        super().__init__(fm)
        if window is None:
            window = getattr(fm, "parallel_window", None)
        if window is not None and window < 1:
            raise ValueError("parallel window must be at least 1")
        #: Maximum outstanding requests (None = unbounded, per Fig. 3).
        self.window = window
        self._backlog: Deque[Tuple] = deque()

    # -- windowing ------------------------------------------------------
    def _can_send(self) -> bool:
        return self.window is None or self._outstanding < self.window

    def _dispatch(self, fn, *args) -> None:
        if self._can_send():
            fn(*args)
        else:
            self._backlog.append((fn, args))

    def _drain(self) -> None:
        while self._backlog and self._can_send():
            fn, args = self._backlog.popleft()
            fn(*args)

    # -- scheduling hooks ---------------------------------------------------
    def on_new_device(self, record: DeviceRecord) -> None:
        for index in range(record.nports):
            self._dispatch(self._send_port_read, record, index)

    def on_new_target(self, target: Target) -> None:
        self._dispatch(self._send_general, target)

    def on_port_done(self, record: DeviceRecord, index: int) -> None:
        self._drain()

    def on_device_done(self) -> None:
        self._drain()

    def _has_backlog(self) -> bool:
        return bool(self._backlog)
