"""Partial (change-affected region) discovery — paper future work.

"Another possibility is to explore only the portion of the network
affected by the change [2], instead of the entire fabric" (section 5;
reference [2] is the authors' InfiniBand subnet-discovery study).

:class:`PartialAssimilationManager` keeps the database across changes.
On a PI-5 event it:

1. confirms the reported port's state with a single PI-4 read of that
   port's status block;
2. on a *down* transition, removes the link, prunes any region that
   became unreachable, and recomputes the routes of surviving devices
   (their discovered paths may have crossed the removed region) — no
   further packets;
3. on an *up* transition, runs a propagation-order exploration rooted
   at the reported port only, merging new devices into the database.

A burst of events (every neighbour of a hot-removed switch reports its
own port) is processed sequentially and accounted as *one* assimilation
in the FM history, so its cost is directly comparable to one full
rediscovery by the baseline algorithms.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ...capability import port_block_offset
from ...protocols import pi4, pi5
from ..database import DatabaseError
from ..fm import FabricManager
from .base import DiscoveryStats, Target
from .parallel import ParallelDiscovery

#: Algorithm label used in stats and the FM history.
PARTIAL = "partial"


class _RegionExploration(ParallelDiscovery):
    """Propagation-order exploration rooted inside an existing database."""

    key = PARTIAL

    def start_at(self, targets) -> None:
        """Begin at explicit targets instead of the FM endpoint."""
        if self.stats.started_at is None:
            # Aggregating into a burst's stats keeps the burst's own
            # trigger ("change" or "repair") and start time.
            self.stats.trigger = "change"
            self.stats.started_at = self.env.now
        if not targets:
            self._finished = True
            self.stats.finished_at = self.env.now
            self.stats.devices_found = len(self.db)
            self.done_event.succeed(self.stats)
            return
        for target in targets:
            self._send_general(target)


class PartialAssimilationManager(FabricManager):
    """An FM that assimilates changes without full rediscovery.

    The *initial* discovery still runs the configured full algorithm;
    only subsequent PI-5 events take the partial path.  Events naming
    unknown reporters fall back to a full rediscovery (safety net).
    """

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("algorithm", "parallel")
        super().__init__(*args, **kwargs)
        self._event_queue: Deque[pi5.PortEvent] = deque()
        self._burst_stats: Optional[DiscoveryStats] = None
        #: Open observability span covering the current burst (tracing
        #: only; region explorations share it instead of opening their
        #: own discovery span).
        self._burst_span = None
        self._region: Optional[_RegionExploration] = None
        #: ``(reporter_dsn, port)`` pairs already confirmed (or queued)
        #: in the current burst — also covers the synthetic checks below.
        self._burst_seen: set = set()
        #: Suspect roots accumulated by this burst's region
        #: explorations (mid-walk failures inside a region re-read);
        #: fed to the bounded restart/repair policy when the burst
        #: finishes.
        self._burst_suspects: set = set()

    # -- cost model ---------------------------------------------------------
    def packet_cost(self, packet) -> float:
        # Partial assimilation shares the Parallel implementation's
        # per-packet FM cost.
        cost = self.timing.fm_time("parallel", len(self.database))
        self._record_cost(cost)
        return cost

    # -- event path ---------------------------------------------------------
    def _handle_event(self, event: pi5.PortEvent) -> None:
        if not self._enabled:
            self.counters.incr("events_before_enable")
            return
        # External change signal: reset the automatic-restart budget
        # (mirrors FabricManager._handle_event).
        self._restart_streak = 0
        if self.is_discovering:
            # Defer; FabricManager re-checks these against the fresh
            # database when the full run finishes.
            self.counters.incr("events_during_discovery")
            self._deferred_events.append(event)
            return
        if not self.history:
            # No baseline database yet: run the initial full discovery.
            self.counters.incr("changes_assimilated")
            self.start_discovery(trigger="change")
            return
        key = (event.reporter_dsn, event.port)
        if self._burst_stats is not None:
            # A burst is already assimilating: queue everything into it
            # — even events from reporters the database does not (yet)
            # know.  The in-flight region exploration may discover
            # them; if not, they are safely skippable (any reachable
            # change is also reported by a known boundary device, and
            # an unreachable one is invisible to the FM regardless).
            if key in self._burst_seen:
                self.counters.incr("events_stale")
                return
            self._burst_seen.add(key)
            self._event_queue.append(event)
            return
        if event.reporter_dsn not in self.database:
            self.counters.incr("partial_fallbacks")
            self.start_discovery(trigger="change")
            return
        record = self.database.device(event.reporter_dsn)
        known = record.ports.get(event.port)
        if known is not None and known.up == event.up:
            self.counters.incr("events_stale")
            return
        self._burst_seen = {key}
        self._event_queue.append(event)
        self._burst_stats = DiscoveryStats(
            algorithm=PARTIAL, trigger="change",
            started_at=self.env.now,
        )
        if self.tracer is not None:
            self._burst_span = self.tracer.begin(
                "assimilation:partial", "discovery", self.env.now,
                track="fm", algorithm=PARTIAL, trigger="change",
            )
        self.counters.incr("changes_assimilated")
        self._next_event()

    def _active_stats(self):
        if self._burst_stats is not None:
            return self._burst_stats
        return super()._active_stats()

    @property
    def is_assimilating(self) -> bool:
        """Whether a partial assimilation burst is in progress."""
        return self._burst_stats is not None

    # -- burst processing -----------------------------------------------------
    def _next_event(self) -> None:
        while self._event_queue and \
                self._event_queue[0].reporter_dsn not in self.database:
            # The reporter itself was pruned by an earlier step of this
            # burst; nothing left to confirm there.
            self._event_queue.popleft()
        if not self._event_queue:
            self._finish_burst()
            return
        event = self._event_queue.popleft()
        record = self.database.device(event.reporter_dsn)
        # Step 1: confirm the reported port state with one read.
        message = pi4.ReadRequest(
            cap_id=0, offset=port_block_offset(event.port), tag=0, count=1,
        )
        out = record.out_port if record.ingress_port is not None else None
        self.send_request(
            message, record.route(), out,
            callback=self._on_confirm, ctx=(event, record),
            span_parent=self._burst_span,
        )

    def _on_confirm(self, completion, ctx) -> None:
        event, record = ctx
        if completion is None or not isinstance(completion,
                                                pi4.ReadCompletion):
            # The reporter itself is unreachable: the change is bigger
            # than the event suggests.  Full rediscovery.
            self.counters.incr("partial_fallbacks")
            self._abort_burst_to_full()
            return
        from ...capability import decode_port_status

        status = decode_port_status(completion.data[0])
        if not status["up"]:
            self._assimilate_down(event, record)
        else:
            self._assimilate_up(event, record)

    def _assimilate_down(self, event: pi5.PortEvent, record) -> None:
        port = record.ports.get(event.port)
        suspect = port.neighbor_dsn if port is not None else None
        self.database.mark_port_down(record.dsn, event.port)

        # A down port could be a single link failure (the far device is
        # still alive) or the visible edge of a device removal whose
        # other PI-5 events were lost (their event routes may cross the
        # failed region).  Distinguish with one liveness probe of the
        # far device over an alternate route — the affected-region
        # strategy of the paper's reference [2].
        if suspect is not None and suspect in self.database:
            from ...routing.paths import PathError, db_route

            try:
                pool, out_port = db_route(
                    self.database, self.endpoint.dsn, suspect
                )
            except PathError:
                # No alternate route: the suspect region hangs off the
                # failed link and pruning below removes it.
                pool = None
            if pool is not None:
                out = out_port if pool.bits or out_port is not None else None
                probe = pi4.ReadRequest(cap_id=0, offset=0, tag=0, count=1)
                self.send_request(
                    probe, pool, out_port,
                    callback=self._on_liveness_probe,
                    ctx=suspect,
                    retries=0,
                    span_parent=self._burst_span,
                )
                return  # continue in the probe callback

        self._settle_down_event()

    def _on_liveness_probe(self, completion, suspect: int) -> None:
        if completion is None and suspect in self.database:
            # The device is gone: take all its links down so pruning
            # removes its region in one step.
            suspect_record = self.database.device(suspect)
            for index, far_port in list(suspect_record.ports.items()):
                if far_port.up:
                    self.database.mark_port_down(suspect, index)
        self._settle_down_event()

    def _settle_down_event(self) -> None:
        removed = self.database.prune_unreachable(self.endpoint.dsn)
        self._burst_stats.devices_found = len(self.database)
        try:
            self.database.recompute_routes(self.endpoint.dsn,
                                           incremental=True)
        except DatabaseError:
            self.counters.incr("partial_fallbacks")
            self._abort_burst_to_full()
            return
        self._next_event()

    def _assimilate_up(self, event: pi5.PortEvent, record) -> None:
        if event.port == record.ingress_port:
            # The reported port is the one the FM's own route enters
            # the reporter through — the confirm read just traversed
            # it, so the link is alive and its far side is the already
            # known path parent (a restored-link flap).  Re-record the
            # link; exploring "through" it would be a U-turn.
            port = record.port(event.port)
            port.up = True
            self.database.touch(record.dsn)
            if port.neighbor_dsn is not None and \
                    port.neighbor_dsn in self.database:
                self.database.add_link(record.dsn, event.port,
                                       port.neighbor_dsn,
                                       port.neighbor_port)
            self._next_event()
            return
        try:
            hops, out_port = self.database.extend_route(record, event.port)
        except DatabaseError:
            self.counters.incr("partial_fallbacks")
            self._abort_burst_to_full()
            return
        region = _RegionExploration(self)
        region.stats = self._burst_stats  # aggregate into the burst
        # Claim/port-read spans nest under the burst's span; the burst
        # (not the region) closes it.
        region.span = self._burst_span
        region._span_owned = False
        region.done_event.callbacks.append(lambda _ev: self._region_done())
        self._region = region
        region.start_at([
            Target(hops=hops, out_port=out_port,
                   via_dsn=record.dsn, via_port=event.port)
        ])

    def _region_done(self) -> None:
        if self._region is not None:
            # Mid-walk failures inside the region re-read leave the
            # same silent holes a full walk can suffer; carry them to
            # the burst-level repair policy.
            self._burst_suspects |= self._region.suspect_roots
        self._region = None
        self._next_event()

    def _finish_burst(self) -> None:
        stats = self._burst_stats
        self._burst_stats = None
        self._burst_seen = set()
        stats.finished_at = self.env.now
        stats.devices_found = len(self.database)
        if self._burst_span is not None and self.tracer is not None:
            self.tracer.end(self._burst_span, stats.finished_at,
                            devices=stats.devices_found)
        self._burst_span = None
        self.history.append(stats)
        for callback in list(self.on_discovery_complete):
            callback(stats)
        suspects, self._burst_suspects = self._burst_suspects, set()
        if suspects:
            if self._resolve_inconsistency(suspects, stats):
                # A follow-up repair burst or full rediscovery will
                # program the event routes once it converges.
                return
        else:
            self._restart_streak = 0
        # Reprogram event routes: pruning/exploration may have changed
        # them for part of the fabric.  (Writes are idempotent.)
        # Keep a still-pending ready_event (a repair burst rides on the
        # preceding full run's ready) instead of orphaning its waiters.
        if self.ready_event is None or self.ready_event.triggered:
            self.ready_event = self.env.event()
        if self.program_event_routes:
            self.env.process(
                self._program_event_routes(),
                name=f"fm-routes:{self.endpoint.name}",
            )
        else:
            self.ready_event.succeed(stats)

    # -- targeted subtree repair ---------------------------------------------
    def _attempt_repair(self, suspects: set) -> bool:
        """Re-explore suspect subtrees via the assimilation machinery.

        Synthesizes an *up* event for every recorded-up, non-ingress
        port of each suspect device and runs them as one burst: the
        confirm read re-checks the reporter's liveness and port state,
        the region exploration re-walks whatever hangs behind it, and
        the existing fallback path escalates to a full rediscovery if
        the reporter itself is gone.  Much cheaper than discarding the
        whole database when only one branch is in doubt.
        """
        if self.is_discovering or self._burst_stats is not None:
            return False
        events = []
        seen = set()
        for dsn in sorted(suspects):
            if dsn not in self.database:
                continue
            record = self.database.device(dsn)
            for index in sorted(record.ports):
                port = record.ports[index]
                if port.up and index != record.ingress_port:
                    events.append(pi5.PortEvent(
                        reporter_dsn=dsn, port=index, up=True, seq=0,
                    ))
                    seen.add((dsn, index))
        if not events:
            return False
        self._burst_seen = seen
        self._event_queue.extend(events)
        self._burst_stats = DiscoveryStats(
            algorithm=PARTIAL, trigger="repair",
            started_at=self.env.now,
        )
        if self.tracer is not None:
            self._burst_span = self.tracer.begin(
                "repair:partial", "discovery", self.env.now,
                track="fm", algorithm=PARTIAL, trigger="repair",
            )
        self._next_event()
        return True

    def _abort_burst_to_full(self) -> None:
        """Give up on partial assimilation; run a full discovery."""
        self._event_queue.clear()
        self._burst_seen = set()
        self._burst_suspects = set()
        stats = self._burst_stats
        self._burst_stats = None
        if self._region is not None:
            self._region = None
        if self._burst_span is not None and self.tracer is not None:
            self.tracer.end(self._burst_span, self.env.now,
                            aborted_to_full=True)
        self._burst_span = None
        # cancel_all == the historical ``_pending.clear()`` (no
        # callbacks fire) plus closure of the orphaned spans.
        self.engine.cancel_all()
        if (stats.trigger == "repair"
                and self._restart_streak >= self.max_discovery_restarts):
            # A failed *repair* escalation is an automatic recovery
            # action like any other: past the budget, surface the
            # abort instead of launching yet another full walk.
            stats.aborted = True
            stats.finished_at = self.env.now
            stats.devices_found = len(self.database)
            self.counters.incr("discovery_aborted")
            self.history.append(stats)
            for callback in list(self.on_discovery_complete):
                callback(stats)
            if self.ready_event is None or self.ready_event.triggered:
                self.ready_event = self.env.event()
            self._finish_ready(stats)
            return
        if stats.trigger == "repair":
            self._restart_streak += 1
            self.counters.incr("discovery_restarts")
        full = self.start_discovery(trigger="change-fallback", force=True)
        # Carry the packets already spent into the full run's ledger.
        full.stats.requests_sent += stats.requests_sent
        full.stats.completions_received += stats.completions_received
        full.stats.bytes_sent += stats.bytes_sent
        full.stats.bytes_received += stats.bytes_received
        full.stats.started_at = stats.started_at
