"""Distributed discovery over collaborative fabric managers.

Paper future work (section 5): "One of them is to distribute the
entire process through several collaborative fabric managers, in order
to increase parallelization."

Protocol implemented here:

* Every collaborating FM runs a *claiming* variant of the Parallel
  algorithm.  When an FM receives a new device's general information,
  it first writes a claim (owner DSN + round generation) into the
  device's claim capability (:mod:`repro.capability.claim`).  The
  device's serial packet processing makes the write an atomic
  test-and-set: the first FM gets ``STATUS_OK``, later FMs get
  ``STATUS_CONFLICT``.
* An FM that wins the claim reads the device's ports and keeps
  exploring behind it; a loser records the device and the link it
  arrived through, but stops there — the winner's region begins.
* When every FM's frontier is exhausted, the helpers stream their
  region databases to the primary (one PI-4 write per device record
  into the primary's endpoint, modelling the merge traffic), and the
  primary assembles the union.

Routes between the collaborators are assumed to have been established
during the election phase (the election flood gives every endpoint a
path to every candidate); the coordinator provides them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...capability import CLAIM_CAP_ID, ClaimCapability
from ...protocols import pi4
from ...routing.turnpool import TurnPool
from ...sim.events import Event
from ..database import DeviceRecord, TopologyDatabase
from ..fm import FabricManager
from .base import DiscoveryStats
from .parallel import ParallelDiscovery

#: Algorithm label for claiming explorations.
DISTRIBUTED = "distributed"

#: Five dwords of record payload streamed per device during the merge.
_MERGE_WRITE_DWORDS = 5


class ClaimingParallelDiscovery(ParallelDiscovery):
    """Parallel discovery that claims devices before exploring them."""

    key = DISTRIBUTED

    def __init__(self, fm, generation: int = 1):
        super().__init__(fm)
        self.generation = generation
        #: DSNs this FM owns (claims it won).
        self.owned: set = set()
        #: DSNs seen but owned by another collaborator.
        self.foreign: set = set()

    def packet_cost_key(self) -> str:
        return "parallel"

    # A new device is claimed before its ports are read.
    def on_new_device(self, record: DeviceRecord) -> None:
        message = pi4.WriteRequest(
            cap_id=CLAIM_CAP_ID, offset=0, tag=0,
            data=tuple(
                ClaimCapability.encode(self.fm.endpoint.dsn,
                                       self.generation)
            ),
        )
        out = record.out_port if record.ingress_port is not None else None
        self._outstanding += 1
        self.fm.send_request(
            message, record.route(), out,
            callback=self._on_claim, ctx=record,
        )

    def _on_claim(self, completion, record: DeviceRecord) -> None:
        self._outstanding -= 1
        if (isinstance(completion, pi4.WriteCompletion)
                and completion.status == pi4.STATUS_OK):
            self.owned.add(record.dsn)
            super().on_new_device(record)  # read the ports, explore on
        else:
            # Claimed by a collaborator (or unreachable): boundary.
            self.foreign.add(record.dsn)
            self.stats.abandoned_targets += (
                0 if completion is not None else 1
            )
        self._maybe_finish()


@dataclass
class CollaborativeStats:
    """Outcome of one collaborative discovery round."""

    generation: int
    exploration_times: Dict[str, float] = field(default_factory=dict)
    region_sizes: Dict[str, int] = field(default_factory=dict)
    merge_writes: int = 0
    merge_duration: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    per_fm: Dict[str, DiscoveryStats] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """End-to-end: exploration (parallel) plus the merge stream."""
        return self.finished_at - self.started_at

    @property
    def total_packets(self) -> int:
        return sum(s.total_packets for s in self.per_fm.values()) + \
            2 * self.merge_writes


class CollaborativeDiscovery:
    """Coordinates one discovery round across several FMs.

    Parameters
    ----------
    primary:
        The FM that ends up with the merged database.
    helpers:
        Additional FMs, each with a route to the primary:
        ``[(fm, (turn_pool, out_port)), ...]``.
    generation:
        Claim generation for this round (bump it per round).
    """

    def __init__(self, primary: FabricManager,
                 helpers: List[Tuple[FabricManager, Tuple[TurnPool, int]]],
                 generation: int = 1):
        if not helpers:
            raise ValueError("collaborative discovery needs helpers")
        self.primary = primary
        self.helpers = helpers
        self.generation = generation
        self.env = primary.env

    def run(self) -> Event:
        """Start the round; the event triggers with the stats."""
        stats = CollaborativeStats(
            generation=self.generation, started_at=self.env.now,
        )
        done = self.env.event()
        fms = [self.primary] + [fm for fm, _route in self.helpers]
        explorations: Dict[str, ClaimingParallelDiscovery] = {}
        remaining = [len(fms)]

        for fm in fms:
            fm.database.clear()
            exploration = ClaimingParallelDiscovery(
                fm, generation=self.generation
            )
            fm.discovery = exploration
            explorations[fm.endpoint.name] = exploration

            def finished(event, name=fm.endpoint.name):
                exp = explorations[name]
                stats.per_fm[name] = exp.stats
                stats.exploration_times[name] = exp.stats.discovery_time
                stats.region_sizes[name] = len(exp.owned)
                remaining[0] -= 1
                if remaining[0] == 0:
                    self._merge(stats, explorations, done)

            exploration.done_event.callbacks.append(finished)
            exploration.start(trigger="collaborative")
        return done

    # -- merge phase ------------------------------------------------------------
    def _merge(self, stats: CollaborativeStats,
               explorations: Dict[str, ClaimingParallelDiscovery],
               done: Event) -> None:
        merge_start = self.env.now
        outstanding = [0]
        all_sent = [False]

        def on_ack(_completion, _ctx) -> None:
            outstanding[0] -= 1
            if all_sent[0] and outstanding[0] == 0:
                self._assemble(stats, explorations)
                stats.merge_duration = self.env.now - merge_start
                stats.finished_at = self.env.now
                if not done.triggered:
                    done.succeed(stats)

        for fm, route in self.helpers:
            pool, out_port = route
            exploration = explorations[fm.endpoint.name]
            for dsn in sorted(exploration.owned):
                # One write per owned record models the transfer cost;
                # content rides out-of-band (see module docstring).
                message = pi4.WriteRequest(
                    cap_id=CLAIM_CAP_ID, offset=0, tag=0,
                    data=tuple(
                        ClaimCapability.encode(dsn,
                                               (self.generation + 1) & 0xFFFF)
                    ),
                )
                outstanding[0] += 1
                stats.merge_writes += 1
                fm.send_request(message, pool, out_port, callback=on_ack)
        all_sent[0] = True
        if outstanding[0] == 0:
            on_ack(None, None)

    def _assemble(self, stats: CollaborativeStats,
                  explorations: Dict[str, ClaimingParallelDiscovery]) -> None:
        """Union the regional databases into the primary's."""
        primary_db = self.primary.database
        for name, exploration in explorations.items():
            if exploration.fm is self.primary:
                continue
            for record in exploration.fm.database.devices():
                if record.dsn not in primary_db:
                    clone = DeviceRecord(
                        dsn=record.dsn,
                        type_code=record.type_code,
                        nports=record.nports,
                        fm_capable=record.fm_capable,
                        fm_priority=record.fm_priority,
                        ingress_port=record.ingress_port,
                        route_hops=list(record.route_hops),
                        out_port=record.out_port,
                    )
                    primary_db.add_device(clone)
            for record in exploration.fm.database.devices():
                target = primary_db.device(record.dsn)
                for index, port in record.ports.items():
                    mine = target.port(index)
                    if mine.up is None:
                        mine.up = port.up
                    if port.neighbor_dsn is not None:
                        mine.neighbor_dsn = port.neighbor_dsn
                        mine.neighbor_port = port.neighbor_port
                        mine.up = port.up
        # Routes imported from helpers are relative to *their* vantage
        # point; rebuild everything relative to the primary.
        primary_db.recompute_routes(self.primary.endpoint.dsn)
