"""Shared machinery of the three discovery implementations.

All three algorithms (paper, section 3) perform the same *work*:

1. discover the endpoint hosting the FM (a local configuration-space
   read);
2. for every reachable device: read its general information (type,
   DSN, port count) with one PI-4 read; if the DSN is already known the
   device was reached through an alternate path — record the link and
   stop (one packet spent, exactly as in Fig. 2);
3. otherwise read every port's status block (one PI-4 read each) and
   create an exploration target for each active port;
4. finish when no work is outstanding.

They differ only in *scheduling* — how many requests may be in flight:

* :class:`~repro.manager.discovery.serial_packet.SerialPacketDiscovery`
  — one packet in the fabric at any time (the ASI-SIG proposal);
* :class:`~repro.manager.discovery.serial_device.SerialDeviceDiscovery`
  — devices serial, port reads of the current device in parallel;
* :class:`~repro.manager.discovery.parallel.ParallelDiscovery` —
  propagation-order exploration, unconstrained.

Subclasses implement the four scheduling hooks at the bottom of
:class:`DiscoveryAlgorithm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ...capability import (
    BASELINE_CAP_ID,
    GENERAL_INFO_DWORDS,
    decode_general_info,
    decode_port_status,
    port_block_offset,
)
from ...protocols import pi4
from ...routing.turnpool import Hop, build_turn_pool
from ..database import DeviceRecord


@dataclass
class DiscoveryStats:
    """Everything measured about one discovery run (paper, section 4.1:
    "the amount of management packets and bytes generated and received
    by the FM, and the topology discovery time")."""

    algorithm: str = ""
    trigger: str = "initial"
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    requests_sent: int = 0
    completions_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    duplicates_detected: int = 0
    timeouts: int = 0
    retries: int = 0
    #: Completions that matched no outstanding transaction — answers to
    #: requests already retried to completion, or link-layer replays.
    stale_completions: int = 0
    abandoned_targets: int = 0
    #: Mid-walk failures on an *already-claimed* branch: the request
    #: that died had live evidence behind it (a parent whose port read
    #: said "up", or a device whose record exists), so its subtree may
    #: be silently incomplete.  The FM's restart/repair policy keys off
    #: this (see :meth:`FabricManager._discovery_finished`).
    suspect_subtrees: int = 0
    #: Re-reads that returned a *different* device serial number than
    #: the one previously recorded behind that parent port — a device
    #: was swapped mid-walk.
    serial_mismatches: int = 0
    #: Set when the FM exhausted its restart budget and gave up on
    #: reconciling this run's database with the fabric (the run still
    #: terminated — this flag replaces hanging on the horizon timeout).
    aborted: bool = False
    devices_found: int = 0
    #: ``(packet_number, fm_time)`` per completion processed at the FM —
    #: the Fig. 7(a) series.
    packet_timeline: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def discovery_time(self) -> float:
        """Seconds from discovery start to the last packet processed."""
        if self.started_at is None or self.finished_at is None:
            raise ValueError("discovery has not finished")
        return self.finished_at - self.started_at

    @property
    def total_packets(self) -> int:
        return self.requests_sent + self.completions_received

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def asdict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "trigger": self.trigger,
            "discovery_time": self.discovery_time,
            "devices_found": self.devices_found,
            "requests_sent": self.requests_sent,
            "completions_received": self.completions_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "duplicates_detected": self.duplicates_detected,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "stale_completions": self.stale_completions,
            "abandoned_targets": self.abandoned_targets,
            "suspect_subtrees": self.suspect_subtrees,
            "serial_mismatches": self.serial_mismatches,
            "aborted": self.aborted,
        }


@dataclass
class Target:
    """A device to explore: a route plus how we found it."""

    hops: list
    out_port: Optional[int]  # FM-local egress port; None = loopback
    via_dsn: Optional[int] = None  # parent device
    via_port: Optional[int] = None  # parent port leading here
    #: Open claim span while this target's general read is in flight
    #: (tracing only; ``None`` when tracing is disabled).
    span: object = None


class DiscoveryAlgorithm:
    """Base class: shared exploration logic, abstract scheduling."""

    #: Algorithm key matching :mod:`repro.manager.timing`.
    key = "abstract"

    def __init__(self, fm):
        self.fm = fm
        self.db = fm.database
        self.env = fm.env
        self.stats = DiscoveryStats(algorithm=self.key)
        self.done_event = self.env.event()
        self._finished = False
        self._outstanding = 0
        #: Top-level span covering this run.  Owned (begun/ended) by
        #: this instance unless a surrounding burst supplied it (see
        #: the partial-assimilation region explorations).
        self.span = None
        self._span_owned = True
        self._port_spans = {}
        #: DSNs whose subtree may be incompletely explored because a
        #: request into it died mid-walk (retries exhausted on a
        #: claimed branch) or because a re-read found a different
        #: serial number.  The FM inspects this set when the run
        #: finishes and applies its bounded restart/repair policy.
        self.suspect_roots: set = set()

    # -- lifecycle ------------------------------------------------------
    def start(self, trigger: str = "initial") -> None:
        """Begin discovery at the FM's own endpoint."""
        self.stats.trigger = trigger
        self.stats.started_at = self.env.now
        if self._tracer is not None:
            self.span = self._tracer.begin(
                f"discovery:{self.key}", "discovery", self.env.now,
                track="fm", algorithm=self.key, trigger=trigger,
            )
        self._send_general(Target(hops=[], out_port=None))

    @property
    def done(self) -> bool:
        return self._finished

    @property
    def _tracer(self):
        """Observability (``None`` = disabled, the zero-overhead path).

        Read through to the FM on every use rather than snapshotted at
        construction: the FM builds its initial discovery object before
        a :class:`~repro.obs.session.TraceSession` is installed on the
        setup, and the session must still capture that run.
        """
        return self.fm.tracer

    def _maybe_finish(self) -> None:
        if self._finished or self._outstanding > 0 or self._has_backlog():
            return
        self._finished = True
        self.stats.finished_at = self.env.now
        self.stats.devices_found = len(self.db)
        if (self.span is not None and self._span_owned
                and self._tracer is not None):
            self._tracer.end(self.span, self.stats.finished_at,
                             devices=self.stats.devices_found)
        self.done_event.succeed(self.stats)

    # -- request plumbing ---------------------------------------------------
    def _send_general(self, target: Target) -> None:
        """Read a device's six general-information dwords."""
        pool = build_turn_pool(target.hops)
        message = pi4.ReadRequest(
            cap_id=BASELINE_CAP_ID, offset=0, tag=0,
            count=GENERAL_INFO_DWORDS,
        )
        self._outstanding += 1
        if self._tracer is not None:
            target.span = self._tracer.begin(
                "claim", "discovery", self.env.now,
                parent=self.span, track="discovery",
                via_dsn=target.via_dsn, via_port=target.via_port,
            )
        self.fm.send_request(
            message, pool, target.out_port,
            callback=self._on_general, ctx=target,
            span_parent=target.span,
        )

    def _send_port_read(self, record: DeviceRecord, index: int) -> None:
        """Read one port-status block of a known device."""
        pool = record.route()
        out = record.out_port if record.ingress_port is not None else None
        message = pi4.ReadRequest(
            cap_id=BASELINE_CAP_ID, offset=port_block_offset(index),
            tag=0, count=1,
        )
        self._outstanding += 1
        span = None
        if self._tracer is not None:
            span = self._tracer.begin(
                "port_read", "discovery", self.env.now,
                parent=self.span, track="discovery",
                dsn=record.dsn, port=index,
            )
            self._port_spans[(record.dsn, index)] = span
        self.fm.send_request(
            message, pool, out,
            callback=self._on_port, ctx=(record, index),
            span_parent=span,
        )

    # -- completion handling ---------------------------------------------------
    def _on_general(self, completion, target: Target) -> None:
        self._outstanding -= 1
        if target.span is not None and self._tracer is not None:
            ok = isinstance(completion, pi4.ReadCompletion)
            self._tracer.end(target.span, self.env.now,
                             outcome="claimed" if ok else "abandoned")
            target.span = None
        if completion is None or not isinstance(completion,
                                                pi4.ReadCompletion):
            # Timed out or completion-with-error: the device vanished
            # mid-discovery (or the route went stale).  Abandon.
            self.stats.abandoned_targets += 1
            if target.via_dsn is not None and target.via_dsn in self.db:
                # Retries exhausted on an already-claimed branch: the
                # parent's port read said something live was there, so
                # the fabric changed under us and whatever hangs off
                # this branch is now suspect.
                self.stats.suspect_subtrees += 1
                self.suspect_roots.add(target.via_dsn)
            self.on_device_done()
            self._maybe_finish()
            return

        info = decode_general_info(list(completion.data))
        dsn = info["dsn"]
        arrival = (
            None if completion.arrival_port == pi4.NO_PORT
            else completion.arrival_port
        )

        if target.via_dsn is not None and target.via_dsn in self.db:
            # A re-read through a parent port that already recorded a
            # neighbour must find the *same* device; a different serial
            # number means the device was swapped mid-walk and any
            # state learned through it is suspect.
            known = self.db.device(target.via_dsn).ports.get(
                target.via_port)
            if (known is not None and known.neighbor_dsn is not None
                    and known.neighbor_dsn != dsn):
                self.stats.serial_mismatches += 1
                self.suspect_roots.add(target.via_dsn)

        if dsn in self.db:
            # Reached through an alternate path (Fig. 2 decision box):
            # update connectivity only, one packet spent.
            self.stats.duplicates_detected += 1
            if target.via_dsn is not None:
                self.db.add_link(target.via_dsn, target.via_port, dsn,
                                 arrival)
            self.on_device_done()
            self._maybe_finish()
            return

        record = DeviceRecord(
            dsn=dsn,
            type_code=info["type_code"],
            nports=info["nports"],
            fm_capable=info["fm_capable"],
            fm_priority=info["fm_priority"],
            ingress_port=arrival,
            route_hops=target.hops,
            out_port=target.out_port if target.out_port is not None else 0,
        )
        self.db.add_device(record)
        if target.via_dsn is not None:
            self.db.add_link(target.via_dsn, target.via_port, dsn, arrival)

        # Fig. 2: "read the additional attributes from the device's
        # configuration space" — one read per port block.
        self.on_new_device(record)
        self._maybe_finish()

    def _on_port(self, completion, ctx) -> None:
        self._outstanding -= 1
        record, index = ctx
        if self._tracer is not None:
            span = self._port_spans.pop((record.dsn, index), None)
            if span is not None:
                ok = isinstance(completion, pi4.ReadCompletion)
                self._tracer.end(span, self.env.now,
                                 outcome="read" if ok else "abandoned")
        port = record.port(index)
        if completion is None or not isinstance(completion,
                                                pi4.ReadCompletion):
            port.up = False  # unknowable; treat as inactive
            self.stats.abandoned_targets += 1
            # The device itself was claimed (its general read answered
            # moments ago); losing a port read means the route to it
            # broke mid-walk — everything behind it is suspect.
            self.stats.suspect_subtrees += 1
            self.suspect_roots.add(record.dsn)
        else:
            status = decode_port_status(completion.data[0])
            port.up = status["up"]
            if status["up"] and index != record.ingress_port:
                # "An active port indicates that there is a live device
                # attached to the other end" — explore it.
                hops, out_port = self.db.extend_route(record, index)
                self.on_new_target(
                    Target(hops=hops, out_port=out_port,
                           via_dsn=record.dsn, via_port=index)
                )
        self.on_port_done(record, index)
        self._maybe_finish()

    # -- scheduling hooks (implemented by subclasses) ------------------------
    def on_new_device(self, record: DeviceRecord) -> None:
        """A new device's general info arrived; schedule its port reads."""
        raise NotImplementedError

    def on_new_target(self, target: Target) -> None:
        """An active port revealed a device to explore; schedule it."""
        raise NotImplementedError

    def on_port_done(self, record: DeviceRecord, index: int) -> None:
        """A port read finished (hook for serial pacing)."""
        raise NotImplementedError

    def on_device_done(self) -> None:
        """A general read finished without port reads (duplicate or
        abandoned target); hook for serial pacing."""
        raise NotImplementedError

    def _has_backlog(self) -> bool:
        """Whether scheduling state still holds deferred work."""
        raise NotImplementedError
