"""Serial Device discovery: the authors' improved serialized algorithm.

"Devices are discovered serially, but internal ports are checked in
parallel ... the information about the ports in a device is obtained in
a parallel way, by sending concurrently all the necessary PI-4 read
request packets" (paper, section 3.2).  The Fig. 2 flow chart still
applies; only the port-read phase is concurrent, which overlaps each
request's round trip with the FM's processing of the previous
completion.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..database import DeviceRecord
from ..timing import SERIAL_DEVICE
from .base import DiscoveryAlgorithm, Target


class SerialDeviceDiscovery(DiscoveryAlgorithm):
    """Serial device exploration with concurrent per-device port reads."""

    key = SERIAL_DEVICE

    def __init__(self, fm):
        super().__init__(fm)
        self._queue: Deque[Target] = deque()
        self._ports_pending: int = 0

    # -- scheduling hooks ---------------------------------------------------
    def on_new_device(self, record: DeviceRecord) -> None:
        # Burst all port reads for this device at once.
        self._ports_pending = record.nports
        if record.nports == 0:  # defensive; devices have >= 1 port
            self._advance()
            return
        for index in range(record.nports):
            self._send_port_read(record, index)

    def on_new_target(self, target: Target) -> None:
        self._queue.append(target)

    def on_port_done(self, record: DeviceRecord, index: int) -> None:
        self._ports_pending -= 1
        if self._ports_pending == 0:
            self._advance()

    def on_device_done(self) -> None:
        self._advance()

    # -- pacing ------------------------------------------------------------
    def _advance(self) -> None:
        """Move on to the next queued device, if any."""
        if self._queue:
            self._send_general(self._queue.popleft())

    def _has_backlog(self) -> bool:
        return bool(self._queue)
