"""Serial Packet discovery: the ASI-SIG serialized proposal (Fig. 2).

"Once the algorithm starts discovering a device in the fabric, it reads
all the necessary information from its device configuration space,
using a sequential and synchronized way, before it proceeds to discover
additional devices.  In other words, in this algorithm there is only a
request packet in the fabric in every moment in time."  Exploration is
breadth-first over an exploration queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..database import DeviceRecord
from ..timing import SERIAL_PACKET
from .base import DiscoveryAlgorithm, Target


class SerialPacketDiscovery(DiscoveryAlgorithm):
    """One outstanding PI-4 request at all times."""

    key = SERIAL_PACKET

    def __init__(self, fm):
        super().__init__(fm)
        #: The Fig. 2 "Device Queue".
        self._queue: Deque[Target] = deque()
        #: Device whose ports are currently being read, if any.
        self._current: Optional[DeviceRecord] = None
        self._next_port: int = 0

    # -- scheduling hooks ---------------------------------------------------
    def on_new_device(self, record: DeviceRecord) -> None:
        # Start reading this device's ports, one request at a time.
        self._current = record
        self._next_port = 0
        self._advance()

    def on_new_target(self, target: Target) -> None:
        # Discovered devices wait in the queue until the current device
        # is fully read.
        self._queue.append(target)

    def on_port_done(self, record: DeviceRecord, index: int) -> None:
        self._advance()

    def on_device_done(self) -> None:
        # Duplicate or abandoned target: nothing more to read there.
        self._current = None
        self._advance()

    # -- pacing ------------------------------------------------------------
    def _advance(self) -> None:
        """Issue exactly one next request, if any work remains."""
        if self._outstanding > 0:
            return  # the single allowed packet is already in flight
        if self._current is not None:
            if self._next_port < self._current.nports:
                index = self._next_port
                self._next_port += 1
                self._send_port_read(self._current, index)
                return
            self._current = None
        if self._queue:
            self._send_general(self._queue.popleft())

    def _has_backlog(self) -> bool:
        if self._current is not None and self._next_port < self._current.nports:
            return True
        return bool(self._queue)
