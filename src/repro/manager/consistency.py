"""Topology consistency auditing: is the FM's database actually true?

The paper's evaluation can eyeball correctness because each run has
exactly one topological change and a quiescent fabric while the FM
explores.  Under continuous churn (overlapping changes landing
mid-discovery) "the discovery finished" no longer implies "the database
is right" — a silently stale database is worse than a slow one.  The
:class:`TopologyAuditor` makes convergence *checkable*: it diffs the
FM's :class:`~repro.manager.database.TopologyDatabase` against the live
:class:`~repro.fabric.fabric.Fabric` ground truth and produces a
structured :class:`ConsistencyReport` listing every discrepancy:

* **missing devices** — active and reachable from the FM, but absent
  from the database;
* **phantom devices** — in the database, but inactive or unreachable
  in the fabric;
* **missing / phantom links** — edge-set differences between the two
  topologies;
* **stale ports** — ports the database claims are up whose physical
  link is down (or whose far side is dead);
* **bad routes** — each record's stored source route is replayed
  hop-by-hop through the live fabric (turn pool semantics, exactly as
  a switch would consume it); a route that crosses a down link, enters
  a dead device, or terminates at the wrong DSN is flagged.

The auditor is an *oracle*: it reads simulator ground truth the real
FM could never see, so it must only ever be used by tests, soak
harnesses, and experiment post-conditions — never by the management
plane itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..routing.turnpool import (
    TurnPoolError,
    forward_egress,
    read_forward_turn,
)

#: Difference kinds, in report order.
MISSING_DEVICE = "missing_device"
PHANTOM_DEVICE = "phantom_device"
MISSING_LINK = "missing_link"
PHANTOM_LINK = "phantom_link"
STALE_PORT = "stale_port"
BAD_ROUTE = "bad_route"

KINDS = (MISSING_DEVICE, PHANTOM_DEVICE, MISSING_LINK, PHANTOM_LINK,
         STALE_PORT, BAD_ROUTE)


@dataclass(frozen=True)
class Difference:
    """One discrepancy between the database and the fabric."""

    kind: str
    #: What the difference is about (device name/DSN or link name).
    subject: str
    #: Human-readable explanation.
    detail: str

    def __str__(self):
        return f"[{self.kind}] {self.subject}: {self.detail}"


@dataclass
class ConsistencyReport:
    """Structured outcome of one audit."""

    differences: List[Difference] = field(default_factory=list)
    devices_checked: int = 0
    links_checked: int = 0
    routes_checked: int = 0
    audited_at: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the database exactly matches the reachable fabric."""
        return not self.differences

    def by_kind(self) -> Dict[str, int]:
        """Difference counts per kind (zero-count kinds omitted)."""
        counts: Dict[str, int] = {}
        for diff in self.differences:
            counts[diff.kind] = counts.get(diff.kind, 0) + 1
        return counts

    def of_kind(self, kind: str) -> List[Difference]:
        return [d for d in self.differences if d.kind == kind]

    def asdict(self) -> dict:
        return {
            "ok": self.ok,
            "differences": len(self.differences),
            "by_kind": self.by_kind(),
            "devices_checked": self.devices_checked,
            "links_checked": self.links_checked,
            "routes_checked": self.routes_checked,
            "audited_at": self.audited_at,
        }

    def summary(self) -> str:
        """One line for logs / experiment reports."""
        if self.ok:
            return (
                f"consistent ({self.devices_checked} devices, "
                f"{self.links_checked} links, "
                f"{self.routes_checked} routes)"
            )
        kinds = ", ".join(
            f"{count} {kind}" for kind, count in sorted(self.by_kind().items())
        )
        return f"{len(self.differences)} difference(s): {kinds}"

    def render(self) -> str:
        """Multi-line report, one difference per line."""
        lines = [self.summary()]
        lines += [f"  {diff}" for diff in self.differences]
        return "\n".join(lines)


class TopologyAuditor:
    """Diffs an FM's topology database against the live fabric.

    Parameters
    ----------
    fabric:
        The ground-truth fabric.
    fm:
        The fabric manager whose database is audited.  Only devices
        reachable from the FM's endpoint over active links count as
        ground truth — an unreachable island is invisible to any
        correct discovery.
    """

    def __init__(self, fabric, fm):
        self.fabric = fabric
        self.fm = fm

    # -- ground truth --------------------------------------------------------
    def _truth(self) -> Tuple[Dict[int, str], Set[frozenset]]:
        """Reachable ground truth as ``(dsn -> name, edge set)``."""
        fabric = self.fabric
        reachable = set(fabric.reachable_devices(self.fm.endpoint.name))
        names_by_dsn = {
            fabric.device(name).dsn: name for name in reachable
        }
        edges: Set[frozenset] = set()
        truth = fabric.graph(active_only=True)
        for a, b in truth.subgraph(reachable).edges:
            edges.add(frozenset((fabric.device(a).dsn,
                                 fabric.device(b).dsn)))
        return names_by_dsn, edges

    @staticmethod
    def _label(dsn: int, names_by_dsn: Dict[int, str]) -> str:
        name = names_by_dsn.get(dsn)
        return f"{name} ({dsn:#x})" if name else f"{dsn:#x}"

    # -- the audit -----------------------------------------------------------
    def audit(self) -> ConsistencyReport:
        """Compare the database with the fabric right now."""
        db = self.fm.database
        report = ConsistencyReport(audited_at=self.fm.env.now)
        names_by_dsn, truth_edges = self._truth()
        truth_dsns = set(names_by_dsn)
        db_dsns = {record.dsn for record in db.devices()}
        report.devices_checked = len(truth_dsns | db_dsns)

        for dsn in sorted(truth_dsns - db_dsns):
            report.differences.append(Difference(
                MISSING_DEVICE, self._label(dsn, names_by_dsn),
                "reachable in the fabric but absent from the database",
            ))
        for dsn in sorted(db_dsns - truth_dsns):
            report.differences.append(Difference(
                PHANTOM_DEVICE, self._label(dsn, names_by_dsn),
                "in the database but dead or unreachable in the fabric",
            ))

        db_edges = {
            frozenset(edge) for edge in db.graph().edges
        }
        report.links_checked = len(truth_edges | db_edges)
        shared = truth_dsns & db_dsns
        for edge in sorted(truth_edges - db_edges,
                           key=lambda e: sorted(e)):
            if not edge <= shared:
                continue  # already reported as a device diff
            a, b = sorted(edge)
            report.differences.append(Difference(
                MISSING_LINK,
                f"{self._label(a, names_by_dsn)}"
                f"<->{self._label(b, names_by_dsn)}",
                "link up in the fabric but not in the database",
            ))
        for edge in sorted(db_edges - truth_edges,
                           key=lambda e: sorted(e)):
            if not edge <= shared:
                continue
            a, b = sorted(edge)
            report.differences.append(Difference(
                PHANTOM_LINK,
                f"{self._label(a, names_by_dsn)}"
                f"<->{self._label(b, names_by_dsn)}",
                "link in the database but down in the fabric",
            ))

        self._audit_ports(report, names_by_dsn)
        self._audit_routes(report, names_by_dsn)
        return report

    # -- port-level staleness ------------------------------------------------
    def _audit_ports(self, report: ConsistencyReport,
                     names_by_dsn: Dict[int, str]) -> None:
        """Flag database ports claiming *up* whose physical side is not."""
        fabric = self.fabric
        for record in self.fm.database.devices():
            name = names_by_dsn.get(record.dsn)
            if name is None:
                continue  # phantom device, already reported
            device = fabric.device(name)
            for index in sorted(record.ports):
                known = record.ports[index]
                if known.up is not True:
                    continue
                detail = None
                if index >= len(device.ports):
                    detail = "port does not exist on the device"
                else:
                    port = device.ports[index]
                    if port.link is None or not port.link.up:
                        detail = "recorded up but the physical link is down"
                    else:
                        far = port.neighbor()
                        if far is None or not far.device.active:
                            detail = "recorded up but the far device is dead"
                if detail is not None:
                    report.differences.append(Difference(
                        STALE_PORT,
                        f"{self._label(record.dsn, names_by_dsn)}.p{index}",
                        detail,
                    ))

    # -- route replay ----------------------------------------------------------
    def _audit_routes(self, report: ConsistencyReport,
                      names_by_dsn: Dict[int, str]) -> None:
        """Replay each record's turn pool hop-by-hop through the fabric."""
        for record in self.fm.database.devices():
            if record.ingress_port is None:
                continue  # the FM endpoint routes to itself
            if record.dsn not in names_by_dsn:
                continue  # phantom device, already reported
            report.routes_checked += 1
            problem = self._replay_route(record, names_by_dsn)
            if problem is not None:
                report.differences.append(Difference(
                    BAD_ROUTE, self._label(record.dsn, names_by_dsn),
                    problem,
                ))

    def _replay_route(self, record,
                      names_by_dsn: Dict[int, str]) -> Optional[str]:
        """Follow ``record``'s stored route; None if it checks out."""
        endpoint = self.fm.endpoint
        pool = record.route()
        pointer = pool.bits

        # First hop: out of the FM endpoint.
        current, in_port, problem = self._cross_link(
            endpoint, record.out_port)
        if problem is not None:
            return f"at {endpoint.name}.p{record.out_port}: {problem}"

        # Every remaining turn is consumed by a live switch.
        while pointer > 0:
            if current.kind != "switch":
                return (
                    f"route traverses endpoint {current.name} with "
                    f"{pointer} turn bits left"
                )
            if not current.active:
                return f"route traverses dead switch {current.name}"
            try:
                turn, pointer = read_forward_turn(
                    pool.pool, pointer, current.nports)
            except TurnPoolError as exc:
                return f"turn pool exhausted at {current.name}: {exc}"
            egress = forward_egress(in_port, turn, current.nports)
            current, in_port, problem = self._cross_link(current, egress)
            if problem is not None:
                return f"at p{egress}: {problem}"

        if not current.active:
            return f"route terminates at dead device {current.name}"
        if current.dsn != record.dsn:
            return (
                f"route terminates at {current.name} "
                f"({current.dsn:#x}), not at "
                f"{self._label(record.dsn, names_by_dsn)}"
            )
        if in_port != record.ingress_port:
            return (
                f"route arrives on port {in_port}, database says "
                f"ingress {record.ingress_port}"
            )
        return None

    @staticmethod
    def _cross_link(device, egress: int):
        """Step ``device`` -> neighbour via ``egress``.

        Returns ``(next_device, arrival_port, problem)`` with
        ``problem`` a string when the step is impossible.
        """
        if not 0 <= egress < len(device.ports):
            return None, None, (
                f"egress port {egress} outside {device.name}"
            )
        port = device.ports[egress]
        if port.link is None:
            return None, None, f"{device.name}.p{egress} is unwired"
        if not port.link.up:
            return None, None, (
                f"link {port.link.name} is down"
            )
        far = port.neighbor()
        if far is None:
            return None, None, f"{device.name}.p{egress} has no far side"
        return far.device, far.index, None


def audit_topology(fabric, fm) -> ConsistencyReport:
    """Convenience wrapper: one-shot audit of ``fm`` against ``fabric``."""
    return TopologyAuditor(fabric, fm).audit()
