"""Distributed fabric-manager election.

"After the fabric is powered up, a distributed process is triggered in
order to select primary and secondary fabric managers.  Only these two
endpoints can configure the fabric.  If the primary FM fails, the
secondary one takes over." (paper, section 2)

The specification leaves the election protocol to implementers; we use
a controlled flood, the standard technique for leaderless topologies
(no routes exist yet — discovery has not run):

* every FM-capable endpoint announces its candidacy (election priority
  from its baseline capability, DSN as tie-break) in a multicast packet
  after a small per-device jitter;
* every device forwards announcements out of all other active ports,
  suppressing duplicates by ``(candidate DSN, sequence)`` — the flood
  terminates even on cyclic fabrics;
* after a settle period every endpoint ranks the candidates it has
  seen: the best becomes primary, the runner-up secondary.

Ranking: higher priority wins; equal priorities break toward the
higher DSN.

Every announcement also carries the round's **ownership epoch** — the
generation number the winner will stamp into each device's claim
capability (see :mod:`repro.capability.claim` and the fencing logic in
:class:`~repro.manager.fm.FabricManager`).  Epochs are strictly
monotonic across rounds: a manager that wins epoch ``N`` and later
observes a claim from epoch ``N+1`` knows it lost a newer election and
must demote itself instead of split-braining the fabric.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional, Set, Tuple

from ..fabric.endpoint import Endpoint
from ..protocols.entity import ManagementEntity
from ..sim.events import Event

#: Magic number identifying election announcements among multicasts.
ELECTION_MAGIC = 0xE1EC

_FMT = struct.Struct(">HBBHHIIQ")

#: Announcement format version (2 added the ownership epoch).
ELECTION_VERSION = 2


class ElectionError(RuntimeError):
    """Raised on malformed election messages or setups."""


@dataclass(frozen=True)
class Candidacy:
    """One endpoint's announcement."""

    priority: int
    dsn: int
    seq: int
    #: Ownership epoch of the election round (claim-capability
    #: generation the winner will stamp; 16 bits on the wire).
    epoch: int = 0

    def pack(self) -> bytes:
        return _FMT.pack(ELECTION_MAGIC, ELECTION_VERSION, 0,
                         self.epoch & 0xFFFF, 0, self.priority, self.seq,
                         self.dsn)

    @classmethod
    def unpack(cls, payload: bytes) -> "Candidacy":
        if len(payload) < _FMT.size:
            raise ElectionError("election payload too short")
        (magic, version, _rsvd, epoch, _rsvd2, priority, seq,
         dsn) = _FMT.unpack_from(payload)
        if magic != ELECTION_MAGIC:
            raise ElectionError(f"bad election magic {magic:#x}")
        return cls(priority=priority, dsn=dsn, seq=seq, epoch=epoch)

    @property
    def rank(self) -> Tuple[int, int]:
        """Sort key: higher is better."""
        return (self.priority, self.dsn)


class ElectionAgent:
    """Per-device election participant.

    Switches (and endpoints) forward announcements; FM-capable
    endpoints additionally originate their own candidacy and track the
    best candidates seen.
    """

    def __init__(self, entity: ManagementEntity,
                 jitter: float = 0.0):
        self.entity = entity
        self.device = entity.device
        self.env = entity.env
        self.jitter = jitter
        self.seen: Set[Tuple[int, int]] = set()
        self.candidates: Dict[int, Candidacy] = {}
        self._seq = count(1)
        entity.flood_handler = self._on_flood

    @property
    def is_candidate(self) -> bool:
        return (
            isinstance(self.device, Endpoint)
            and getattr(self.device, "fm_capable", False)
        )

    def announce(self, epoch: int = 0) -> None:
        """Originate this endpoint's candidacy (after the jitter)."""
        if not self.is_candidate:
            raise ElectionError(f"{self.device.name} cannot run for FM")
        candidacy = Candidacy(
            priority=self.device.fm_priority,
            dsn=self.device.dsn,
            seq=next(self._seq),
            epoch=epoch,
        )
        self._record(candidacy)

        def fire(_event=None):
            self.seen.add((candidacy.dsn, candidacy.seq))
            self.entity.send_multicast(candidacy.pack())

        if self.jitter > 0:
            self.env.timeout(self.jitter).callbacks.append(fire)
        else:
            fire()

    def _record(self, candidacy: Candidacy) -> None:
        known = self.candidates.get(candidacy.dsn)
        if known is None or ((candidacy.epoch, candidacy.seq)
                             > (known.epoch, known.seq)):
            self.candidates[candidacy.dsn] = candidacy

    def _on_flood(self, packet, port) -> None:
        try:
            candidacy = Candidacy.unpack(packet.payload)
        except ElectionError:
            self.entity.stats.incr("election_decode_errors")
            return
        key = (candidacy.dsn, candidacy.seq)
        if key in self.seen:
            self.entity.stats.incr("election_duplicates_suppressed")
            return
        self.seen.add(key)
        self._record(candidacy)
        # Controlled flood: forward out of every other active port.
        exclude = port.index if port is not None else None
        self.entity.send_multicast(packet.payload, exclude_port=exclude)

    def ranking(self) -> List[Candidacy]:
        """Candidates seen so far, best first."""
        return sorted(self.candidates.values(),
                      key=lambda c: c.rank, reverse=True)


@dataclass
class ElectionResult:
    """Outcome of an election round."""

    primary_dsn: Optional[int]
    secondary_dsn: Optional[int]
    #: Whether every FM-capable endpoint computed the same ranking.
    consensus: bool
    #: Per-endpoint view: endpoint DSN -> (primary, secondary).
    views: Dict[int, Tuple[Optional[int], Optional[int]]] = field(
        default_factory=dict
    )
    #: Ownership epoch of this round (the winner stamps claims with it).
    epoch: int = 0


class Election:
    """Runs one election round over a powered-up fabric."""

    def __init__(self, entities: Dict[str, ManagementEntity],
                 settle_time: float = 1e-3,
                 max_jitter: float = 20e-6,
                 seed: int = 0,
                 epoch: int = 1):
        if settle_time <= 0:
            raise ValueError("settle time must be positive")
        if epoch < 1:
            raise ValueError("election epoch must be at least 1")
        self.settle_time = settle_time
        self.epoch = epoch
        rng = random.Random(seed)
        self.agents: Dict[str, ElectionAgent] = {}
        env = None
        for name, entity in entities.items():
            jitter = rng.uniform(0, max_jitter)
            self.agents[name] = ElectionAgent(entity, jitter=jitter)
            env = entity.env
        if env is None:
            raise ElectionError("election needs at least one device")
        self.env = env

    def run(self) -> Event:
        """Start the round; the returned event yields the result."""
        for agent in self.agents.values():
            if agent.is_candidate:
                agent.announce(epoch=self.epoch)
        done = self.env.event()
        timer = self.env.timeout(self.settle_time)
        timer.callbacks.append(lambda _ev: done.succeed(self._tally()))
        return done

    def _tally(self) -> ElectionResult:
        views: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        for agent in self.agents.values():
            if not agent.is_candidate:
                continue
            ranking = agent.ranking()
            primary = ranking[0].dsn if ranking else None
            secondary = ranking[1].dsn if len(ranking) > 1 else None
            views[agent.device.dsn] = (primary, secondary)
        distinct = set(views.values())
        consensus = len(distinct) == 1
        primary, secondary = (
            next(iter(distinct)) if consensus and distinct else (None, None)
        )
        return ElectionResult(
            primary_dsn=primary,
            secondary_dsn=secondary,
            consensus=consensus,
            views=views,
            epoch=self.epoch,
        )
