"""Fabric-manager failover.

"If the primary FM fails, the secondary one takes over" (paper,
section 2).  The secondary runs in standby: it periodically reads one
dword of the primary's baseline capability (a heartbeat built from the
same PI-4 machinery as discovery).  After ``miss_threshold``
consecutive heartbeats time out, the standby promotes itself and runs
a full discovery — from its own vantage point, so all routes are
recomputed relative to the new manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..capability import BASELINE_CAP_ID
from ..protocols import pi4
from ..routing.turnpool import TurnPool
from ..sim.events import Event
from .fm import FabricManager


@dataclass
class FailoverReport:
    """What happened during a takeover."""

    detected_at: float
    discovery_done_at: float
    missed_heartbeats: int

    @property
    def recovery_time(self) -> float:
        """Seconds from failure detection to a fresh topology."""
        return self.discovery_done_at - self.detected_at


class StandbyManager:
    """A secondary FM in standby, monitoring the primary."""

    def __init__(self, fm: FabricManager,
                 primary_route: Tuple[TurnPool, int],
                 heartbeat_interval: float = 2e-3,
                 miss_threshold: int = 3):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss threshold must be at least 1")
        #: The wrapped manager (construct it with ``auto_start=False``
        #: so it stays passive until promoted).
        self.fm = fm
        self.env = fm.env
        self.primary_pool, self.primary_out_port = primary_route
        self.heartbeat_interval = heartbeat_interval
        self.miss_threshold = miss_threshold

        self.active = False
        self.misses = 0
        self.heartbeats_sent = 0
        self.heartbeats_answered = 0
        #: Triggers with a :class:`FailoverReport` after a takeover's
        #: discovery completes.
        self.takeover_event: Event = self.env.event()
        self._proc = None
        self._detected_at: Optional[float] = None
        self._stopping = False
        #: The interval Timeout the monitor is currently sleeping on.
        self._wait = None

    def start(self) -> None:
        """Begin monitoring the primary."""
        if self._proc is not None:
            raise RuntimeError("standby already started")
        self._proc = self.env.process(
            self._monitor(), name=f"standby:{self.fm.endpoint.name}"
        )

    def stop(self) -> None:
        """Shut the standby down *now*.

        The pending heartbeat-interval timeout is cancelled, so the
        monitor stops immediately instead of waking once more (and
        possibly sending one last heartbeat) up to a full interval
        later.  A heartbeat already in flight is left to complete; its
        reply is ignored.  Safe to call repeatedly, or after a
        takeover.
        """
        self._stopping = True
        if self._wait is not None and not self._wait.triggered:
            # The monitor generator stays suspended on the cancelled
            # event forever; it holds no simulation resources and
            # schedules nothing further.
            self.env.cancel(self._wait)
            self._wait = None

    # -- monitoring loop ------------------------------------------------------
    def _monitor(self):
        while not self.active and not self._stopping:
            self._wait = self.env.timeout(self.heartbeat_interval)
            yield self._wait
            self._wait = None
            if self.active or self._stopping:
                return
            reply_event = self.env.event()
            message = pi4.ReadRequest(
                cap_id=BASELINE_CAP_ID, offset=0, tag=0, count=1,
            )
            self.heartbeats_sent += 1
            self.fm.send_request(
                message, self.primary_pool, self.primary_out_port,
                callback=lambda completion, _ctx: reply_event.succeed(
                    completion
                ),
            )
            completion = yield reply_event
            if self._stopping:
                return
            if completion is None or not isinstance(completion,
                                                    pi4.ReadCompletion):
                self.misses += 1
                if self.misses >= self.miss_threshold:
                    self._take_over()
                    return
            else:
                self.heartbeats_answered += 1
                self.misses = 0

    def _take_over(self) -> None:
        """Promote this standby to active fabric manager."""
        self.active = True
        self._detected_at = self.env.now
        discovery = self.fm.start_discovery(trigger="failover")

        def finished(event):
            report = FailoverReport(
                detected_at=self._detected_at,
                discovery_done_at=self.env.now,
                missed_heartbeats=self.misses,
            )
            if not self.takeover_event.triggered:
                self.takeover_event.succeed(report)

        discovery.done_event.callbacks.append(finished)

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "ACTIVE" if self.active else "standby"
        return f"<StandbyManager {self.fm.endpoint.name} {state}>"
