"""Fabric-manager failover.

"If the primary FM fails, the secondary one takes over" (paper,
section 2).  The secondary runs in standby: it periodically reads one
dword of the primary's baseline capability (a heartbeat built from the
same PI-4 machinery as discovery).  After ``miss_threshold``
consecutive heartbeats time out, the standby promotes itself.

Two takeover modes:

``cold``
    The promoted standby runs a full discovery from its own vantage
    point, so all routes are recomputed relative to the new manager.
    Simple, but recovery time scales with the whole fabric.

``warm``
    While the primary is healthy, the standby passively mirrors its
    :class:`~repro.manager.database.TopologyDatabase`: it subscribes to
    the primary's PI-5 tee (``pi5_listeners`` — the control-plane
    replication channel every real redundant manager pair maintains)
    and refreshes the mirror on periodic sync reads over the same PI-4
    transaction engine the heartbeat uses.  As with collaborative
    discovery, one modelled read per sync carries the transfer cost
    while the record content rides out-of-band.  On promotion the
    mirror becomes the live database (rebased to the standby's vantage
    point), a verify pass re-reads every device's port-status blocks,
    and only the *differences* are repaired — fed as synthesized PI-5
    events through the partial-assimilation repair-burst machinery —
    instead of rediscovering the fabric from scratch.

Fencing: on takeover the standby advances the ownership epoch past the
primary's and (when the wrapped FM has ``fence_ownership`` on) stamps
every device's claim capability with the new epoch.  A resurrected old
primary re-reads those claims after its next discovery, observes the
newer generation, and demotes itself instead of split-braining the
fabric (see :meth:`~repro.manager.fm.FabricManager.demote`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..capability import (
    BASELINE_CAP_ID,
    MAX_READ_DWORDS,
    PORT_BLOCK_DWORDS,
    decode_port_status,
    port_block_offset,
)
from ..protocols import pi4, pi5
from ..routing.turnpool import TurnPool
from ..sim.events import Event
from .database import (
    DatabaseError,
    DeviceRecord,
    PortRecord,
    TopologyDatabase,
)
from .discovery.base import DiscoveryStats
from .fm import FabricManager

#: Supported takeover modes.
MODES = ("cold", "warm")


@dataclass
class FailoverReport:
    """What happened during a takeover."""

    detected_at: float
    discovery_done_at: float
    missed_heartbeats: int
    #: ``"warm"`` when the mirror-and-repair path ran; ``"cold"`` for a
    #: full rediscovery (including a warm standby falling back on an
    #: empty mirror).
    mode: str = "cold"
    #: Sim time the primary actually died, when known (stamped by the
    #: fault plane via :meth:`StandbyManager.note_primary_failure`).
    failed_at: Optional[float] = None
    #: Port-state differences the warm verify pass repaired.
    repairs: int = 0
    #: Devices in the database once the takeover converged.
    devices_recovered: int = 0

    @property
    def recovery_time(self) -> float:
        """Seconds from failure detection to a fresh topology."""
        return self.discovery_done_at - self.detected_at

    @property
    def detection_latency(self) -> Optional[float]:
        """Seconds from the primary's death to detection (if known)."""
        if self.failed_at is None:
            return None
        return self.detected_at - self.failed_at


class StandbyManager:
    """A secondary FM in standby, monitoring the primary."""

    def __init__(self, fm: FabricManager,
                 primary_route: Tuple[TurnPool, int],
                 heartbeat_interval: float = 2e-3,
                 miss_threshold: int = 3,
                 mode: str = "cold",
                 primary: Optional[FabricManager] = None,
                 sync_interval: Optional[float] = None):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss threshold must be at least 1")
        if mode not in MODES:
            raise ValueError(f"unknown takeover mode {mode!r} "
                             f"(choose from {MODES})")
        if mode == "warm" and primary is None:
            raise ValueError("warm standby needs the primary FM reference "
                             "(its PI-5 tee feeds the mirror)")
        #: The wrapped manager (construct it with ``auto_start=False``
        #: so it stays passive until promoted).
        self.fm = fm
        self.env = fm.env
        self.primary_pool, self.primary_out_port = primary_route
        self.heartbeat_interval = heartbeat_interval
        self.miss_threshold = miss_threshold
        self.mode = mode
        self.primary = primary
        self.sync_interval = (
            sync_interval if sync_interval is not None
            else 5 * heartbeat_interval
        )
        if self.sync_interval <= 0:
            raise ValueError("sync interval must be positive")

        self.active = False
        self.misses = 0
        self.heartbeats_sent = 0
        self.heartbeats_answered = 0
        #: Passive replica of the primary's database (warm mode),
        #: rebased to this standby's vantage point at every sync.
        self.mirror = TopologyDatabase()
        self.sync_reads = 0
        self.mirror_syncs = 0
        self.mirror_events = 0
        #: Sim time the primary died, when the fault plane tells us
        #: (:meth:`note_primary_failure`); feeds detection latency.
        self.primary_failed_at: Optional[float] = None
        #: The report of a completed takeover (also the value of
        #: ``takeover_event``).
        self.report: Optional[FailoverReport] = None
        #: Triggers with a :class:`FailoverReport` once a takeover has
        #: converged (routes reprogrammed, claims stamped).
        self.takeover_event: Event = self.env.event()
        self._proc = None
        self._sync_proc = None
        self._detected_at: Optional[float] = None
        self._stopping = False
        #: The interval Timeout the monitor is currently sleeping on.
        self._wait = None
        #: The interval Timeout the sync loop is currently sleeping on.
        self._sync_wait = None
        if mode == "warm":
            primary.pi5_listeners.append(self._on_primary_event)

    def start(self) -> None:
        """Begin monitoring the primary."""
        if self._proc is not None:
            raise RuntimeError("standby already started")
        self._proc = self.env.process(
            self._monitor(), name=f"standby:{self.fm.endpoint.name}"
        )
        if self.mode == "warm":
            # Bootstrap the mirror from the primary's current database
            # (the pair is wired up while the primary is healthy).
            self._clone_primary()
            self._sync_proc = self.env.process(
                self._sync(), name=f"standby-sync:{self.fm.endpoint.name}"
            )

    def stop(self) -> None:
        """Shut the standby down *now*.

        The pending heartbeat-interval and sync timeouts are cancelled,
        so the monitor stops immediately instead of waking once more
        (and possibly sending one last heartbeat) up to a full interval
        later.  A heartbeat already in flight is left to complete; its
        reply is ignored (it can no longer touch the miss/answer
        counters).  Safe to call repeatedly, or after a takeover — a
        takeover already under way keeps running and ``takeover_event``
        still resolves with its report; a standby stopped *before* any
        takeover leaves ``takeover_event`` untriggered forever.
        """
        self._stopping = True
        for attr in ("_wait", "_sync_wait"):
            wait = getattr(self, attr)
            if wait is not None and not wait.triggered:
                # The generator stays suspended on the cancelled event
                # forever; it holds no simulation resources and
                # schedules nothing further.
                self.env.cancel(wait)
                setattr(self, attr, None)
        self._unsubscribe()

    def stats(self) -> dict:
        """Monitoring counters (Workload protocol)."""
        return {
            "active": self.active,
            "misses": self.misses,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_answered": self.heartbeats_answered,
            "sync_reads": self.sync_reads,
            "mirror_syncs": self.mirror_syncs,
            "mirror_events": self.mirror_events,
            "mirror_devices": len(self.mirror),
            "primary_failed_at": self.primary_failed_at,
        }

    def describe(self) -> dict:
        return {
            "workload": "standby",
            "endpoint": self.fm.endpoint.name,
            "mode": self.mode,
            "heartbeat_interval": self.heartbeat_interval,
            "miss_threshold": self.miss_threshold,
            "sync_interval": self.sync_interval,
            "running": self._proc is not None and not self._stopping,
        }

    def note_primary_failure(self, time: Optional[float] = None) -> None:
        """Record when the primary died (fault plane hook)."""
        if self.primary_failed_at is None:
            self.primary_failed_at = self.env.now if time is None else time

    def promote(self) -> Event:
        """Promote immediately, without waiting for missed heartbeats.

        Used by the service's ``promote_standby`` verb and by tests;
        returns ``takeover_event``.  A no-op if already active.
        """
        if not self.active and not self._stopping:
            if self._wait is not None and not self._wait.triggered:
                self.env.cancel(self._wait)
                self._wait = None
            self._take_over()
        return self.takeover_event

    # -- monitoring loop ------------------------------------------------------
    def _monitor(self):
        while not self.active and not self._stopping:
            self._wait = self.env.timeout(self.heartbeat_interval)
            yield self._wait
            self._wait = None
            if self.active or self._stopping:
                return
            reply_event = self.env.event()
            message = pi4.ReadRequest(
                cap_id=BASELINE_CAP_ID, offset=0, tag=0, count=1,
            )
            self.heartbeats_sent += 1
            self.fm.send_request(
                message, self.primary_pool, self.primary_out_port,
                callback=lambda completion, _ctx: reply_event.succeed(
                    completion
                ),
            )
            completion = yield reply_event
            if self._stopping or self.active:
                # Stopped or promoted (e.g. via :meth:`promote`) while
                # the heartbeat was in flight: the late reply must not
                # touch the miss/answer accounting.
                return
            if completion is None or not isinstance(completion,
                                                    pi4.ReadCompletion):
                self.misses += 1
                if self.misses >= self.miss_threshold:
                    self._take_over()
                    return
            else:
                self.heartbeats_answered += 1
                self.misses = 0

    # -- warm mirror ----------------------------------------------------------
    def _unsubscribe(self) -> None:
        if self.primary is not None:
            try:
                self.primary.pi5_listeners.remove(self._on_primary_event)
            except ValueError:
                pass

    def _on_primary_event(self, event: pi5.PortEvent) -> None:
        """PI-5 tee from the primary: keep the mirror's ports current."""
        if self.active or self._stopping:
            return
        self.mirror_events += 1
        if event.reporter_dsn not in self.mirror:
            return
        record = self.mirror.device(event.reporter_dsn)
        if not 0 <= event.port < record.nports:
            return
        if event.up:
            # The far side is unknown until the next sync or the
            # promotion verify pass explores behind the port.
            record.port(event.port).up = True
            self.mirror.touch(event.reporter_dsn)
        else:
            try:
                self.mirror.mark_port_down(event.reporter_dsn, event.port)
            except DatabaseError:
                pass

    def _sync(self):
        while not self.active and not self._stopping:
            self._sync_wait = self.env.timeout(self.sync_interval)
            yield self._sync_wait
            self._sync_wait = None
            if self.active or self._stopping:
                return
            reply_event = self.env.event()
            message = pi4.ReadRequest(
                cap_id=BASELINE_CAP_ID, offset=0, tag=0, count=1,
            )
            self.sync_reads += 1
            self.fm.send_request(
                message, self.primary_pool, self.primary_out_port,
                callback=lambda completion, _ctx: reply_event.succeed(
                    completion
                ),
            )
            completion = yield reply_event
            if self.active or self._stopping:
                return
            if isinstance(completion, pi4.ReadCompletion):
                self._clone_primary()
            # A failed sync read is not a miss: the heartbeat loop owns
            # failure detection; the mirror just stays a beat staler.

    def _clone_primary(self) -> None:
        """Snapshot the primary's database into the mirror."""
        source = self.primary.database
        if self.fm.endpoint.dsn not in source:
            return
        mirror = TopologyDatabase()
        for record in source.devices():
            clone = DeviceRecord(
                dsn=record.dsn,
                type_code=record.type_code,
                nports=record.nports,
                fm_capable=record.fm_capable,
                fm_priority=record.fm_priority,
                ingress_port=record.ingress_port,
                route_hops=list(record.route_hops),
                out_port=record.out_port,
            )
            for index, port in record.ports.items():
                clone.ports[index] = PortRecord(
                    up=port.up,
                    neighbor_dsn=port.neighbor_dsn,
                    neighbor_port=port.neighbor_port,
                )
            mirror.add_device(clone)
        try:
            # Routes in the snapshot are relative to the *primary*;
            # rebase them to this standby's vantage point now, so the
            # mirror is promotion-ready the moment the primary dies.
            mirror.recompute_routes(self.fm.endpoint.dsn)
        except DatabaseError:
            return
        self.mirror = mirror
        self.mirror_syncs += 1

    # -- takeover -------------------------------------------------------------
    def _take_over(self) -> None:
        """Promote this standby to active fabric manager."""
        self.active = True
        self._detected_at = self.env.now
        if self._sync_wait is not None and not self._sync_wait.triggered:
            self.env.cancel(self._sync_wait)
            self._sync_wait = None
        self._unsubscribe()
        fm = self.fm
        # Fencing: the new reign runs one epoch past the old one, so
        # stamped claims override the dead primary's everywhere and a
        # resurrected old primary sees it was deposed.
        base = self.primary.epoch if self.primary is not None else fm.epoch
        fm.epoch = max(fm.epoch, base) + 1
        warm_ready = (
            self.mode == "warm"
            and len(self.mirror) > 1
            and fm.endpoint.dsn in self.mirror
        )
        if warm_ready:
            self.env.process(
                self._warm_takeover(),
                name=f"standby-promote:{fm.endpoint.name}",
            )
        else:
            self._cold_takeover()

    def _finish_takeover(self, mode: str, repairs: int = 0) -> None:
        self.report = FailoverReport(
            detected_at=self._detected_at,
            discovery_done_at=self.env.now,
            missed_heartbeats=self.misses,
            mode=mode,
            failed_at=self.primary_failed_at,
            repairs=repairs,
            devices_recovered=len(self.fm.database),
        )
        if not self.takeover_event.triggered:
            self.takeover_event.succeed(self.report)

    def _cold_takeover(self) -> None:
        fm = self.fm
        fm.start_discovery(trigger="failover")
        # The pending ready_event survives automatic restarts, so this
        # fires once the rediscovery has actually converged and the
        # event routes point at the new manager.
        fm.ready_event.callbacks.append(
            lambda _event: self._finish_takeover("cold")
        )

    def _warm_takeover(self):
        """Mirror-install + verify/repair promotion pipeline."""
        fm = self.fm
        fm._enabled = True
        self._install_mirror()
        # Synthetic history entry: the partial-assimilation machinery
        # treats an empty history as "never discovered" and would
        # cold-start on the first synthesized event; this also gives
        # quiescence checks a last-run record for the takeover itself.
        stats = DiscoveryStats(
            algorithm=fm.algorithm_key, trigger="failover",
            started_at=self._detected_at,
        )
        fm.history.append(stats)
        if fm.ready_event is None or fm.ready_event.triggered:
            fm.ready_event = self.env.event()

        mismatches, dead = yield from self._verify_ports()
        for dsn in sorted(dead):
            if dsn not in fm.database:
                continue
            record = fm.database.device(dsn)
            for index, port in sorted(record.ports.items()):
                if port.up:
                    fm.database.mark_port_down(dsn, index)
        if dead:
            fm.database.prune_unreachable(fm.endpoint.dsn)
        fm.database.recompute_routes(fm.endpoint.dsn)

        repairs = 0
        for dsn, port, up in sorted(mismatches):
            if dsn not in fm.database:
                continue  # pruned with a dead region above
            known = fm.database.device(dsn).ports.get(port)
            if known is not None and known.up == up:
                # Already applied by the dead-device cleanup (marking a
                # corpse's link down updates both ends); feeding it
                # would be judged stale and open no repair burst.
                continue
            repairs += 1
            fm._handle_event(pi5.PortEvent(
                reporter_dsn=dsn, port=port, up=up, seq=0,
            ))
        fm.counters.incr("warm_takeover_repairs", repairs)
        if repairs:
            # The repair burst (or its escalation) reprograms the event
            # routes and resolves ready_event when it converges.
            yield from self._wait_converged()
        else:
            fm._finish_ready(stats)
            yield from self._wait_converged()

        if fm.fence_ownership and not fm.demoted and len(fm.database) > 1:
            state = {"done": False}
            fm._stamp_ownership(
                stats, then=lambda _s: state.__setitem__("done", True),
            )
            while not state["done"] and not fm.demoted:
                yield self.env.timeout(self.heartbeat_interval / 4)

        stats.finished_at = self.env.now
        stats.devices_found = len(fm.database)
        self._finish_takeover("warm", repairs=repairs)

    def _wait_converged(self):
        """Poll until the FM is quiet and its ready_event resolved."""
        fm = self.fm
        while True:
            busy = fm.is_discovering or getattr(fm, "is_assimilating",
                                                False)
            ready = fm.ready_event is not None and fm.ready_event.triggered
            if (not busy and ready) or fm.demoted:
                return
            yield self.env.timeout(self.heartbeat_interval / 4)

    def _install_mirror(self) -> None:
        """Make the mirror the live database (already rebased)."""
        fm = self.fm
        fm.database.clear()
        for record in self.mirror.devices():
            clone = DeviceRecord(
                dsn=record.dsn,
                type_code=record.type_code,
                nports=record.nports,
                fm_capable=record.fm_capable,
                fm_priority=record.fm_priority,
                ingress_port=record.ingress_port,
                route_hops=list(record.route_hops),
                out_port=record.out_port,
            )
            for index, port in record.ports.items():
                clone.ports[index] = PortRecord(
                    up=port.up,
                    neighbor_dsn=port.neighbor_dsn,
                    neighbor_port=port.neighbor_port,
                )
            fm.database.add_device(clone)
        fm.database.recompute_routes(fm.endpoint.dsn)

    def _verify_ports(self):
        """Re-read every mirrored device's port-status blocks.

        Yields until all chunked reads settle; returns
        ``(mismatches, dead)`` where mismatches are ``(dsn, port,
        live_up)`` triples the mirror disagrees on and ``dead`` is the
        set of devices that answered nothing.
        """
        fm = self.fm
        records = [
            r for r in fm.database.devices() if r.ingress_port is not None
        ]
        mismatches: Set[tuple] = set()
        dead: Set[int] = set()
        done = self.env.event()
        ports_per_read = MAX_READ_DWORDS // PORT_BLOCK_DWORDS
        state = {"outstanding": 0}
        all_sent = [False]

        def on_status(completion, ctx) -> None:
            record, first = ctx
            ok = (isinstance(completion, pi4.ReadCompletion)
                  and getattr(completion, "status",
                              pi4.STATUS_OK) == pi4.STATUS_OK)
            if not ok:
                dead.add(record.dsn)
            else:
                data = list(completion.data)
                for i in range(len(data) // PORT_BLOCK_DWORDS):
                    index = first + i
                    live_up = decode_port_status(
                        data[i * PORT_BLOCK_DWORDS]
                    )["up"]
                    known = record.ports.get(index)
                    known_up = None if known is None else known.up
                    if known_up is None:
                        if live_up:
                            mismatches.add((record.dsn, index, True))
                    elif bool(known_up) != live_up:
                        mismatches.add((record.dsn, index, live_up))
            state["outstanding"] -= 1
            if all_sent[0] and state["outstanding"] == 0 \
                    and not done.triggered:
                done.succeed()

        for record in records:
            for first in range(0, record.nports, ports_per_read):
                count = min(ports_per_read,
                            record.nports - first) * PORT_BLOCK_DWORDS
                message = pi4.ReadRequest(
                    cap_id=BASELINE_CAP_ID,
                    offset=port_block_offset(first), tag=0, count=count,
                )
                state["outstanding"] += 1
                fm.send_request(
                    message, record.route(), record.out_port,
                    callback=on_status, ctx=(record, first),
                )
        all_sent[0] = True
        if state["outstanding"] == 0:
            done.succeed()
        yield done
        # Mismatches on dead reporters are handled by the prune path.
        survivors = {
            m for m in mismatches if m[0] not in dead
        }
        return survivors, dead

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "ACTIVE" if self.active else "standby"
        return f"<StandbyManager {self.fm.endpoint.name} {state} " \
               f"[{self.mode}]>"
