"""PI-5: the event-reporting protocol.

When a fabric device detects a change in the state of one of its local
ports (a neighbour was hot-added or hot-removed, a link failed), it
notifies the fabric manager with a PI-5 packet (paper, section 2).  The
FM reacts by starting the change assimilation process — a rediscovery.

Wire format of the PI-5 payload::

    dword 0 : [event_code:8][port:8][state:8][rsvd:8]
    dword 1 : reporter DSN high
    dword 2 : reporter DSN low
    dword 3 : sequence number (per reporter)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: Event codes.
EVENT_PORT_STATE = 0x01

#: Port state codes carried in the event.
STATE_DOWN = 0x00
STATE_UP = 0x01

_FMT = struct.Struct(">BBBBIII")


class Pi5Error(ValueError):
    """Raised when a PI-5 payload cannot be decoded."""


@dataclass(frozen=True)
class PortEvent:
    """A port-state-change notification."""

    reporter_dsn: int
    port: int
    up: bool
    seq: int
    event_code: int = EVENT_PORT_STATE

    def pack(self) -> bytes:
        return _FMT.pack(
            self.event_code,
            self.port & 0xFF,
            STATE_UP if self.up else STATE_DOWN,
            0,
            (self.reporter_dsn >> 32) & 0xFFFFFFFF,
            self.reporter_dsn & 0xFFFFFFFF,
            self.seq & 0xFFFFFFFF,
        )


def decode(payload: bytes) -> PortEvent:
    """Decode a PI-5 payload."""
    if len(payload) < _FMT.size:
        raise Pi5Error(f"PI-5 payload of {len(payload)} bytes is too short")
    code, port, state, _rsvd, dsn_hi, dsn_lo, seq = _FMT.unpack_from(payload)
    if code != EVENT_PORT_STATE:
        raise Pi5Error(f"unknown PI-5 event code {code:#04x}")
    return PortEvent(
        reporter_dsn=(dsn_hi << 32) | dsn_lo,
        port=port,
        up=state == STATE_UP,
        seq=seq,
    )
