"""The per-device management entity.

Every fabric device runs a management entity: a single-threaded agent
that processes incoming management packets serially.  For PI-4
*requests* it executes the configuration-space access and returns a
completion along the reversed route, spending ``T_Device`` of
processing time per packet — the quantity the paper scales with the
*device processing factor* (Figs. 8-9).  The paper notes this time is
low and independent of the discovery algorithm and the network size,
because the work is always "return a response packet including the
requested information" (section 4.1).

At the endpoint hosting the fabric manager, the same entity delivers
PI-4 *completions* and PI-5 *events* to the attached manager, charging
the manager's (algorithm-dependent) processing time instead — the
quantity scaled by the *FM processing factor*.

The entity also implements PI-5 emission: when a local port changes
state it sends an event to the FM along the route stored in the
event-route capability, and it exposes a multicast hook used by the
election protocol's controlled flood.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import count
from typing import Callable, Optional

from ..capability import EVENT_ROUTE_CAP_ID, ConfigSpaceError
from ..fabric.device import Device
from ..fabric.packet import (
    PI_APPLICATION,
    PI_DEVICE_MANAGEMENT,
    PI_EVENT,
    PI_MULTICAST,
    Packet,
    make_management_header,
)
from ..fabric.params import MANAGEMENT_TC
from ..fabric.port import Port
from ..sim.monitor import Counter
from ..sim.resources import Store
from . import pi4, pi5

#: Default time a device's management entity spends on one PI-4 packet.
#: Matches the scale the paper reports in Fig. 4 (a few microseconds,
#: profiled on a 3 GHz Pentium 4).
DEFAULT_DEVICE_PROCESSING_TIME = 2.5e-6


class ManagementEntity:
    """Serial management-packet processor attached to a device."""

    def __init__(self, device: Device,
                 processing_time: float = DEFAULT_DEVICE_PROCESSING_TIME,
                 processing_factor: float = 1.0):
        if processing_factor <= 0:
            raise ValueError("processing factor must be positive")
        self.device = device
        self.env = device.env
        self.processing_time = processing_time
        self.processing_factor = processing_factor
        self.stats = Counter()
        #: Attached fabric manager (duck-typed): must provide
        #: ``packet_cost(packet) -> float`` and
        #: ``handle_management_packet(packet, port) -> None``.
        self.manager = None
        #: Handler for multicast packets: ``handler(packet, port)``.
        self.flood_handler: Optional[Callable[[Packet, Optional[Port]], None]] = None
        #: Handler for encapsulated application data.  Application
        #: packets cost the management entity nothing — they are
        #: consumed by the host, not the management firmware.
        self.app_handler: Optional[Callable[[Packet, Optional[Port]], None]] = None
        self._event_seq = count(1)
        self._inbox = Store(self.env)
        #: PI-5 recovery: events are fire-and-forget (no completion to
        #: retry on), so on a lossy fabric each one is blindly repeated
        #: — the CDP/LLDP periodic-advertisement idea.  The FM dedups
        #: by (reporter, seq).  Zero on a perfect channel: the default
        #: configuration schedules no extra events.
        self.event_repeats = 2 if device.params.lossy else 0
        #: Spacing between blind PI-5 retransmissions (seconds).
        self.event_repeat_interval = 2e-4
        #: Bounded LRU of served completions, keyed by request tag.
        #: When a retried (or link-replayed) request arrives again, the
        #: cached completion is resent without re-executing the
        #: configuration-space access — config writes (event routes,
        #: FM claims) are not idempotent.  Tags are unique per request
        #: across requesters (the transaction engine salts them), so a
        #: tag hit really is the same transaction.
        self._served_replies: "OrderedDict[int, object]" = OrderedDict()
        #: Completions remembered for duplicate suppression.
        self.served_cache_limit = 256

        device.local_handler = self._enqueue
        device.port_state_observer = self._on_port_state
        self._proc = self.env.process(
            self._loop(), name=f"mgmt:{device.name}"
        )

    # -- costs -------------------------------------------------------------
    @property
    def device_time(self) -> float:
        """Per-packet processing time after applying the factor.

        The factor is a *speed* multiplier (paper, section 4.2): a
        factor of 2 halves the time, 0.2 makes devices five times
        slower.
        """
        return self.processing_time / self.processing_factor

    def _cost(self, packet: Packet, message) -> float:
        if packet.header.pi == PI_APPLICATION:
            return 0.0
        if packet.header.pi == PI_DEVICE_MANAGEMENT and message is not None:
            if pi4.is_request(message):
                return self.device_time
            if self.manager is not None:
                return self.manager.packet_cost(packet)
            return self.device_time
        if packet.header.pi == PI_EVENT and self.manager is not None:
            return self.manager.packet_cost(packet)
        return self.device_time

    # -- inbound path ------------------------------------------------------
    def _enqueue(self, packet: Packet, port: Optional[Port]) -> None:
        self.stats.incr("rx_mgmt_packets")
        if self.manager is not None:
            # Let the manager clear request timers at arrival time; the
            # packet still waits for its serial processing slot.
            self.manager.note_packet_arrival(packet)
        self._inbox.put((packet, port))

    def _loop(self):
        while True:
            packet, port = yield self._inbox.get()
            message = None
            if packet.header.pi == PI_DEVICE_MANAGEMENT:
                try:
                    message = pi4.decode(packet.payload)
                except pi4.Pi4Error:
                    self.stats.incr("pi4_decode_errors")
                    continue
                packet.meta["pi4_msg"] = message
            cost = self._cost(packet, message)
            if cost > 0:
                yield self.env.timeout(cost)
            self._dispatch(packet, port, message)

    def _dispatch(self, packet: Packet, port: Optional[Port],
                  message) -> None:
        pi = packet.header.pi
        if pi == PI_DEVICE_MANAGEMENT:
            if pi4.is_request(message):
                self._serve_request(packet, port, message)
            elif self.manager is not None:
                self.manager.handle_management_packet(packet, port)
            else:
                self.stats.incr("unexpected_completions")
        elif pi == PI_EVENT:
            if self.manager is not None:
                self.manager.handle_management_packet(packet, port)
            else:
                self.stats.incr("events_without_manager")
        elif pi == PI_MULTICAST:
            if self.flood_handler is not None:
                self.flood_handler(packet, port)
            else:
                self.stats.incr("multicast_without_handler")
        elif pi == PI_APPLICATION:
            self.stats.incr("app_packets")
            if self.app_handler is not None:
                self.app_handler(packet, port)
        else:
            self.stats.incr("unknown_pi")

    # -- PI-4 service (device side) ---------------------------------------
    def _serve_request(self, packet: Packet, port: Optional[Port],
                       message) -> None:
        reply = self._served_replies.get(message.tag)
        if reply is not None:
            # Duplicate of a request already served (the requester
            # retried while the original completion was in flight, or
            # the link layer replayed the request).  Resend the cached
            # completion; the processing time was charged by the inbox
            # loop exactly as for a first-time request.
            self.stats.incr("duplicate_requests")
            self._served_replies.move_to_end(message.tag)
            self._send_reply(packet, port, reply)
            return
        reply = self._execute_request(port, message)
        self._served_replies[message.tag] = reply
        if len(self._served_replies) > self.served_cache_limit:
            self._served_replies.popitem(last=False)
        self._send_reply(packet, port, reply)

    def _execute_request(self, port: Optional[Port], message):
        """Run the configuration-space access and build the completion."""
        space = self.device.config_space
        arrival = port.index if port is not None else pi4.NO_PORT
        common = dict(cap_id=message.cap_id, offset=message.offset,
                      tag=message.tag, arrival_port=arrival)
        if message.msg_type == pi4.MSG_READ_REQUEST:
            try:
                data = space.read(message.cap_id, message.offset,
                                  message.count)
                reply = pi4.ReadCompletion(data=tuple(data), **common)
                self.stats.incr("reads_served")
            except ConfigSpaceError as exc:
                reply = pi4.ReadError(status=exc.status, **common)
                self.stats.incr("read_errors")
        else:  # write request
            try:
                space.write(message.cap_id, message.offset,
                            list(message.data))
                status = pi4.STATUS_OK
                self.stats.incr("writes_served")
            except ConfigSpaceError as exc:
                status = exc.status
                self.stats.incr("write_errors")
            reply = pi4.WriteCompletion(status=status, **common)
        return reply

    def _send_reply(self, packet: Packet, port: Optional[Port],
                    reply) -> None:
        if port is None:
            # Request was issued locally (FM reading its own endpoint);
            # deliver the completion locally too.
            self._enqueue(self._completion_packet(packet, reply), None)
        else:
            self.device.inject(
                self._completion_packet(packet, reply), port.index
            )

    @staticmethod
    def _completion_packet(request: Packet, reply) -> Packet:
        return Packet(header=request.header.reversed(), payload=reply.pack())

    # -- PI-4 emission (manager side) ----------------------------------------
    def send_pi4(self, message, turn_pool: int, turn_pointer: int,
                 out_port: Optional[int] = 0) -> Packet:
        """Send a PI-4 message along an explicit source route.

        A zero-turn route (``turn_pointer == 0``) is still a real route:
        it addresses the device directly attached to ``out_port``.  Pass
        ``out_port=None`` to address the *local* device instead — the
        request is looped back through the inbox, modelling the FM
        reading its own endpoint's configuration space.
        """
        header = make_management_header(
            turn_pool, turn_pointer, pi=PI_DEVICE_MANAGEMENT,
            tc=MANAGEMENT_TC,
        )
        packet = Packet(header=header, payload=message.pack(),
                        src=self.device.name, created_at=self.env.now)
        self.stats.incr("pi4_sent")
        if out_port is None:
            self._enqueue(packet, None)
        else:
            self.device.inject(packet, out_port)
        return packet

    # -- PI-5 emission -----------------------------------------------------
    def _on_port_state(self, device: Device, port: Port, up: bool) -> None:
        self.stats.incr("port_events_seen")
        self.report_port_event(port, up)

    def report_port_event(self, port: Port, up: bool) -> None:
        """Send a PI-5 notification to the FM, if a route is known."""
        if self.manager is not None:
            # The FM endpoint observes its own port events directly.
            event = pi5.PortEvent(
                reporter_dsn=self.device.dsn, port=port.index, up=up,
                seq=next(self._event_seq),
            )
            self.manager.handle_local_event(event)
            return
        event = pi5.PortEvent(
            reporter_dsn=self.device.dsn, port=port.index, up=up,
            seq=next(self._event_seq),
        )
        if not self._emit_event(event):
            return
        for attempt in range(1, self.event_repeats + 1):
            self.env.schedule_callback(
                attempt * self.event_repeat_interval,
                lambda _ev, e=event: self._repeat_event(e),
            )

    def _emit_event(self, event: pi5.PortEvent) -> bool:
        """Transmit one PI-5 notification along the programmed route."""
        cap = self.device.config_space.capability(EVENT_ROUTE_CAP_ID)
        route = cap.get_route()
        if route is None:
            self.stats.incr("events_unroutable")
            return False
        turn_pool, turn_pointer, out_port = route
        header = make_management_header(
            turn_pool, turn_pointer, pi=PI_EVENT, tc=MANAGEMENT_TC,
        )
        packet = Packet(header=header, payload=event.pack(),
                        src=self.device.name, created_at=self.env.now)
        out = self.device.ports[out_port]
        if not out.is_up:
            self.stats.incr("events_unroutable")
            return False
        self.stats.incr("pi5_sent")
        self.device.inject(packet, out_port)
        return True

    def _repeat_event(self, event: pi5.PortEvent) -> None:
        """Blind PI-5 retransmission (the route is re-resolved, so a
        reprogrammed event route is honoured)."""
        if not self.device.active:
            return
        if self._emit_event(event):
            self.stats.incr("pi5_repeats")

    # -- multicast emission -----------------------------------------------
    def send_multicast(self, payload: bytes, tc: int = MANAGEMENT_TC,
                       exclude_port: Optional[int] = None) -> int:
        """Flood a multicast packet out of every up port.

        Returns the number of copies sent.  Used by the election
        protocol; loop suppression is the flood handler's job.
        """
        sent = 0
        for port in self.device.ports:
            if exclude_port is not None and port.index == exclude_port:
                continue
            if not port.is_up:
                continue
            header = make_management_header(
                0, 0, pi=PI_MULTICAST, tc=tc,
            )
            packet = Packet(header=header, payload=payload,
                            src=self.device.name, created_at=self.env.now)
            self.device.inject(packet, port.index)
            sent += 1
        self.stats.incr("multicast_sent", sent)
        return sent
