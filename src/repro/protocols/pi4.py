"""PI-4: the device configuration and control protocol.

PI-4 is the workhorse of fabric management (paper, section 2): the FM
reads and writes device capability structures with it.  A read request
names a capability, a dword offset, and a count (at most eight dwords);
the device answers with a *completion with data* carrying the dwords,
or a *completion with error*.  The completion travels the request's
route backwards with the same traffic class.

Wire format of the PI-4 payload used by this model::

    dword 0 : [msg_type:8][count:8][cap_id:8][status:8]
    dword 1 : dword offset within the capability
    dword 2 : tag (matches completions to requests)
    dword 3 : [arrival_port:8][rsvd:24]
    dword 4+: data dwords (reads return them, writes carry them)

The ``arrival_port`` dword of a completion reports the responder's port
on which the request arrived (0xFF for a local loopback access).  The
FM needs it to extend source routes *through* a freshly discovered
switch; it plays the role InfiniBand's ``NodeInfo.LocalPortNum`` plays
during subnet discovery (the authors' own prior work, reference [2] of
the paper).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..capability.config_space import MAX_READ_DWORDS

# Message type codes.
MSG_READ_REQUEST = 0x01
MSG_READ_COMPLETION = 0x02
MSG_READ_ERROR = 0x03
MSG_WRITE_REQUEST = 0x04
MSG_WRITE_COMPLETION = 0x05

# Completion status codes.
STATUS_OK = 0x00
STATUS_BAD_CAPABILITY = 0x01
STATUS_BAD_RANGE = 0x02
STATUS_UNSUPPORTED = 0x03
STATUS_CONFLICT = 0x04

_HEAD = struct.Struct(">BBBBIIBxxx")


class Pi4Error(ValueError):
    """Raised when a PI-4 payload cannot be decoded."""


class Pi4DecodeError(Pi4Error):
    """A PI-4 payload is truncated or structurally garbage.

    Wraps the bare :class:`struct.error` the stdlib raises on malformed
    buffers, so receive paths can drop undecodable management packets
    (a real possibility once the link error model corrupts payload
    bytes) by catching :class:`Pi4Error` instead of crashing.
    """


#: ``arrival_port`` value for requests and local loopback completions.
NO_PORT = 0xFF


@dataclass(frozen=True)
class Pi4Message:
    """Common fields of every PI-4 message."""

    cap_id: int
    offset: int
    tag: int
    arrival_port: int = NO_PORT

    msg_type = 0x00  # overridden

    def _head(self, count: int, status: int) -> bytes:
        return _HEAD.pack(
            self.msg_type, count, self.cap_id, status, self.offset,
            self.tag, self.arrival_port,
        )


@dataclass(frozen=True)
class ReadRequest(Pi4Message):
    """Request ``count`` dwords from a capability."""

    count: int = 1
    msg_type = MSG_READ_REQUEST

    def __post_init__(self):
        if not 1 <= self.count <= MAX_READ_DWORDS:
            raise Pi4Error(
                f"read count {self.count} outside [1, {MAX_READ_DWORDS}]"
            )

    def pack(self) -> bytes:
        return self._head(self.count, 0)


@dataclass(frozen=True)
class ReadCompletion(Pi4Message):
    """Successful read: carries the requested dwords."""

    data: tuple = ()
    msg_type = MSG_READ_COMPLETION

    def pack(self) -> bytes:
        return self._head(len(self.data), STATUS_OK) + b"".join(
            struct.pack(">I", dword) for dword in self.data
        )


@dataclass(frozen=True)
class ReadError(Pi4Message):
    """Failed read: carries only a status code."""

    status: int = STATUS_UNSUPPORTED
    msg_type = MSG_READ_ERROR

    def pack(self) -> bytes:
        return self._head(0, self.status)


@dataclass(frozen=True)
class WriteRequest(Pi4Message):
    """Write dwords into a capability."""

    data: tuple = ()
    msg_type = MSG_WRITE_REQUEST

    def __post_init__(self):
        if not 1 <= len(self.data) <= MAX_READ_DWORDS:
            raise Pi4Error(
                f"write of {len(self.data)} dwords outside "
                f"[1, {MAX_READ_DWORDS}]"
            )

    def pack(self) -> bytes:
        return self._head(len(self.data), 0) + b"".join(
            struct.pack(">I", dword) for dword in self.data
        )


@dataclass(frozen=True)
class WriteCompletion(Pi4Message):
    """Write acknowledgement (``status`` 0 on success)."""

    status: int = STATUS_OK
    msg_type = MSG_WRITE_COMPLETION

    def pack(self) -> bytes:
        return self._head(0, self.status)


AnyPi4 = Union[ReadRequest, ReadCompletion, ReadError, WriteRequest,
               WriteCompletion]


def decode(payload: bytes) -> AnyPi4:
    """Decode a PI-4 payload into its message object.

    Raises :class:`Pi4DecodeError` (a :class:`Pi4Error`) on truncated
    or structurally invalid payloads — never a bare ``struct.error``.
    """
    if len(payload) < _HEAD.size:
        raise Pi4DecodeError(
            f"PI-4 payload of {len(payload)} bytes is too short"
        )
    try:
        (msg_type, count, cap_id, status, offset, tag,
         arrival_port) = _HEAD.unpack_from(payload)
    except struct.error as exc:  # pragma: no cover - length checked above
        raise Pi4DecodeError(f"PI-4 header unpack failed: {exc}") from exc
    body = payload[_HEAD.size:]

    def data_words(n: int) -> tuple:
        if len(body) < 4 * n:
            raise Pi4DecodeError(
                f"PI-4 payload truncated: {len(body)} bytes for {n} dwords"
            )
        try:
            return tuple(
                struct.unpack_from(">I", body, 4 * i)[0] for i in range(n)
            )
        except struct.error as exc:  # pragma: no cover - length checked
            raise Pi4DecodeError(f"PI-4 data unpack failed: {exc}") from exc

    common = dict(cap_id=cap_id, offset=offset, tag=tag,
                  arrival_port=arrival_port)
    if msg_type == MSG_READ_REQUEST:
        return ReadRequest(count=count, **common)
    if msg_type == MSG_READ_COMPLETION:
        return ReadCompletion(data=data_words(count), **common)
    if msg_type == MSG_READ_ERROR:
        return ReadError(status=status, **common)
    if msg_type == MSG_WRITE_REQUEST:
        return WriteRequest(data=data_words(count), **common)
    if msg_type == MSG_WRITE_COMPLETION:
        return WriteCompletion(status=status, **common)
    raise Pi4DecodeError(f"unknown PI-4 message type {msg_type:#04x}")


def is_request(message: AnyPi4) -> bool:
    """Whether a decoded message expects a completion."""
    return message.msg_type in (MSG_READ_REQUEST, MSG_WRITE_REQUEST)


def is_completion(message: AnyPi4) -> bool:
    """Whether a decoded message answers a request."""
    return message.msg_type in (
        MSG_READ_COMPLETION,
        MSG_READ_ERROR,
        MSG_WRITE_COMPLETION,
    )
