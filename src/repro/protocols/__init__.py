"""Fabric-management protocols: PI-4 (configuration) and PI-5 (events).

:mod:`.transaction` adds the reliability layer on top of them: tagged
transactions with adaptive timeouts and bounded, backed-off retries.
"""

from . import pi4, pi5
from .entity import DEFAULT_DEVICE_PROCESSING_TIME, ManagementEntity
from .transaction import TimeoutPolicy, Transaction, TransactionEngine

__all__ = [
    "DEFAULT_DEVICE_PROCESSING_TIME",
    "ManagementEntity",
    "TimeoutPolicy",
    "Transaction",
    "TransactionEngine",
    "pi4",
    "pi5",
]
