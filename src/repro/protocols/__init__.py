"""Fabric-management protocols: PI-4 (configuration) and PI-5 (events)."""

from . import pi4, pi5
from .entity import DEFAULT_DEVICE_PROCESSING_TIME, ManagementEntity

__all__ = [
    "DEFAULT_DEVICE_PROCESSING_TIME",
    "ManagementEntity",
    "pi4",
    "pi5",
]
