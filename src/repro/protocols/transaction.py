"""Retrying PI-4 transaction engine.

The paper's discovery processes assume a perfect channel: every PI-4
read and PI-5 event survives the fabric.  With the link error model
(:mod:`repro.fabric.phy`) enabled, management packets are corrupted or
lost in flight, so requests need end-to-end recovery — the same reason
real topology-discovery protocols (CDP/LLDP) are built around periodic
retransmission and holddown timers.

This module owns the requester side of that recovery:

* **Transaction IDs** — every outstanding request gets a unique tag
  (the PI-4 ``tag`` dword).  Tags are salted per requester so that two
  fabric managers alive at once (failover, election) never reuse each
  other's tags, which would defeat duplicate suppression at the
  responders.
* **Adaptive timeouts** — :class:`TimeoutPolicy` derives a per-request
  timeout from the route length encoded in the turn pool and the
  Fig. 4 processing-time model, floored at the requester's configured
  timeout so it can only ever *raise* the patience (a shorter derived
  value would cause spurious retries on backlogged fabrics).
* **Bounded retries with exponential backoff** — each retransmission
  of a policy-timed request doubles the next period, so a congested
  fabric is not hammered at a fixed cadence.  Requests with an
  explicitly chosen timeout keep a fixed cadence (they are liveness
  probes whose give-up time the caller computed).

The responder side — duplicate-request suppression — lives in
:class:`repro.protocols.entity.ManagementEntity`, which caches served
completions by tag and replays them without re-executing the
configuration-space access.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import count
from typing import Any, Callable, Dict, Optional

from ..routing.turnpool import TurnPool, turn_width

#: Default fabric round-trip timeout (seconds).  Generous compared to
#: the microsecond-scale round trips of the modeled fabric.
DEFAULT_TIMEOUT = 1e-3

#: Default number of retransmissions before a request is abandoned.
DEFAULT_MAX_RETRIES = 3

#: Backoff multiplier applied to the period of policy-timed requests
#: after every retransmission.
DEFAULT_BACKOFF = 2.0

#: Safety margin multiplying the estimated round trip.
DEFAULT_SAFETY = 8.0

#: Conservative wire-size estimate (bytes) for one management packet;
#: covers the largest PI-4 completion plus framing and PCRC.
MGMT_PACKET_ESTIMATE = 64

#: Tags are a 32-bit PI-4 field; the salt occupies the top half so a
#: requester has the bottom 16 bits (65k outstanding-ever requests)
#: before colliding with its own salt space.
TAG_SALT_SHIFT = 16


@dataclass
class Transaction:
    """One outstanding request awaiting its completion."""

    tag: int
    message: Any
    pool: TurnPool
    out_port: Optional[int]
    callback: Callable
    ctx: Any
    retries_left: int
    stats: Optional[Any]
    #: Current timeout period (grows by ``backoff`` per retry).
    timeout: float = DEFAULT_TIMEOUT
    #: Period multiplier applied after each retransmission (1.0 for
    #: caller-timed requests — fixed cadence).
    backoff: float = 1.0
    #: Set when the completion reaches the requesting endpoint (it may
    #: still wait in the FM's serial processing queue).  Timeouts
    #: measure the fabric round trip, not the FM's own backlog.
    arrived: bool = False
    #: Transmissions so far (1 = no retries yet).
    attempts: int = 1
    #: Open observability span (:class:`repro.obs.span.Span`) covering
    #: this transaction, when a tracer is attached.
    span: Any = None


class TimeoutPolicy:
    """Derives per-request timeouts from route length and Fig. 4 times.

    The estimate is intentionally crude — cut-through per-hop latency
    for a conservative packet size, both directions, plus the device
    and FM processing times of the Fig. 4 model — then multiplied by a
    safety factor and floored at the requester's configured timeout.
    The floor means the policy can only ever *increase* patience: with
    default parameters the floor dominates and behaviour is identical
    to a fixed-timeout requester, while slowed-down processing factors
    (the Figs. 8-9 ablations) automatically stretch the timeout instead
    of triggering spurious retries.
    """

    __slots__ = ("params", "timing", "algorithm", "floor", "safety")

    def __init__(self, params, timing, algorithm: str,
                 floor: float = DEFAULT_TIMEOUT,
                 safety: float = DEFAULT_SAFETY):
        self.params = params
        self.timing = timing
        self.algorithm = algorithm
        self.floor = floor
        self.safety = safety

    def route_hops(self, pool: TurnPool) -> int:
        """Number of switch hops encoded in a turn pool."""
        width = turn_width(self.params.switch_ports)
        if width <= 0:
            return 0
        return pool.bits // width

    def timeout_for(self, pool: TurnPool, known_devices: int = 0) -> float:
        """Timeout for one request along ``pool``'s route."""
        params = self.params
        per_hop = (
            params.tx_time(MGMT_PACKET_ESTIMATE)
            + params.routing_latency
            + params.propagation_delay
        )
        # Request and completion each cross every link of the route
        # (hops switches + the two endpoint links).
        round_trip = 2.0 * (self.route_hops(pool) + 2) * per_hop
        service = (
            self.timing.device_processing_time()
            + self.timing.fm_time(self.algorithm, known_devices)
        )
        derived = self.safety * (round_trip + service)
        return derived if derived > self.floor else self.floor


class TransactionEngine:
    """Outstanding-request tracker for one PI-4 requester.

    The engine owns the tag space, the retry timers, and the pending
    map; the attached manager keeps its completion bookkeeping (stats,
    packet timeline) and supplies hooks for per-transmission accounting.
    Counter names (``requests_sent``, ``retries``, ``timeouts``,
    ``completions_received``, ``stale_completions``) are shared with the
    pre-engine fabric manager so existing dashboards and tests keep
    working.
    """

    def __init__(self, env, entity, counters, *,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 default_timeout: float = DEFAULT_TIMEOUT,
                 policy: Optional[TimeoutPolicy] = None,
                 backoff: float = DEFAULT_BACKOFF,
                 tag_salt: int = 0,
                 on_transmit: Optional[Callable[[Transaction, Any], None]]
                 = None,
                 known_devices: Optional[Callable[[], int]] = None):
        self.env = env
        self.entity = entity
        self.counters = counters
        self.max_retries = max_retries
        self.default_timeout = default_timeout
        self.policy = policy
        self.backoff = backoff
        #: Per-transmission hook: ``on_transmit(transaction, packet)``
        #: (byte accounting on the active discovery's stats).
        self.on_transmit = on_transmit
        #: Size of the requester's topology database, fed to the
        #: timeout policy (FM processing time grows with it).
        self.known_devices = known_devices
        #: Outstanding transactions by tag.  Shared by reference with
        #: the owning manager (``fm._pending``), so callers clearing
        #: one clear the other.
        self.pending: Dict[int, Transaction] = {}
        self._tags = count((tag_salt << TAG_SALT_SHIFT) + 1)
        #: Optional :class:`repro.obs.span.SpanTracer`.  ``None`` (the
        #: default) keeps every hot path at a single ``is not None``
        #: test; the tracer itself never schedules events or touches
        #: RNG, so attaching it cannot perturb a run.
        self.tracer = None

    # -- requester API -----------------------------------------------------
    def open(self, message, pool: TurnPool, out_port: Optional[int],
             callback: Callable, ctx: Any = None,
             retries: Optional[int] = None,
             timeout: Optional[float] = None,
             stats: Optional[Any] = None,
             span_parent: Optional[Any] = None) -> int:
        """Send a request; ``callback(completion_or_None, ctx)``.

        ``retries``/``timeout`` override the engine defaults.  An
        explicit ``timeout`` keeps a fixed retry cadence (the caller
        computed the give-up time); otherwise the timeout policy (when
        configured) derives the initial period and retries back off
        exponentially.  ``span_parent`` nests the transaction's
        observability span under the caller's span (tracing only).
        """
        tag = next(self._tags)
        message = replace(message, tag=tag)
        if timeout is not None:
            period, backoff = timeout, 1.0
        elif self.policy is not None:
            known = self.known_devices() if self.known_devices else 0
            period, backoff = self.policy.timeout_for(pool, known), \
                self.backoff
        else:
            period, backoff = self.default_timeout, self.backoff
        entry = Transaction(
            tag=tag, message=message, pool=pool, out_port=out_port,
            callback=callback, ctx=ctx,
            retries_left=self.max_retries if retries is None else retries,
            stats=stats, timeout=period, backoff=backoff,
        )
        tracer = self.tracer
        if tracer is not None:
            entry.span = tracer.begin(
                f"pi4:{type(message).__name__}", "pi4", self.env.now,
                parent=span_parent, track="pi4", tag=tag,
            )
        self.pending[tag] = entry
        self._transmit(entry)
        return tag

    def note_arrival(self, tag: int) -> None:
        """A completion for ``tag`` reached the requesting endpoint."""
        entry = self.pending.get(tag)
        if entry is not None:
            entry.arrived = True

    def complete(self, message) -> Optional[Transaction]:
        """Match a decoded completion to its transaction.

        Pops and returns the transaction, or ``None`` for a stale
        completion (already completed, superseded, or a duplicate
        delivered by a replaying link).
        """
        entry = self.pending.pop(message.tag, None)
        if entry is None:
            self.counters.incr("stale_completions")
            return None
        self.counters.incr("completions_received")
        if entry.span is not None and self.tracer is not None:
            self.tracer.end(entry.span, self.env.now,
                            outcome="completed", attempts=entry.attempts)
        return entry

    def cancel_all(self) -> None:
        """Forget every outstanding transaction (no callbacks fire)."""
        if self.tracer is not None:
            now = self.env.now
            for entry in self.pending.values():
                if entry.span is not None:
                    self.tracer.end(entry.span, now, outcome="cancelled")
        self.pending.clear()

    # -- internals ---------------------------------------------------------
    def _transmit(self, entry: Transaction) -> None:
        packet = self.entity.send_pi4(
            entry.message, entry.pool.pool, entry.pool.bits, entry.out_port
        )
        self.counters.incr("requests_sent")
        if self.on_transmit is not None:
            self.on_transmit(entry, packet)
        timer = self.env.timeout(entry.timeout)
        timer.callbacks.append(
            lambda ev, tag=entry.tag: self._on_timeout(tag)
        )

    def _on_timeout(self, tag: int) -> None:
        entry = self.pending.get(tag)
        if entry is None:
            return  # completed (or superseded) in the meantime
        if entry.arrived:
            return  # response is queued at the requester; not a loss
        if entry.retries_left > 0:
            entry.retries_left -= 1
            entry.attempts += 1
            entry.timeout *= entry.backoff
            self.counters.incr("retries")
            if entry.stats is not None:
                entry.stats.retries += 1
            if entry.span is not None and self.tracer is not None:
                self.tracer.instant(
                    "retransmit", "pi4", self.env.now,
                    parent=entry.span, track="pi4",
                    attempt=entry.attempts,
                )
            self._transmit(entry)
            return
        del self.pending[tag]
        self.counters.incr("timeouts")
        if entry.stats is not None:
            entry.stats.timeouts += 1
        if entry.span is not None and self.tracer is not None:
            self.tracer.end(entry.span, self.env.now,
                            outcome="timeout", attempts=entry.attempts)
        entry.callback(None, entry.ctx)

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<TransactionEngine {len(self.pending)} outstanding, "
            f"max_retries={self.max_retries}>"
        )
