"""Shared architectural constants (leaf module: import from anywhere).

Lives outside both :mod:`repro.fabric` and :mod:`repro.routing` so the
header codec and the turn-pool logic can share it without creating an
import cycle between the two packages.
"""

#: Width of the modeled turn pool in bits.  The real Advanced Switching
#: header has a 31-bit pool, which is too short for the paper's largest
#: topologies (see repro.fabric.header); we widen it to 64.
TURN_POOL_BITS = 64
