"""Typed metrics registry over the simulator's raw counters.

The fabric scatters its statistics across dozens of anonymous
:class:`~repro.sim.monitor.Counter` bundles — every port counts
``rx_crc_dropped``/``tx_replays``, every management entity counts
``duplicate_requests``, the FM counts ``pi5_duplicates`` and
``suspect_subtrees``.  Experiment code that wants "total CRC drops"
has so far looped over devices by hand (see the pre-registry
:mod:`repro.experiments.reliability`).

:class:`MetricsRegistry` gives those quantities one namespace and a
type each:

* :class:`CounterMetric` — monotonically increasing totals;
* :class:`GaugeMetric` — point-in-time scalars, optionally sampled
  over sim time through a :class:`~repro.sim.monitor.Monitor`;
* :class:`HistogramMetric` — bucketed distributions backed by a
  :class:`~repro.sim.monitor.Tally` (streaming mean/stdev/min/max).

Raw :class:`~repro.sim.monitor.Counter` bundles plug in two ways:
``scrape_counter`` snapshots current values once (end-of-run
collection), while ``observe_counter`` uses the counter's
``attach_observer`` fast-path swap to mirror every increment live —
the same zero-overhead-when-unobserved mechanism the kernel
optimization work introduced.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.monitor import Counter, Monitor, Tally

#: Default histogram buckets: log-spaced seconds covering everything
#: from a single link crossing to a horizon-scale soak.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class CounterMetric:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount

    def asdict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class GaugeMetric:
    """A point-in-time scalar, optionally sampled over sim time."""

    kind = "gauge"
    __slots__ = ("name", "help", "value", "series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0.0
        self.series: Optional[Monitor] = None

    def set(self, value: float) -> None:
        self.value = value

    def record(self, time: float, value: float) -> None:
        """Set the gauge and keep the (time, value) sample."""
        if self.series is None:
            self.series = Monitor(self.name)
        self.series.record(time, value)
        self.value = value

    def asdict(self) -> dict:
        doc = {"type": self.kind, "value": self.value}
        if self.series is not None:
            doc["samples"] = len(self.series)
        return doc


class HistogramMetric:
    """A bucketed distribution with streaming summary statistics."""

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "tally")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name!r}: no buckets")
        # counts[i] observes x <= buckets[i]; the final slot is +Inf.
        self.counts = [0] * (len(self.buckets) + 1)
        self.tally = Tally()

    def observe(self, x: float) -> None:
        self.counts[bisect_left(self.buckets, x)] += 1
        self.tally.observe(x)

    @property
    def n(self) -> int:
        return self.tally.n

    def asdict(self) -> dict:
        doc = {
            "type": self.kind,
            "n": self.tally.n,
            "buckets": {
                f"le_{bound:g}": count
                for bound, count in zip(self.buckets, self.counts)
            },
            "overflow": self.counts[-1],
        }
        if self.tally.n:
            doc.update(
                mean=self.tally.mean,
                stdev=self.tally.stdev,
                min=self.tally.min,
                max=self.tally.max,
            )
        return doc


class MetricsRegistry:
    """Get-or-create registry of named, typed metrics."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> CounterMetric:
        return self._get(name, CounterMetric, help=help)

    def gauge(self, name: str, help: str = "") -> GaugeMetric:
        return self._get(name, GaugeMetric, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  ) -> HistogramMetric:
        return self._get(name, HistogramMetric, help=help, buckets=buckets)

    # -- raw-counter integration --------------------------------------------
    def scrape_counter(self, counter: Counter, prefix: str) -> None:
        """Add a raw counter bundle's current values (one-shot)."""
        for key, value in counter.asdict().items():
            self.counter(f"{prefix}.{key}").inc(value)

    def observe_counter(self, counter: Counter, prefix: str) -> None:
        """Mirror every future increment of ``counter`` live.

        Uses :meth:`~repro.sim.monitor.Counter.attach_observer`, which
        swaps the counter's pre-resolved ``incr`` closure — unobserved
        counters keep their zero-overhead fast path.
        """
        def mirror(key: str, amount: int) -> None:
            self.counter(f"{prefix}.{key}").inc(amount)

        counter.attach_observer(mirror)

    # -- collection ----------------------------------------------------------
    def value(self, name: str):
        """Current value of a registered metric (0 for an absent
        counter-style lookup, so sums over sparse scrapes stay easy)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if isinstance(metric, (CounterMetric, GaugeMetric)):
            return metric.value
        return metric.asdict()

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def collect(self) -> Dict[str, dict]:
        """All metrics as a sorted, JSON-ready mapping."""
        return {
            name: self._metrics[name].asdict()
            for name in sorted(self._metrics)
        }

    def render(self, title: str = "") -> str:
        """Plain-text dump, one metric per line."""
        lines = [title] if title else []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, HistogramMetric):
                doc = metric.asdict()
                if doc["n"]:
                    body = (
                        f"n={doc['n']} mean={doc['mean']:.6g} "
                        f"min={doc['min']:.6g} max={doc['max']:.6g}"
                    )
                else:
                    body = "n=0"
            else:
                body = f"{metric.value:g}"
            lines.append(f"  {name} [{metric.kind}] {body}")
        return "\n".join(lines)

    # -- whole-simulation scrape ---------------------------------------------
    def scrape_setup(self, setup) -> "MetricsRegistry":
        """Snapshot a finished simulation's scattered counters.

        Aggregates every port's channel counters under ``port.*``,
        every management entity's under ``entity.*``, and the FM's own
        under ``fm.*``; adds database-size and discovery-time summary
        metrics.  Returns ``self`` for chaining.
        """
        self.scrape_counter(setup.fm.counters, "fm")
        for device in setup.fabric.devices.values():
            for port in device.ports:
                self.scrape_counter(port.stats, "port")
        for entity in setup.entities.values():
            self.scrape_counter(entity.stats, "entity")
        self.gauge(
            "fm.devices_known",
            help="devices in the FM topology database",
        ).set(len(setup.fm.database))
        self.gauge(
            "fm.discoveries",
            help="completed discoveries (initial + assimilations)",
        ).set(len(setup.fm.history))
        times = self.histogram(
            "fm.discovery_time",
            help="per-discovery wall time (sim seconds)",
        )
        for stats in setup.fm.history:
            if stats.started_at is not None and stats.finished_at is not None:
                times.observe(stats.discovery_time)
        return self

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self._metrics)} metrics>"
