"""Span recording: nested, timestamped intervals of simulator work.

A span is one interval of logical work — a PI-4 transaction waiting
for its completion, one device claim of a discovery walk, a whole
discovery run, a restart-backoff episode.  Spans nest by parent id,
forming a tree per run, and live on named *tracks* (the Chrome-trace
"thread" a viewer draws them on).

Design constraints, in order:

1. **Determinism** — recording must never schedule simulation events
   or consume randomness.  Ids come from a plain counter; timestamps
   are the caller's ``env.now``.  Enabling tracing therefore leaves
   every simulation result bit-identical.
2. **Zero overhead when disabled** — instrumented code holds a tracer
   reference that is ``None`` by default and pays exactly one ``is not
   None`` test per potential span.
3. **Stable output** — spans carry a global sequence number assigned
   at record time, so exporters can emit events in the exact causal
   order of the run (byte-stable across repeated runs).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Tracks whose spans are strictly sequential (drawn as complete "X"
#: events; anything else is exported as async begin/end pairs because
#: its spans may overlap).
SERIAL_TRACKS = ("fm",)


class Span:
    """One recorded interval.  ``end`` is ``None`` while open."""

    __slots__ = ("sid", "name", "cat", "start", "end", "parent",
                 "track", "args", "seq_begin", "seq_end")

    def __init__(self, sid: int, name: str, cat: str, start: float,
                 parent: Optional[int], track: str,
                 args: Dict[str, Any], seq_begin: int):
        self.sid = sid
        self.name = name
        self.cat = cat
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.track = track
        self.args = args
        self.seq_begin = seq_begin
        self.seq_end: Optional[int] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} (#{self.sid}) is open")
        return self.end - self.start

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration:.3g}s"
        return f"<Span #{self.sid} {self.name} [{self.cat}] {state}>"


class Instant:
    """A zero-duration marker (a retry, a PI-5 event arrival)."""

    __slots__ = ("name", "cat", "time", "parent", "track", "args", "seq")

    def __init__(self, name: str, cat: str, time: float,
                 parent: Optional[int], track: str,
                 args: Dict[str, Any], seq: int):
        self.name = name
        self.cat = cat
        self.time = time
        self.parent = parent
        self.track = track
        self.args = args
        self.seq = seq

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Instant {self.name} [{self.cat}] @{self.time:.3g}>"


class SpanTracer:
    """Collects spans and instants for one simulation run.

    The tracer is purely passive: ``begin``/``end``/``instant`` append
    to in-memory lists and return.  It holds no reference to the
    environment and cannot perturb a run.
    """

    def __init__(self):
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._open: Dict[int, Span] = {}
        self._next_sid = 1
        self._next_seq = 0

    # -- recording ----------------------------------------------------------
    def begin(self, name: str, cat: str, t: float, *,
              parent: Optional[Span] = None, track: str = "fm",
              **args: Any) -> Span:
        """Open a span at sim time ``t``; returns the handle to close."""
        span = Span(
            sid=self._next_sid, name=name, cat=cat, start=t,
            parent=None if parent is None else parent.sid,
            track=track, args=args, seq_begin=self._next_seq,
        )
        self._next_sid += 1
        self._next_seq += 1
        self.spans.append(span)
        self._open[span.sid] = span
        return span

    def end(self, span: Span, t: float, **args: Any) -> None:
        """Close ``span`` at sim time ``t`` (no-op if already closed)."""
        if span.end is not None:
            return
        span.end = t
        span.seq_end = self._next_seq
        self._next_seq += 1
        if args:
            span.args.update(args)
        self._open.pop(span.sid, None)

    def instant(self, name: str, cat: str, t: float, *,
                parent: Optional[Span] = None, track: str = "fm",
                **args: Any) -> Instant:
        """Record a zero-duration marker at sim time ``t``."""
        event = Instant(
            name=name, cat=cat, time=t,
            parent=None if parent is None else parent.sid,
            track=track, args=args, seq=self._next_seq,
        )
        self._next_seq += 1
        self.instants.append(event)
        return event

    def finish(self, t: float) -> int:
        """Close any still-open spans at ``t`` (marked ``unfinished``).

        Returns how many spans had to be force-closed; a clean run
        closes every span itself and this returns 0.
        """
        dangling = sorted(self._open.values(), key=lambda s: s.sid)
        for span in dangling:
            self.end(span, t, unfinished=True)
        return len(dangling)

    # -- queries ------------------------------------------------------------
    @property
    def open_count(self) -> int:
        return len(self._open)

    def by_id(self) -> Dict[int, Span]:
        return {span.sid: span for span in self.spans}

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent == span.sid]

    def find(self, name: Optional[str] = None,
             cat: Optional[str] = None) -> List[Span]:
        """Spans matching a name and/or category, in record order."""
        return [
            s for s in self.spans
            if (name is None or s.name == name)
            and (cat is None or s.cat == cat)
        ]

    def validate(self, serial_tracks=SERIAL_TRACKS,
                 tolerance: float = 1e-12) -> List[str]:
        """Structural well-formedness check; returns problem strings.

        * every parent id resolves to a recorded span (no orphans);
        * every span is closed with ``end >= start``;
        * children lie within their parent's interval;
        * spans on a *serial* track never overlap each other.
        """
        problems: List[str] = []
        index = self.by_id()
        for span in self.spans:
            label = f"span #{span.sid} {span.name!r}"
            if span.end is None:
                problems.append(f"{label}: never closed")
                continue
            if span.end < span.start - tolerance:
                problems.append(
                    f"{label}: negative duration "
                    f"({span.start} -> {span.end})"
                )
            if span.parent is not None:
                parent = index.get(span.parent)
                if parent is None:
                    problems.append(
                        f"{label}: orphan (parent #{span.parent} "
                        f"not recorded)"
                    )
                elif parent.end is not None and (
                    span.start < parent.start - tolerance
                    or span.end > parent.end + tolerance
                ):
                    problems.append(
                        f"{label}: outside parent #{parent.sid} "
                        f"{parent.name!r} interval"
                    )
        for event in self.instants:
            if event.parent is not None and event.parent not in index:
                problems.append(
                    f"instant {event.name!r}: orphan "
                    f"(parent #{event.parent} not recorded)"
                )
        for track in serial_tracks:
            laned = sorted(
                (s for s in self.spans
                 if s.track == track and s.end is not None),
                key=lambda s: (s.start, s.sid),
            )
            for earlier, later in zip(laned, laned[1:]):
                if later.start < earlier.end - tolerance:
                    problems.append(
                        f"serial track {track!r}: span "
                        f"#{later.sid} {later.name!r} overlaps "
                        f"#{earlier.sid} {earlier.name!r}"
                    )
        return problems

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<SpanTracer {len(self.spans)} spans "
            f"({len(self._open)} open), "
            f"{len(self.instants)} instants>"
        )
