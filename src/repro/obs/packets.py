"""Packet lifecycle recording for trace export.

The fabric already exposes a per-device trace hook (see
:mod:`repro.fabric.trace`): every enqueue, transmission start,
reception, corruption drop, link replay, forwarding decision, and
delivery calls ``hook(kind, device, port_index, packet, detail)`` from
the port/device hot paths.  :class:`PacketFlightRecorder` implements
that protocol and records each call as a flat, timestamped
:class:`PacketHop` suitable for timeline export — one instant per hop
on the originating device's track.

Unlike :class:`repro.fabric.trace.PacketTracer` (an interactive
debugging ring buffer with filters and path queries), this recorder is
a write-only capture buffer optimized for the exporter: it keeps
insertion order, assigns a global sequence number per hop, and counts
— rather than silently forgetting — anything beyond its capacity.
"""

from __future__ import annotations

from typing import List, Optional

#: Default capture capacity.  A full mesh16 discovery produces a few
#: thousand management-packet hops; the default leaves two orders of
#: magnitude of headroom before capping.
DEFAULT_LIMIT = 200_000


class PacketHop:
    """One observed packet event, flat for fast export."""

    __slots__ = ("time", "kind", "device", "port", "packet_id", "pi",
                 "detail", "seq")

    def __init__(self, time: float, kind: str, device: str,
                 port: Optional[int], packet_id: int, pi: int,
                 detail: str, seq: int):
        self.time = time
        self.kind = kind
        self.device = device
        self.port = port
        self.packet_id = packet_id
        self.pi = pi
        self.detail = detail
        self.seq = seq

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<PacketHop {self.kind} pkt#{self.packet_id} "
            f"@{self.device} t={self.time:.3g}>"
        )


class PacketFlightRecorder:
    """Device trace hook capturing packet lifecycle events.

    Install with ``device.trace_hook = recorder`` (or let
    :class:`repro.obs.session.TraceSession` install it fabric-wide).
    Purely passive: never schedules events, never touches RNG.
    """

    def __init__(self, limit: int = DEFAULT_LIMIT):
        if limit < 1:
            raise ValueError("recorder needs room for at least one hop")
        self.hops: List[PacketHop] = []
        self.limit = limit
        #: Hops that arrived after the buffer filled (reported by the
        #: exporter so a truncated capture is never mistaken for a
        #: complete one).
        self.overflowed = 0

    def __call__(self, kind: str, device, port_index: Optional[int],
                 packet, detail: str = "") -> None:
        hops = self.hops
        if len(hops) >= self.limit:
            self.overflowed += 1
            return
        hops.append(PacketHop(
            time=device.env.now,
            kind=kind,
            device=device.name,
            port=port_index,
            packet_id=packet.pkt_id,
            pi=packet.header.pi,
            detail=detail,
            seq=len(hops),
        ))

    def devices(self) -> List[str]:
        """Distinct device names seen, sorted (stable track order)."""
        return sorted({hop.device for hop in self.hops})

    def counts(self) -> dict:
        """Hops recorded per kind."""
        result: dict = {}
        for hop in self.hops:
            result[hop.kind] = result.get(hop.kind, 0) + 1
        return result

    def __len__(self) -> int:
        return len(self.hops)

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<PacketFlightRecorder {len(self.hops)} hops"
            f"{f', {self.overflowed} overflowed' if self.overflowed else ''}>"
        )
