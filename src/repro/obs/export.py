"""Timeline exporters: Chrome-trace (Perfetto) JSON and JSONL.

``chrome_trace_document`` renders a :class:`~repro.obs.session.
TraceSession` as the Chrome Trace Event Format — the JSON dialect
understood by ``chrome://tracing``, https://ui.perfetto.dev, and
Speedscope.  Conventions used:

* one process (``pid`` 1) named after the run; one *thread* per track
  — the FM's serial tracks plus one per fabric device for packet hops
  — with ``thread_name`` metadata so viewers show readable lanes;
* spans on serial tracks become complete ``"X"`` events; spans on
  concurrent tracks (PI-4 transactions, claims, port reads) become
  async ``"b"``/``"e"`` pairs keyed by span id, which Perfetto draws
  stacked even when they overlap;
* instants (retries, PI-5 arrivals) and packet hops become ``"i"``
  events; final metric values ride along as ``"C"`` counter events;
* timestamps are sim seconds converted to microseconds (the format's
  unit).

Output is **byte-stable**: events are ordered by ``(timestamp,
record sequence)`` — both deterministic simulator quantities — and
serialized with sorted keys, so identical runs produce identical
files (the golden determinism test pins this).

``validate_chrome_trace`` structurally checks a document against the
format (used by the CI trace-smoke step), and ``write_jsonl`` emits
the same records as line-delimited JSON for ad-hoc tooling.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .span import SERIAL_TRACKS

#: Seconds -> microseconds (the Chrome trace timestamp unit).
_US = 1e6

#: Phase types the validator accepts.
_KNOWN_PHASES = {"X", "B", "E", "b", "e", "n", "i", "I", "C", "M", "s",
                 "t", "f"}


def _clean_args(args: dict) -> dict:
    return {k: v for k, v in args.items() if v is not None}


def _packet_id_map(hops) -> Dict[int, int]:
    """Dense per-session packet ids, in first-appearance order.

    Raw ``pkt_id`` comes from a process-global counter, so a packet's
    id depends on how many simulations ran earlier in the same
    process.  Remapping keeps identical runs byte-identical while
    preserving same-packet correlation within one trace.
    """
    ids: Dict[int, int] = {}
    for hop in hops:
        if hop.packet_id not in ids:
            ids[hop.packet_id] = len(ids) + 1
    return ids


def chrome_trace_document(session, label: str = "repro") -> dict:
    """Render a trace session as a Chrome Trace Event Format document."""
    spans = session.spans
    serial = set(SERIAL_TRACKS)

    # Track -> tid assignment: span tracks in first-use order (a
    # deterministic simulator quantity), then packet-hop device tracks
    # in name order.
    tids: Dict[str, int] = {}

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids) + 1
            tids[track] = tid
        return tid

    for span in spans.spans:
        tid_for(span.track)
    for event in spans.instants:
        tid_for(event.track)
    if session.packets is not None:
        for name in session.packets.devices():
            tid_for(f"dev:{name}")

    # (ts_us, source_rank, seq) totally orders the body; every
    # component is deterministic, so the file is byte-stable.
    body = []

    def emit(ts: float, rank: int, seq: int, event: dict) -> None:
        event["ts"] = ts * _US
        event["pid"] = 1
        body.append(((event["ts"], rank, seq), event))

    for span in spans.spans:
        args = _clean_args(span.args)
        if span.track in serial:
            emit(span.start, 0, span.seq_begin, {
                "ph": "X", "name": span.name, "cat": span.cat,
                "dur": (span.end - span.start) * _US,
                "tid": tids[span.track], "args": args,
            })
        else:
            common = {
                "name": span.name, "cat": span.cat,
                "id": f"0x{span.sid:x}", "tid": tids[span.track],
            }
            emit(span.start, 0, span.seq_begin,
                 {"ph": "b", "args": args, **common})
            emit(span.end, 0, span.seq_end, {"ph": "e", **common})
    for event in spans.instants:
        emit(event.time, 0, event.seq, {
            "ph": "i", "s": "t", "name": event.name, "cat": event.cat,
            "tid": tids[event.track], "args": _clean_args(event.args),
        })
    if session.packets is not None:
        pkt_ids = _packet_id_map(session.packets.hops)
        for hop in session.packets.hops:
            args = {"pkt": pkt_ids[hop.packet_id], "pi": hop.pi}
            if hop.port is not None:
                args["port"] = hop.port
            if hop.detail:
                args["detail"] = hop.detail
            emit(hop.time, 1, hop.seq, {
                "ph": "i", "s": "t", "name": hop.kind, "cat": "packet",
                "tid": tids[f"dev:{hop.device}"], "args": args,
            })

    end_ts = 0.0
    if body:
        end_ts = max(key[0] for key, _event in body)
    if session.metrics is not None:
        for name, doc in session.metrics.collect().items():
            if doc["type"] in ("counter", "gauge"):
                body.append(((end_ts, 2, len(body)), {
                    "ph": "C", "name": name, "ts": end_ts, "pid": 1,
                    "tid": 1, "args": {"value": doc["value"]},
                }))

    events: List[dict] = [
        {"ph": "M", "pid": 1, "name": "process_name",
         "args": {"name": label}},
    ]
    events.extend(
        {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
         "args": {"name": track}}
        for track, tid in tids.items()
    )
    body.sort(key=lambda item: item[0])
    events.extend(event for _key, event in body)

    other = dict(session.meta)
    if session.packets is not None and session.packets.overflowed:
        other["packet_hops_dropped"] = session.packets.overflowed
    if session.metrics is not None and len(session.metrics):
        other["metrics"] = session.metrics.collect()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def dump_chrome_trace(document: dict) -> str:
    """Serialize deterministically (sorted keys, no whitespace)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(session, path, label: str = "repro") -> dict:
    """Write the Chrome-trace JSON file; returns the document."""
    document = chrome_trace_document(session, label=label)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_chrome_trace(document))
        handle.write("\n")
    return document


def validate_chrome_trace(document) -> List[str]:
    """Structural check against the Chrome Trace Event Format.

    Accepts a document dict (``{"traceEvents": [...]}``) or a bare
    event list.  Returns a list of problems — empty means valid.
    """
    problems: List[str] = []
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            return ["document has no 'traceEvents' list"]
    elif isinstance(document, list):
        events = document
    else:
        return [f"expected dict or list, got {type(document).__name__}"]

    async_open: Dict[tuple, float] = {}
    for i, event in enumerate(events):
        label = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{label}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{label}: unknown phase {ph!r}")
            continue
        if "pid" not in event:
            problems.append(f"{label}: missing pid")
        if ph == "M":
            if not isinstance(event.get("name"), str):
                problems.append(f"{label}: metadata without name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{label}: missing numeric ts")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{label}: missing name")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{label}: X event needs dur >= 0")
        elif ph in ("b", "e"):
            if "id" not in event:
                problems.append(f"{label}: async event without id")
                continue
            key = (event.get("cat"), event["id"], event.get("name"))
            if ph == "b":
                if key in async_open:
                    problems.append(
                        f"{label}: async begin {key!r} already open"
                    )
                async_open[key] = ts
            else:
                begin_ts = async_open.pop(key, None)
                if begin_ts is None:
                    problems.append(
                        f"{label}: async end {key!r} without begin"
                    )
                elif ts < begin_ts:
                    problems.append(
                        f"{label}: async end before its begin"
                    )
        elif ph in ("i", "I") and event.get("s", "t") not in ("g", "p", "t"):
            problems.append(f"{label}: instant scope {event.get('s')!r}")
    for key in async_open:
        problems.append(f"async span {key!r} never ended")
    return problems


def write_jsonl(session, path, label: str = "repro") -> int:
    """Write the session as line-delimited JSON records.

    One ``meta`` record, then ``span``/``instant``/``packet`` records
    ordered by ``(time, record sequence)``, then one ``metrics``
    record.  Returns the number of lines written.
    """
    records = []
    for span in session.spans.spans:
        records.append(((span.start, 0, span.seq_begin), {
            "type": "span", "id": span.sid, "parent": span.parent,
            "name": span.name, "cat": span.cat, "track": span.track,
            "start": span.start, "end": span.end,
            "args": _clean_args(span.args),
        }))
    for event in session.spans.instants:
        records.append(((event.time, 0, event.seq), {
            "type": "instant", "parent": event.parent,
            "name": event.name, "cat": event.cat, "track": event.track,
            "time": event.time, "args": _clean_args(event.args),
        }))
    if session.packets is not None:
        pkt_ids = _packet_id_map(session.packets.hops)
        for hop in session.packets.hops:
            records.append(((hop.time, 1, hop.seq), {
                "type": "packet", "kind": hop.kind,
                "device": hop.device, "port": hop.port,
                "pkt": pkt_ids[hop.packet_id], "pi": hop.pi,
                "time": hop.time, "detail": hop.detail or None,
            }))
    records.sort(key=lambda item: item[0])

    lines = [{"type": "meta", "label": label, **session.meta}]
    lines.extend(record for _key, record in records)
    if session.metrics is not None and len(session.metrics):
        lines.append({
            "type": "metrics", "metrics": session.metrics.collect(),
        })
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")
    return len(lines)
