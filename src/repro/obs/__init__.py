"""Structured observability: span tracing, packet lifecycle capture,
a typed metrics registry, and timeline exporters.

The paper's figures are all *time* measurements, but end totals alone
cannot show *where* a Serial Packet walk spends its time versus a
Parallel walk.  This package records that structure:

* :class:`~repro.obs.span.SpanTracer` — nested spans for every PI-4
  transaction, discovery phase (claim, port read, assimilation burst,
  repair), restart/backoff episode, and route-distribution pass;
* :class:`~repro.obs.packets.PacketFlightRecorder` — per-hop packet
  lifecycle events (enqueue/tx/rx/drop/deliver) with sim timestamps;
* :class:`~repro.obs.metrics.MetricsRegistry` — typed
  Counter/Gauge/Histogram objects unifying the scattered stats
  counters of ports, entities, and the FM;
* :mod:`~repro.obs.export` — Chrome-trace (Perfetto-compatible) JSON
  and JSONL writers, plus a schema validator used by CI;
* :mod:`~repro.obs.breakdown` — per-phase discovery-time attribution
  (claim / port read / other) whose columns sum exactly to the
  reported discovery time.

Everything here is **zero-overhead when disabled**: instrumented hot
paths pay one ``is not None`` check and the tracer never schedules
simulation events or touches any RNG, so enabling it leaves discovery
times and stats digests bit-identical.
"""

from .breakdown import discovery_phase_breakdown, discovery_spans
from .export import (
    chrome_trace_document,
    dump_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import CounterMetric, GaugeMetric, HistogramMetric, MetricsRegistry
from .packets import PacketFlightRecorder
from .session import TraceSession
from .span import Instant, Span, SpanTracer

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "Instant",
    "MetricsRegistry",
    "PacketFlightRecorder",
    "Span",
    "SpanTracer",
    "TraceSession",
    "chrome_trace_document",
    "discovery_phase_breakdown",
    "discovery_spans",
    "dump_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
