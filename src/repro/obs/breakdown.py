"""Per-phase attribution of discovery time from a span trace.

The paper argues about *where* each discovery implementation spends
its time; the span trace makes that quantitative.  Every instant of a
discovery run's ``[started_at, finished_at]`` window is attributed to
exactly one phase:

* ``claim`` — at least one general-information read (device claim) in
  flight, including the FM's serial processing of its completion;
* ``port_read`` — no claim in flight, but at least one port-status
  read outstanding;
* ``other`` — neither (FM pacing gaps, backoff inside the window).

``claim`` and ``port_read`` are computed by a boundary sweep over the
(possibly overlapping) child-span intervals; ``other`` is defined as
the remainder, so the three columns **sum exactly** to the reported
discovery time by construction.  Route distribution runs after
``finished_at`` (the paper's discovery-time metric excludes it) and is
reported as a separate column.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .span import Span, SpanTracer

#: Child-span names attributed by priority (first match wins where
#: intervals overlap).
PHASES = ("claim", "port_read")


def discovery_spans(tracer: SpanTracer) -> List[Span]:
    """Top-level discovery/assimilation spans, in record order."""
    return [
        span for span in tracer.spans
        if span.cat == "discovery" and span.parent is None
    ]


def _descendant_intervals(
    tracer: SpanTracer, root: Span
) -> Dict[str, List[Tuple[float, float]]]:
    """Intervals of ``root``'s descendants, grouped by span name."""
    index = tracer.by_id()
    grouped: Dict[str, List[Tuple[float, float]]] = {}
    for span in tracer.spans:
        if span.end is None:
            continue
        parent = span.parent
        while parent is not None and parent != root.sid:
            parent = index[parent].parent if parent in index else None
        if parent != root.sid:
            continue
        grouped.setdefault(span.name, []).append((span.start, span.end))
    return grouped


def _swept(
    segments: List[Tuple[float, float]],
    lo: float, hi: float,
    claimed: List[Tuple[float, float]],
) -> Tuple[float, List[Tuple[float, float]]]:
    """Union length of ``segments`` clipped to [lo, hi], minus any
    overlap with already-``claimed`` intervals; returns the length and
    the merged union (for the next priority level)."""
    clipped = sorted(
        (max(start, lo), min(end, hi))
        for start, end in segments if end > lo and start < hi
    )
    merged: List[Tuple[float, float]] = []
    for start, end in clipped:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    total = 0.0
    for start, end in merged:
        length = end - start
        for c_start, c_end in claimed:
            overlap = min(end, c_end) - max(start, c_start)
            if overlap > 0:
                length -= overlap
        total += length
    # Merge into the claimed set for lower-priority phases.
    combined = sorted(claimed + merged)
    union: List[Tuple[float, float]] = []
    for start, end in combined:
        if union and start <= union[-1][1]:
            union[-1] = (union[-1][0], max(union[-1][1], end))
        else:
            union.append((start, end))
    return total, union


def discovery_phase_breakdown(
    tracer: SpanTracer,
    discovery: Optional[Span] = None,
) -> dict:
    """Attribute one discovery span's time to claim/port-read/other.

    ``discovery`` defaults to the *last* top-level discovery span (the
    assimilation run of a change experiment; the only run of a plain
    discover).  The returned columns satisfy ``claim + port_read +
    other == total == discovery time`` exactly.
    """
    if discovery is None:
        candidates = discovery_spans(tracer)
        if not candidates:
            raise ValueError("trace contains no discovery span")
        discovery = candidates[-1]
    if discovery.end is None:
        raise ValueError(f"discovery span #{discovery.sid} is open")
    lo, hi = discovery.start, discovery.end
    total = hi - lo
    grouped = _descendant_intervals(tracer, discovery)

    columns: Dict[str, float] = {}
    claimed: List[Tuple[float, float]] = []
    for phase in PHASES:
        length, claimed = _swept(grouped.get(phase, []), lo, hi, claimed)
        columns[phase] = length
    attributed = sum(columns.values())
    # Exact-sum construction: "other" absorbs float round-off, so the
    # columns always total the reported discovery time.
    columns["other"] = max(0.0, total - attributed)
    if attributed > total:
        # Round-off pushed the sweep past the window; rescale the
        # attributed phases so the identity still holds.
        scale = total / attributed
        for phase in PHASES:
            columns[phase] *= scale
        columns["other"] = total - sum(columns[p] for p in PHASES)

    route = sum(
        span.end - span.start
        for span in tracer.find(name="route_distribution")
        if span.end is not None and span.start >= hi
    )
    return {
        "name": discovery.name,
        "algorithm": discovery.args.get("algorithm", ""),
        "trigger": discovery.args.get("trigger", ""),
        "claim": columns["claim"],
        "port_read": columns["port_read"],
        "other": columns["other"],
        "total": total,
        "coverage": (
            (columns["claim"] + columns["port_read"]) / total
            if total > 0 else 1.0
        ),
        "route_distribution": route,
    }
