"""One-stop trace session: spans + packet hops + metrics for one run.

:class:`TraceSession` bundles the three recorders and knows how to
install them on a built simulation (``build_simulation(...,
tracer=session)`` does this automatically) and how to finalize them
when the run ends.  It is the object the exporters consume.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry
from .packets import DEFAULT_LIMIT, PacketFlightRecorder
from .span import SpanTracer


class TraceSession:
    """Recording context for one simulation run.

    Parameters
    ----------
    packets:
        Capture per-hop packet lifecycle events (costs one hook call
        per hop while enabled; spans alone are much cheaper).
    packet_limit:
        Capture capacity for packet hops; overflow is counted, not
        silently dropped.
    """

    def __init__(self, packets: bool = True,
                 packet_limit: int = DEFAULT_LIMIT):
        self.spans = SpanTracer()
        self.packets: Optional[PacketFlightRecorder] = (
            PacketFlightRecorder(limit=packet_limit) if packets else None
        )
        self.metrics = MetricsRegistry()
        #: Free-form run description carried into exporter output
        #: (topology name, algorithm, seed, ...).
        self.meta: dict = {}
        self._finalized = False

    def install(self, setup) -> "TraceSession":
        """Attach to a built simulation (idempotent)."""
        setup.fm.attach_tracer(self.spans)
        if self.packets is not None:
            for device in setup.fabric.devices.values():
                device.trace_hook = self.packets
        self.meta.setdefault("topology", setup.spec.name)
        self.meta.setdefault("algorithm", setup.fm.algorithm_key)
        return self

    def finalize(self, setup) -> "TraceSession":
        """Close dangling spans and snapshot end-of-run metrics."""
        if self._finalized:
            return self
        self._finalized = True
        self.meta["unfinished_spans"] = self.spans.finish(setup.env.now)
        self.metrics.scrape_setup(setup)
        return self

    def __repr__(self):  # pragma: no cover - debugging aid
        packets = len(self.packets) if self.packets is not None else 0
        return (
            f"<TraceSession {len(self.spans)} spans, {packets} packet "
            f"hops, {len(self.metrics)} metrics>"
        )
