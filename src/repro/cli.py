"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Print the paper's Table 1 (topologies evaluated).
``discover``
    Run one discovery on a Table 1 topology and print its stats.
``change``
    Run the full change-assimilation experiment (transient period,
    random hot add/remove, PI-5 detection, rediscovery).
``figure``
    Regenerate one of the paper's figures (4, 6, 7, 8, 9) as ASCII.
``reliability``
    Sweep discovery over lossy links (bit error rate x algorithm) and
    report mean discovery time and recovery work per loss point.
``churn``
    Soak discovery under mid-walk topology churn (seeded fault bursts
    preferring mid-discovery instants) and report the recovery work,
    time to converge, and the consistency auditor's verdict.
``list``
    List the available topologies and algorithms.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.figures import (
    figure4,
    figure6,
    figure7,
    figure8,
    figure9,
    figure_table1,
)
from .experiments.churn import (
    DEFAULT_FAULTS,
    DEFAULT_MEAN_INTERVAL,
    render_churn,
    summarize_churn,
    sweep_churn,
)
from .experiments.executor import change_job, run_many
from .experiments.reliability import (
    DEFAULT_BIT_ERROR_RATES,
    render_reliability,
    summarize_reliability,
    sweep_reliability,
)
from .experiments.report import render_kv
from .experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)
from .manager.timing import ALGORITHMS, PARALLEL, ProcessingTimeModel
from .topology.table1 import TABLE1_NAMES, table1_topology


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASI fabric discovery reproduction "
                    "(Robles-Gomez et al.)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1")
    sub.add_parser("list", help="list topologies and algorithms")

    discover = sub.add_parser("discover", help="run one discovery")
    discover.add_argument("--topology", default="3x3 mesh",
                          choices=TABLE1_NAMES, metavar="NAME")
    discover.add_argument("--algorithm", default=PARALLEL,
                          choices=list(ALGORITHMS))
    discover.add_argument("--fm-factor", type=float, default=1.0)
    discover.add_argument("--device-factor", type=float, default=1.0)
    _add_profile_flag(discover)

    change = sub.add_parser("change", help="change-assimilation experiment")
    change.add_argument("--topology", default="4x4 mesh",
                        choices=TABLE1_NAMES, metavar="NAME")
    change.add_argument("--algorithm", default=PARALLEL,
                        choices=list(ALGORITHMS))
    change.add_argument("--kind", default="remove_switch",
                        choices=("remove_switch", "add_switch"))
    change.add_argument("--seed", type=int, default=0)
    change.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="run seeds seed..seed+N-1 (default 1)")
    change.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = in-process)")
    _add_profile_flag(change)

    reliability = sub.add_parser(
        "reliability", help="discovery-under-loss sweep",
    )
    reliability.add_argument("--topology", default="3x3 mesh",
                             choices=TABLE1_NAMES, metavar="NAME")
    reliability.add_argument("--algorithm", action="append", default=None,
                             choices=list(ALGORITHMS), dest="algorithms",
                             help="algorithm to sweep (repeatable; "
                                  "default: all three)")
    reliability.add_argument("--ber", action="append", type=float,
                             default=None, dest="bers", metavar="RATE",
                             help="bit error rate to sweep (repeatable; "
                                  "default: %s)" % (
                                      ", ".join(
                                          f"{r:g}"
                                          for r in DEFAULT_BIT_ERROR_RATES
                                      )))
    reliability.add_argument("--seed", type=int, default=0)
    reliability.add_argument("--seeds", type=int, default=1, metavar="N",
                             help="error-model seeds seed..seed+N-1 "
                                  "(default 1)")
    reliability.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes (1 = in-process)")
    _add_profile_flag(reliability)

    churn = sub.add_parser(
        "churn", help="mid-discovery churn soak",
    )
    churn.add_argument("--topology", default="4x4 mesh",
                       choices=TABLE1_NAMES, metavar="NAME")
    churn.add_argument("--algorithm", action="append", default=None,
                       choices=list(ALGORITHMS), dest="algorithms",
                       help="algorithm to sweep (repeatable; "
                            "default: all three)")
    churn.add_argument("--manager", default="full",
                       choices=("full", "partial"),
                       help="FM flavour: full rediscovery per change "
                            "or partial assimilation (default full)")
    churn.add_argument("--faults", type=int, default=DEFAULT_FAULTS,
                       help="faults injected per run (default "
                            f"{DEFAULT_FAULTS})")
    churn.add_argument("--mean-interval", type=float,
                       default=DEFAULT_MEAN_INTERVAL, metavar="SECONDS",
                       help="mean seconds between faults (default "
                            f"{DEFAULT_MEAN_INTERVAL:g})")
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="fault-schedule seeds seed..seed+N-1 "
                            "(default 1)")
    churn.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (1 = in-process)")
    _add_profile_flag(churn)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", choices=("4", "6", "7", "8", "9"))
    figure.add_argument("--quick", action="store_true",
                        help="use reduced topology suites")
    figure.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the underlying sweep "
                             "(1 = in-process; figure 7 is always serial)")
    _add_profile_flag(figure)
    return parser


def _add_profile_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--profile", type=int, nargs="?", const=20, default=None,
        metavar="N",
        help="run under cProfile and dump the top N functions by "
             "internal time to stderr (default 20)",
    )


def _run_profiled(fn, top: int) -> int:
    """Run ``fn`` under cProfile; dump the hot functions to stderr."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        code = fn()
    finally:
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("tottime").print_stats(top)
        print(stream.getvalue(), file=sys.stderr)
    return code


def _cmd_table1() -> int:
    _rows, text = figure_table1()
    print(text)
    return 0


def _cmd_list() -> int:
    print("Topologies (Table 1):")
    for name in TABLE1_NAMES:
        print(f"  {name}")
    print("\nDiscovery algorithms:")
    for algorithm in ALGORITHMS:
        print(f"  {algorithm}")
    return 0


def _cmd_discover(args) -> int:
    timing = ProcessingTimeModel(fm_factor=args.fm_factor,
                                 device_factor=args.device_factor)
    spec = table1_topology(args.topology)
    setup = build_simulation(spec, algorithm=args.algorithm,
                             timing=timing, auto_start=False)
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    info = stats.asdict()
    info["database_correct"] = database_matches_fabric(setup)
    info["mean_fm_time"] = setup.fm.mean_processing_time()
    print(render_kv(f"Discovery of {spec.name} [{args.algorithm}]", info))
    return 0 if info["database_correct"] else 1


def _cmd_change(args) -> int:
    spec = table1_topology(args.topology)
    jobs = [
        change_job(spec, args.algorithm, seed=seed, change=args.kind)
        for seed in range(args.seed, args.seed + max(1, args.seeds))
    ]
    report = run_many(jobs, workers=args.jobs, progress=len(jobs) > 1)
    report.raise_if_failed()
    for result in report.results:
        print(render_kv(
            f"Change assimilation on {args.topology} [{args.algorithm}] "
            f"(seed {result.seed})",
            result.asdict(),
        ))
    return 0 if all(r.database_correct for r in report.results) else 1


def _cmd_reliability(args) -> int:
    spec = table1_topology(args.topology)
    algorithms = args.algorithms or list(ALGORITHMS)
    bers = args.bers if args.bers is not None else DEFAULT_BIT_ERROR_RATES
    seeds = range(args.seed, args.seed + max(1, args.seeds))
    results = sweep_reliability(
        spec, bit_error_rates=bers, algorithms=algorithms, seeds=seeds,
        workers=args.jobs,
    )
    rows = summarize_reliability(results)
    print(render_reliability(
        rows, title=f"Discovery under loss on {spec.name} "
                    f"({len(results)} runs)",
    ))
    return 0 if all(r.database_correct for r in results) else 1


def _cmd_churn(args) -> int:
    spec = table1_topology(args.topology)
    algorithms = args.algorithms or list(ALGORITHMS)
    seeds = range(args.seed, args.seed + max(1, args.seeds))
    results = sweep_churn(
        spec, algorithms=algorithms, seeds=seeds, faults=args.faults,
        mean_interval=args.mean_interval, manager=args.manager,
        workers=args.jobs,
    )
    rows = summarize_churn(results)
    print(render_churn(
        rows, title=f"Mid-discovery churn soak on {spec.name} "
                    f"({len(results)} runs, {args.faults} faults each)",
    ))
    return 0 if all(r.converged and r.audit_ok for r in results) else 1


def _cmd_figure(args) -> int:
    quick_suite = None
    if args.quick:
        quick_suite = [
            table1_topology(n) for n in ("3x3 mesh", "4x4 mesh")
        ]
    if args.number == "4":
        _data, text = figure4(topologies=quick_suite, jobs=args.jobs)
    elif args.number == "6":
        _data, text = figure6(topologies=quick_suite, seeds=range(1),
                              jobs=args.jobs)
    elif args.number == "7":
        _data, text = figure7()
    elif args.number == "8":
        spec = table1_topology("4x4 mesh" if args.quick else "8x8 mesh")
        _data, text = figure8(spec=spec, jobs=args.jobs)
    else:
        _data, text = figure9(topologies=quick_suite, seeds=range(1),
                              jobs=args.jobs)
    print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "list":
        return _cmd_list()
    commands = {
        "discover": _cmd_discover,
        "change": _cmd_change,
        "churn": _cmd_churn,
        "figure": _cmd_figure,
        "reliability": _cmd_reliability,
    }
    command = commands.get(args.command)
    if command is None:
        raise AssertionError(f"unhandled command {args.command!r}")
    if args.profile is not None:
        return _run_profiled(lambda: command(args), args.profile)
    return command(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
