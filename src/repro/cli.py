"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Print the paper's Table 1 (topologies evaluated).
``discover``
    Run one discovery on a Table 1 topology and print its stats.
``change``
    Run the full change-assimilation experiment (transient period,
    random hot add/remove, PI-5 detection, rediscovery).
``figure``
    Regenerate one of the paper's figures (4, 6, 7, 8, 9) as ASCII.
``reliability``
    Sweep discovery over lossy links (bit error rate x algorithm) and
    report mean discovery time and recovery work per loss point.
``churn``
    Soak discovery under mid-walk topology churn (seeded fault bursts
    preferring mid-discovery instants) and report the recovery work,
    time to converge, and the consistency auditor's verdict.
``failover``
    Kill the fabric manager under churn and hand the fabric to a
    standby: cold rediscovery vs warm mirror takeover, detection and
    recovery latency, and (with ``--restart-primary``) the ownership-
    epoch fencing duel with the resurrected old primary.
``load``
    Run the change-assimilation protocol while application traffic
    saturates the fabric, sweeping offered load x TC->VC mapping
    (strict-priority bypass vs mixed), and report discovery-time and
    PI-5 detection-latency inflation vs the idle baseline.  Exit code
    is non-zero unless every run's database matches ground truth.
``trace``
    Run one traced scenario and export its span/packet timeline as a
    Chrome-trace JSON (load it in ``chrome://tracing`` or Perfetto),
    printing the per-phase discovery-time breakdown.
``fuzz``
    Sample seed-deterministic scenarios across the whole configuration
    space, run them through the parallel executor, auto-shrink every
    failure to a minimal reproducer, and (with ``--corpus``) archive
    the reproducers as JSON regression-corpus entries.
``replay``
    Replay every scenario in a regression corpus directory and verify
    each one passes (converged, correct database, clean audit).
``serve``
    Host a live simulation as a control-plane daemon speaking
    line-delimited JSON over TCP: topology/path/status/metrics
    queries, hot mutations, and a streamed event feed, optionally
    under continuous churn (see ``docs/SERVICE.md``).
``topology``
    List the registered topology families and aliases, or describe
    one name (device/switch/link counts).
``list``
    List the available topologies, aliases, algorithms, and managers.

``serve``, ``churn``, ``failover``, ``load``, and ``fuzz`` may run for
a long time; Ctrl-C stops them gracefully (injectors cancelled,
one-line summary, exit code 130).

Flags are uniform across the experiment commands: ``--topology``
accepts Table 1 names or shell-friendly aliases (``mesh16``),
``--manager`` selects the FM flavour (``full``/``partial``) or — as a
shorthand — a discovery algorithm key (``--manager serial_device`` ==
``--manager full --algorithm serial_device``), ``--seed``/``--seeds``/
``--jobs`` shape a sweep, and ``--trace PATH`` additionally runs one
traced representative scenario in-process and exports its timeline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from .experiments.figures import (
    figure4,
    figure6,
    figure7,
    figure8,
    figure9,
    figure_table1,
)
from .experiments.churn import (
    DEFAULT_FAULTS,
    DEFAULT_MEAN_INTERVAL,
    render_churn,
    summarize_churn,
    sweep_churn,
)
from .experiments.executor import run_many
from .experiments.failover import (
    DEFAULT_FAULTS as FAILOVER_FAULTS,
    DEFAULT_HEARTBEAT,
    DEFAULT_MISS_THRESHOLD,
    render_failover,
    summarize_failover,
    sweep_failover,
)
from .experiments.load import (
    DEFAULT_LOADS,
    TC_MAPPINGS,
    render_load,
    summarize_load,
    sweep_load,
)
from .experiments.reliability import (
    DEFAULT_BIT_ERROR_RATES,
    render_reliability,
    summarize_reliability,
    sweep_reliability,
)
from .experiments.report import render_kv, render_phase_breakdown
from .experiments.shrink import DEFAULT_MAX_ATTEMPTS
from .experiments.scenario import Scenario
from .manager.timing import ALGORITHMS, PARALLEL, ProcessingTimeModel
from .topology.registry import (
    GENERATOR_FAMILIES,
    canonical_topology_name,
)
from .topology.table1 import ALIASES, TABLE1_NAMES

#: ``--manager`` accepts the FM flavours plus, as a shorthand, the
#: algorithm keys (resolved by :func:`resolve_variant`).
MANAGER_CHOICES = ("full", "partial") + tuple(ALGORITHMS)


def resolve_variant(manager: str, algorithm: str) -> Tuple[str, str]:
    """Resolve ``(--manager, --algorithm)`` to ``(manager, algorithm)``.

    ``--manager`` given as an algorithm key means "the full FM running
    that algorithm" and overrides ``--algorithm``.
    """
    if manager in ALGORITHMS:
        return "full", manager
    return manager, algorithm


def _topology_arg(value: str) -> str:
    """Argparse type: any known topology name, alias, or generator
    spec (``mesh16``, ``dragonfly-k4m8``, ``fattree2-1024``, ...)."""
    try:
        return canonical_topology_name(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


# -- shared parent parsers ----------------------------------------------------

def _topology_parent(default: str) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--topology", type=_topology_arg, default=default, metavar="NAME",
        help=f"topology name, alias, or generator spec, e.g. mesh16 or "
             f"dragonfly-k4m8 (default {default!r})",
    )
    return parent


def _algorithm_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--algorithm", default=PARALLEL,
                        choices=list(ALGORITHMS))
    return parent


def _algorithms_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--algorithm", action="append", default=None,
                        choices=list(ALGORITHMS), dest="algorithms",
                        help="algorithm to sweep (repeatable; "
                             "default: all three)")
    return parent


def _manager_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--manager", default="full", choices=MANAGER_CHOICES,
        help="FM flavour (full/partial), or an algorithm key as "
             "shorthand for the full FM running that algorithm "
             "(default full)",
    )
    return parent


def _sweep_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0)
    parent.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="run seeds seed..seed+N-1 (default 1)")
    parent.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = in-process)")
    return parent


def _trace_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace", metavar="PATH", default=None,
        help="additionally run one traced representative scenario "
             "in-process and export its timeline as Chrome-trace JSON",
    )
    return parent


def _profile_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--profile", type=int, nargs="?", const=20, default=None,
        metavar="N",
        help="run under cProfile and dump the top N functions by "
             "internal time to stderr (default 20)",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ASI fabric discovery reproduction "
                    "(Robles-Gomez et al.)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1")
    sub.add_parser("list", help="list topologies and algorithms")

    discover = sub.add_parser(
        "discover", help="run one discovery",
        parents=[_topology_parent("3x3 mesh"), _algorithm_parent(),
                 _manager_parent(), _sweep_parent(), _trace_parent(),
                 _profile_parent()],
    )
    discover.add_argument("--fm-factor", type=float, default=1.0)
    discover.add_argument("--device-factor", type=float, default=1.0)

    change = sub.add_parser(
        "change", help="change-assimilation experiment",
        parents=[_topology_parent("4x4 mesh"), _algorithm_parent(),
                 _manager_parent(), _sweep_parent(), _trace_parent(),
                 _profile_parent()],
    )
    change.add_argument("--kind", default="remove_switch",
                        choices=("remove_switch", "add_switch"))

    reliability = sub.add_parser(
        "reliability", help="discovery-under-loss sweep",
        parents=[_topology_parent("3x3 mesh"), _algorithms_parent(),
                 _manager_parent(), _sweep_parent(), _trace_parent(),
                 _profile_parent()],
    )
    reliability.add_argument("--ber", action="append", type=float,
                             default=None, dest="bers", metavar="RATE",
                             help="bit error rate to sweep (repeatable; "
                                  "default: %s)" % (
                                      ", ".join(
                                          f"{r:g}"
                                          for r in DEFAULT_BIT_ERROR_RATES
                                      )))

    churn = sub.add_parser(
        "churn", help="mid-discovery churn soak",
        parents=[_topology_parent("4x4 mesh"), _algorithms_parent(),
                 _manager_parent(), _sweep_parent(), _trace_parent(),
                 _profile_parent()],
    )
    churn.add_argument("--faults", type=int, default=DEFAULT_FAULTS,
                       help="faults injected per run (default "
                            f"{DEFAULT_FAULTS})")
    churn.add_argument("--mean-interval", type=float,
                       default=DEFAULT_MEAN_INTERVAL, metavar="SECONDS",
                       help="mean seconds between faults (default "
                            f"{DEFAULT_MEAN_INTERVAL:g})")

    failover = sub.add_parser(
        "failover", help="FM kill/takeover experiment",
        parents=[_topology_parent("4x4 mesh"), _algorithm_parent(),
                 _sweep_parent(), _trace_parent(), _profile_parent()],
    )
    failover.add_argument(
        "--mode", default="both", choices=("both", "warm", "cold"),
        help="standby takeover mode(s) to sweep (default both)")
    failover.add_argument(
        "--manager", default="partial", choices=("full", "partial"),
        help="FM flavour for primary and standby (default partial; "
             "warm takeover repairs via the partial manager's burst "
             "machinery)")
    failover.add_argument(
        "--faults", type=int, default=None,
        help="churn faults injected before the kill "
             f"(default {FAILOVER_FAULTS})")
    failover.add_argument(
        "--mean-interval", type=float, default=DEFAULT_MEAN_INTERVAL,
        metavar="SECONDS",
        help="mean seconds between churn faults (default "
             f"{DEFAULT_MEAN_INTERVAL:g})")
    failover.add_argument(
        "--heartbeat", type=float, default=DEFAULT_HEARTBEAT,
        metavar="SECONDS", dest="heartbeat_interval",
        help="standby heartbeat probe interval (default "
             f"{DEFAULT_HEARTBEAT:g})")
    failover.add_argument(
        "--miss-threshold", type=int, default=DEFAULT_MISS_THRESHOLD,
        help="consecutive missed heartbeats before takeover "
             f"(default {DEFAULT_MISS_THRESHOLD})")
    failover.add_argument(
        "--restart-primary", action="store_true",
        help="resurrect the old primary after takeover and verify "
             "the ownership-epoch fence demotes it")

    load = sub.add_parser(
        "load", help="discovery-under-traffic sweep",
        parents=[_topology_parent("4x4 mesh"), _algorithms_parent(),
                 _manager_parent(), _sweep_parent(), _trace_parent(),
                 _profile_parent()],
    )
    load.add_argument("--load", action="append", type=float,
                      default=None, dest="loads", metavar="FRACTION",
                      help="offered load per endpoint to sweep, in "
                           "[0, 1] (repeatable; default: %s; keep 0 in "
                           "the list — it is the inflation baseline)"
                           % ", ".join(f"{x:g}" for x in DEFAULT_LOADS))
    load.add_argument("--mapping", action="append", default=None,
                      dest="mappings", choices=sorted(TC_MAPPINGS),
                      help="TC->VC mapping to sweep: bvc = management "
                           "on the strict-priority bypass VC, mixed = "
                           "everything on one VC (repeatable; default "
                           "both)")
    load.add_argument("--arrival", default="poisson",
                      choices=("poisson", "bursty", "constant"),
                      help="traffic arrival process (default poisson)")
    load.add_argument("--pattern", default="uniform",
                      choices=("uniform", "permutation", "hotspot"),
                      help="destination pattern (default uniform)")

    trace = sub.add_parser(
        "trace", help="run one traced scenario, export its timeline",
        parents=[_topology_parent("4x4 mesh"), _algorithm_parent(),
                 _manager_parent(), _profile_parent()],
    )
    trace.add_argument("--kind", default="discover",
                       choices=("discover", "change", "reliability",
                                "churn"))
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", metavar="PATH", required=True,
                       help="Chrome-trace JSON output path")
    trace.add_argument("--jsonl", metavar="PATH", default=None,
                       help="additionally export a JSONL event stream")
    trace.add_argument("--no-packets", action="store_true",
                       help="skip per-hop packet capture (spans and "
                            "metrics only; much smaller traces)")

    figure = sub.add_parser(
        "figure", help="regenerate a paper figure",
        parents=[_manager_parent(), _trace_parent(), _profile_parent()],
    )
    figure.add_argument("number", choices=("4", "6", "7", "8", "9"))
    figure.add_argument("--quick", action="store_true",
                        help="use reduced topology suites")
    figure.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="seeds per topology for figures 6/9 "
                             "(default 1)")
    figure.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the underlying sweep "
                             "(1 = in-process; figure 7 is always serial)")

    fuzz = sub.add_parser(
        "fuzz", help="fuzz scenarios, auto-shrink failures",
        parents=[_profile_parent()],
    )
    fuzz.add_argument("--runs", type=int, default=50, metavar="N",
                      help="scenarios to sample (default 50)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="master seed every sampled scenario derives "
                           "from (default 0)")
    fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes (1 = in-process)")
    fuzz.add_argument("--corpus", metavar="DIR", default=None,
                      help="write each failure's minimal scenario as a "
                           "JSON corpus entry into DIR")
    fuzz.add_argument("--shrink", default=True,
                      action=argparse.BooleanOptionalAction,
                      help="auto-shrink failures to minimal "
                           "reproducers (default on)")
    fuzz.add_argument("--max-shrink", type=int, metavar="N",
                      default=DEFAULT_MAX_ATTEMPTS,
                      help="candidate evaluations per shrink (default "
                           f"{DEFAULT_MAX_ATTEMPTS})")
    fuzz.add_argument("--inject", action="append", default=None,
                      metavar="KEY=VALUE",
                      help="force an FM constructor option into every "
                           "sampled scenario (repeatable; VALUE is "
                           "parsed as JSON, else kept as a string) — "
                           "for exercising the find/shrink loop")

    replay = sub.add_parser(
        "replay", help="replay the regression corpus",
        parents=[_profile_parent()],
    )
    replay.add_argument("--corpus", metavar="DIR", default="tests/corpus",
                        help="corpus directory (default tests/corpus)")
    replay.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = in-process)")

    serve = sub.add_parser(
        "serve", help="host a live simulation behind a JSON API",
        parents=[_topology_parent("4x4 mesh"), _algorithm_parent(),
                 _manager_parent()],
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7817,
                       help="TCP port; 0 picks an ephemeral one "
                            "(default 7817)")
    serve.add_argument("--seed", type=int, default=0,
                       help="churn randomness seed (default 0)")
    serve.add_argument("--churn", action="store_true",
                       help="keep a fault injector disturbing the "
                            "fabric while serving")
    serve.add_argument("--mean-interval", type=float,
                       default=DEFAULT_MEAN_INTERVAL, metavar="SECONDS",
                       help="mean sim-seconds between churn faults "
                            f"(default {DEFAULT_MEAN_INTERVAL:g})")
    serve.add_argument("--batch", type=int, default=None, metavar="N",
                       help="kernel events advanced per command-queue "
                            "check (latency/throughput knob)")
    serve.add_argument("--standby", default=None,
                       choices=("warm", "cold"),
                       help="run a standby FM on a second endpoint so "
                            "the kill_fm / promote_standby verbs work")

    topology = sub.add_parser(
        "topology", help="list or describe registered topologies",
    )
    topology.add_argument("name", nargs="?", default=None,
                          help="a topology name, alias, or generator "
                               "spec to describe; omit to list all")
    return parser


def _run_profiled(fn, top: int) -> int:
    """Run ``fn`` under cProfile; dump the hot functions to stderr."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        code = fn()
    finally:
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("tottime").print_stats(top)
        print(stream.getvalue(), file=sys.stderr)
    return code


# -- trace export -------------------------------------------------------------

def _export_trace(scenario: Scenario, out: str,
                  jsonl: Optional[str] = None,
                  packets: bool = True) -> int:
    """Run ``scenario`` traced; export and summarize the timeline."""
    from .obs import (
        TraceSession,
        discovery_phase_breakdown,
        discovery_spans,
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
    )
    session = TraceSession(packets=packets)
    scenario.run(tracer=session)
    label = f"{session.meta.get('topology', '?')} [{scenario.kind}]"
    document = write_chrome_trace(session, out, label=label)
    schema_problems = validate_chrome_trace(document)
    tree_problems = session.spans.validate()
    rows = [
        discovery_phase_breakdown(session.spans, span)
        for span in discovery_spans(session.spans)
        if span.end is not None
    ]
    if rows:
        print(render_phase_breakdown(
            rows, title=f"Discovery-time breakdown ({label})",
        ))
    hops = len(session.packets) if session.packets is not None else 0
    print(render_kv("Trace export", {
        "out": out,
        "spans": len(session.spans.spans),
        "instants": len(session.spans.instants),
        "packet_hops": hops,
        "unfinished_spans": session.meta.get("unfinished_spans", 0),
        "span_tree_ok": not tree_problems,
        "chrome_schema_ok": not schema_problems,
    }))
    for problem in (tree_problems + schema_problems)[:10]:
        print(f"  problem: {problem}", file=sys.stderr)
    if jsonl:
        lines = write_jsonl(session, jsonl, label=label)
        print(f"  jsonl: {jsonl} ({lines} records)")
    return 0 if not (tree_problems or schema_problems) else 1


def _representative(args, kind: str, algorithm: str,
                    **extra) -> Scenario:
    """The single traced scenario a ``--trace PATH`` flag runs."""
    manager, algorithm = resolve_variant(
        getattr(args, "manager", "full"), algorithm
    )
    return Scenario(
        kind=kind, topology=args.topology, algorithm=algorithm,
        manager=manager, seed=getattr(args, "seed", 0), **extra,
    )


# -- commands -----------------------------------------------------------------

def _cmd_table1(args) -> int:
    _rows, text = figure_table1()
    print(text)
    return 0


def _cmd_list(args) -> int:
    print("Topologies (Table 1):")
    reverse = {name: alias for alias, name in ALIASES.items()}
    for name in TABLE1_NAMES:
        alias = reverse.get(name)
        suffix = f"  (alias: {alias})" if alias else ""
        print(f"  {name}{suffix}")
    print("\nGenerator families (parameterised names):")
    for line in GENERATOR_FAMILIES:
        print(f"  {line}")
    print("\nDiscovery algorithms:")
    for algorithm in ALGORITHMS:
        print(f"  {algorithm}")
    print("\nManagers:")
    print("  full     (every change is a full rediscovery)")
    print("  partial  (burst-based partial change assimilation)")
    return 0


def _cmd_discover(args) -> int:
    manager, algorithm = resolve_variant(args.manager, args.algorithm)
    timing = ProcessingTimeModel(fm_factor=args.fm_factor,
                                 device_factor=args.device_factor)
    seeds = range(args.seed, args.seed + max(1, args.seeds))
    scenarios = [
        Scenario(kind="discover", topology=args.topology,
                 algorithm=algorithm, manager=manager, seed=seed,
                 timing=timing)
        for seed in seeds
    ]
    report = run_many([sc.job() for sc in scenarios], workers=args.jobs,
                      progress=len(scenarios) > 1)
    report.raise_if_failed()
    for seed, stats in zip(seeds, report.results):
        info = stats.asdict()
        info["mean_fm_time"] = stats.mean_fm_time
        info["database_correct"] = stats.database_correct
        print(render_kv(
            f"Discovery of {args.topology} [{algorithm}] (seed {seed})",
            info,
        ))
    if args.trace:
        code = _export_trace(
            _representative(args, "discover", args.algorithm,
                            timing=timing),
            args.trace,
        )
        if code != 0:
            return code
    return 0 if all(s.database_correct for s in report.results) else 1


def _cmd_change(args) -> int:
    manager, algorithm = resolve_variant(args.manager, args.algorithm)
    jobs = [
        Scenario(kind="change", topology=args.topology,
                 algorithm=algorithm, manager=manager, seed=seed,
                 change=args.kind).job()
        for seed in range(args.seed, args.seed + max(1, args.seeds))
    ]
    report = run_many(jobs, workers=args.jobs, progress=len(jobs) > 1)
    report.raise_if_failed()
    for result in report.results:
        print(render_kv(
            f"Change assimilation on {args.topology} [{algorithm}] "
            f"(seed {result.seed})",
            result.asdict(),
        ))
    if args.trace:
        code = _export_trace(
            _representative(args, "change", args.algorithm,
                            change=args.kind),
            args.trace,
        )
        if code != 0:
            return code
    return 0 if all(r.database_correct for r in report.results) else 1


def _cmd_reliability(args) -> int:
    from .topology.registry import resolve_topology
    manager, _ = resolve_variant(args.manager, PARALLEL)
    spec = resolve_topology(args.topology)
    algorithms = args.algorithms or list(ALGORITHMS)
    if args.manager in ALGORITHMS:
        algorithms = [args.manager]
    bers = args.bers if args.bers is not None else DEFAULT_BIT_ERROR_RATES
    seeds = range(args.seed, args.seed + max(1, args.seeds))
    results = sweep_reliability(
        spec, bit_error_rates=bers, algorithms=algorithms, seeds=seeds,
        workers=args.jobs,
    )
    rows = summarize_reliability(results)
    print(render_reliability(
        rows, title=f"Discovery under loss on {spec.name} "
                    f"({len(results)} runs)",
    ))
    if args.trace:
        from dataclasses import replace as _replace
        from .fabric.params import DEFAULT_PARAMS
        params = _replace(DEFAULT_PARAMS, bit_error_rate=max(bers))
        code = _export_trace(
            _representative(args, "reliability", algorithms[0],
                            params=params.to_dict()),
            args.trace,
        )
        if code != 0:
            return code
    return 0 if all(r.database_correct for r in results) else 1


def _cmd_churn(args) -> int:
    from .topology.registry import resolve_topology
    manager, _ = resolve_variant(args.manager, PARALLEL)
    spec = resolve_topology(args.topology)
    algorithms = args.algorithms or list(ALGORITHMS)
    if args.manager in ALGORITHMS:
        algorithms = [args.manager]
    seeds = range(args.seed, args.seed + max(1, args.seeds))
    results = sweep_churn(
        spec, algorithms=algorithms, seeds=seeds, faults=args.faults,
        mean_interval=args.mean_interval, manager=manager,
        workers=args.jobs,
    )
    rows = summarize_churn(results)
    print(render_churn(
        rows, title=f"Mid-discovery churn soak on {spec.name} "
                    f"({len(results)} runs, {args.faults} faults each)",
    ))
    if args.trace:
        code = _export_trace(
            _representative(args, "churn", algorithms[0],
                            faults=args.faults,
                            mean_interval=args.mean_interval),
            args.trace,
        )
        if code != 0:
            return code
    return 0 if all(r.converged and r.audit_ok for r in results) else 1


def _cmd_failover(args) -> int:
    from .topology.registry import resolve_topology
    spec = resolve_topology(args.topology)
    modes = ("warm", "cold") if args.mode == "both" else (args.mode,)
    faults = FAILOVER_FAULTS if args.faults is None else args.faults
    seeds = range(args.seed, args.seed + max(1, args.seeds))
    results = sweep_failover(
        spec, modes=modes, seeds=seeds, algorithm=args.algorithm,
        heartbeat_interval=args.heartbeat_interval,
        miss_threshold=args.miss_threshold, faults=faults,
        mean_interval=args.mean_interval,
        restart_primary=args.restart_primary, manager=args.manager,
        workers=args.jobs, progress=len(modes) * len(seeds) > 1,
    )
    rows = summarize_failover(results)
    print(render_failover(
        rows, title=f"FM failover on {spec.name} "
                    f"({len(results)} runs, {faults} churn faults "
                    f"before each kill)",
    ))
    if args.trace:
        scenario = Scenario(
            kind="failover", topology=args.topology,
            algorithm=args.algorithm, manager=args.manager,
            seed=args.seed, mode=modes[0], faults=faults,
            mean_interval=args.mean_interval,
            heartbeat_interval=args.heartbeat_interval,
            miss_threshold=args.miss_threshold,
            restart_primary=args.restart_primary or None,
        )
        code = _export_trace(scenario, args.trace)
        if code != 0:
            return code
    safe = all(
        r.converged and r.audit_ok
        and r.old_primary_demoted in (True, None)
        for r in results
    )
    return 0 if safe else 1


def _cmd_load(args) -> int:
    from .topology.registry import resolve_topology
    manager, _ = resolve_variant(args.manager, PARALLEL)
    spec = resolve_topology(args.topology)
    algorithms = args.algorithms or [PARALLEL]
    if args.manager in ALGORITHMS:
        algorithms = [args.manager]
    loads = tuple(args.loads) if args.loads is not None else DEFAULT_LOADS
    mappings = (tuple(args.mappings) if args.mappings is not None
                else ("bvc", "mixed"))
    seeds = range(args.seed, args.seed + max(1, args.seeds))
    results = sweep_load(
        spec, loads=loads, mappings=mappings, algorithms=algorithms,
        seeds=seeds, arrival=args.arrival, pattern=args.pattern,
        workers=args.jobs,
    )
    rows = summarize_load(results)
    print(render_load(
        rows, title=f"Discovery under load on {spec.name} "
                    f"({len(results)} runs, {args.arrival}/"
                    f"{args.pattern} traffic)",
    ))
    if args.trace:
        from dataclasses import replace as _replace
        from .fabric.params import DEFAULT_PARAMS
        from .workloads.traffic import TrafficSpec
        peak = max(loads)
        traffic = (TrafficSpec(load=peak, arrival=args.arrival,
                               pattern=args.pattern).to_dict()
                   if peak > 0 else None)
        params = _replace(DEFAULT_PARAMS,
                          tc_vc_map=TC_MAPPINGS[mappings[0]])
        code = _export_trace(
            _representative(args, "load", algorithms[0],
                            traffic=traffic, params=params.to_dict()),
            args.trace,
        )
        if code != 0:
            return code
    return 0 if all(r.database_correct for r in results) else 1


def _parse_inject(pairs: Optional[List[str]]) -> Optional[dict]:
    """``--inject KEY=VALUE`` flags as an FM-options dict.

    Values parse as JSON (``true``, ``3``, ``0.5``); anything that
    does not is kept as a plain string.
    """
    if not pairs:
        return None
    import json
    options = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"--inject expects KEY=VALUE, got {pair!r}"
            )
        try:
            options[key] = json.loads(raw)
        except ValueError:
            options[key] = raw
    return options


def _cmd_fuzz(args) -> int:
    from .experiments.fuzz import run_fuzz
    report = run_fuzz(
        args.runs, seed=args.seed, workers=args.jobs,
        shrink=args.shrink, corpus_dir=args.corpus,
        inject=_parse_inject(args.inject),
        max_shrink_attempts=args.max_shrink,
        progress=args.runs > 1,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_replay(args) -> int:
    from .experiments.fuzz import replay_corpus
    outcomes = replay_corpus(args.corpus, workers=args.jobs)
    if not outcomes:
        print(f"replay: no corpus entries under {args.corpus}")
        return 1
    failed = [o for o in outcomes if not o.ok]
    for outcome in outcomes:
        status = ("ok" if outcome.ok
                  else f"FAIL {outcome.reason} ({outcome.detail})")
        print(f"  {outcome.path.name}: {status}")
    print(f"replay: {len(outcomes)} corpus entr"
          f"{'y' if len(outcomes) == 1 else 'ies'}, "
          f"{len(failed)} failure(s)")
    return 0 if not failed else 1


def _cmd_trace(args) -> int:
    manager, algorithm = resolve_variant(args.manager, args.algorithm)
    scenario = Scenario(
        kind=args.kind, topology=args.topology, algorithm=algorithm,
        manager=manager, seed=args.seed,
    )
    return _export_trace(scenario, args.out, jsonl=args.jsonl,
                         packets=not args.no_packets)


def _cmd_figure(args) -> int:
    from .topology.table1 import table1_topology
    quick_suite = None
    if args.quick:
        quick_suite = [
            table1_topology(n) for n in ("3x3 mesh", "4x4 mesh")
        ]
    seeds = range(max(1, args.seeds))
    if args.number == "4":
        _data, text = figure4(topologies=quick_suite, jobs=args.jobs)
    elif args.number == "6":
        _data, text = figure6(topologies=quick_suite, seeds=seeds,
                              jobs=args.jobs)
    elif args.number == "7":
        _data, text = figure7()
    elif args.number == "8":
        spec = table1_topology("4x4 mesh" if args.quick else "8x8 mesh")
        _data, text = figure8(spec=spec, jobs=args.jobs)
    else:
        _data, text = figure9(topologies=quick_suite, seeds=seeds,
                              jobs=args.jobs)
    print(text)
    if args.trace:
        manager, algorithm = resolve_variant(args.manager, PARALLEL)
        scenario = Scenario(
            kind="discover",
            topology="4x4 mesh" if args.quick else "8x8 mesh",
            algorithm=algorithm, manager=manager,
        )
        return _export_trace(scenario, args.trace)
    return 0


def _cmd_serve(args) -> int:
    from .service import start_service
    manager, algorithm = resolve_variant(args.manager, args.algorithm)
    kwargs = {} if args.batch is None else {"batch": args.batch}
    handle = start_service(
        topology=args.topology, algorithm=algorithm, manager=manager,
        host=args.host, port=args.port, seed=args.seed,
        churn=args.churn, mean_interval=args.mean_interval,
        standby=args.standby, **kwargs,
    )
    churn_note = (f", churn mean_interval={args.mean_interval:g}s"
                  if args.churn else "")
    print(f"serving {args.topology} [{algorithm}/{manager}] on "
          f"{handle.host}:{handle.port}{churn_note}", flush=True)
    print("Ctrl-C to stop, or send the 'shutdown' op.", flush=True)
    try:
        # The service loop thread exits when a client sends `shutdown`.
        while handle._thread.is_alive():
            handle._thread.join(timeout=0.2)
    except KeyboardInterrupt:
        summary = handle.stop()
        print(f"\ninterrupted: served {summary['requests']} requests "
              f"over {summary['connections']} connections, "
              f"{summary['events_published']} events published, "
              f"{summary['errors']} errors", flush=True)
        return 130
    summary = handle.stop()
    print(f"shutdown: served {summary['requests']} requests over "
          f"{summary['connections']} connections, "
          f"{summary['events_published']} events published, "
          f"{summary['errors']} errors", flush=True)
    return 0


def _cmd_topology(args) -> int:
    from .topology.registry import describe_topology, topology_catalog
    if args.name is None:
        catalog = topology_catalog()
        print("Table 1 topologies:")
        for entry in catalog["table1"]:
            suffix = (f"  (alias: {entry['alias']})"
                      if entry["alias"] else "")
            print(f"  {entry['name']}{suffix}")
        print("\nGenerator families (parameterised names):")
        for line in catalog["families"]:
            print(f"  {line}")
        return 0
    try:
        info = describe_topology(args.name)
    except ValueError as exc:
        print(f"topology: {exc}", file=sys.stderr)
        return 1
    print(render_kv(f"Topology {info['name']}", info))
    return 0


#: Long-running commands where Ctrl-C means "stop gracefully": the
#: handler (or this wrapper) prints a one-line summary and exits 130.
INTERRUPTIBLE = frozenset({"serve", "churn", "failover", "fuzz", "load"})


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    commands = {
        "table1": _cmd_table1,
        "list": _cmd_list,
        "discover": _cmd_discover,
        "change": _cmd_change,
        "churn": _cmd_churn,
        "failover": _cmd_failover,
        "load": _cmd_load,
        "figure": _cmd_figure,
        "reliability": _cmd_reliability,
        "trace": _cmd_trace,
        "fuzz": _cmd_fuzz,
        "replay": _cmd_replay,
        "serve": _cmd_serve,
        "topology": _cmd_topology,
    }
    command = commands.get(args.command)
    if command is None:
        raise AssertionError(f"unhandled command {args.command!r}")
    if getattr(args, "profile", None) is not None:
        return _run_profiled(lambda: command(args), args.profile)
    if args.command in INTERRUPTIBLE:
        try:
            return command(args)
        except KeyboardInterrupt:
            # `serve` handles the interrupt itself (it must stop the
            # injector and the driver thread); churn/fuzz sweeps land
            # here when a worker pool or in-process run is aborted.
            print(f"\ninterrupted: {args.command} stopped early",
                  file=sys.stderr, flush=True)
            return 130
    return command(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
