"""Analytical model of the discovery pipelines (paper Fig. 7(b)).

Fig. 7(b) sketches the "ideal" serial and parallel behaviours:

* **Serial**: the FM processes one packet (``T_FM``), the request
  propagates (``T_Prop``), the device serves it (``T_Device``), and the
  response propagates back (``T_Prop``) — all strictly one after
  another, so each packet costs ``T_FM + 2 T_Prop + T_Device``.
* **Parallel**: the round trips overlap with FM processing — as long as
  a response is always waiting, each packet costs only ``T_FM``.

These closed forms both explain the constant slopes in Fig. 7(a) and
predict when device speed matters (Fig. 8(b)): the Parallel pipeline is
insensitive to ``T_Device`` until devices are so slow that
``T_Device + 2 T_Prop > (outstanding - 1) x T_FM`` and the FM runs dry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fabric.params import DEFAULT_PARAMS, FabricParams
from ..manager.timing import (
    PARALLEL,
    SERIAL_DEVICE,
    SERIAL_PACKET,
    ProcessingTimeModel,
)
from ..topology.spec import TopologySpec


@dataclass
class PipelineModel:
    """Closed-form per-packet periods and discovery-time predictions."""

    t_fm: float
    t_device: float
    t_prop: float

    @classmethod
    def from_parameters(cls, timing: ProcessingTimeModel,
                        algorithm: str,
                        known_devices: int = 0,
                        params: FabricParams = DEFAULT_PARAMS,
                        hops: float = 3.0,
                        packet_bytes: float = 48.0) -> "PipelineModel":
        """Build the model from simulation parameters.

        ``hops`` is the mean path length of a discovery packet and
        ``packet_bytes`` the mean wire size; together they give the
        one-way propagation term (serialization + per-hop latency).
        """
        t_prop = (
            params.tx_time(packet_bytes)
            + hops * (params.routing_latency + params.propagation_delay)
        )
        return cls(
            t_fm=timing.fm_time(algorithm, known_devices),
            t_device=timing.device_processing_time(),
            t_prop=t_prop,
        )

    # -- per-packet periods (the Fig. 7(a) slopes) ---------------------------
    @property
    def serial_period(self) -> float:
        """Per-packet time of a strictly serialized discovery."""
        return self.t_fm + 2 * self.t_prop + self.t_device

    @property
    def parallel_period(self) -> float:
        """Per-packet time when round trips overlap FM processing."""
        return self.t_fm

    # -- discovery-time predictions -----------------------------------------
    def predict(self, algorithm: str, n_packets: int) -> float:
        """Predicted discovery time for ``n_packets`` completions."""
        if algorithm == SERIAL_PACKET:
            return n_packets * self.serial_period
        if algorithm == PARALLEL:
            # One pipeline fill, then FM-bound.
            return self.serial_period + (n_packets - 1) * self.parallel_period
        if algorithm == SERIAL_DEVICE:
            # Between serial and parallel: the port phase pipelines,
            # the per-device general reads serialize.  With an average
            # of p port reads per general read, a fraction 1/(p+1) of
            # packets pay the full round trip.
            return self.predict_serial_device(n_packets)
        raise ValueError(f"unknown algorithm {algorithm!r}")

    def predict_serial_device(self, n_packets: int,
                              mean_ports: float = 8.0) -> float:
        """Serial Device prediction with ``mean_ports`` reads per device."""
        serial_fraction = 1.0 / (mean_ports + 1.0)
        period = (
            serial_fraction * self.serial_period
            + (1 - serial_fraction) * self.parallel_period
        )
        return n_packets * period

    def device_speed_knee(self, outstanding: float) -> float:
        """T_Device beyond which Parallel starts feeling device speed.

        With ``outstanding`` requests in flight, the FM stays busy while
        ``T_Device + 2 T_Prop <= (outstanding - 1) x T_FM`` (Fig. 8(b):
        "only when devices are too much slow ... the discovery time is
        affected").
        """
        return max(0.0, (outstanding - 1) * self.t_fm - 2 * self.t_prop)


def expected_packets(spec: TopologySpec) -> int:
    """Discovery packet count (requests) for a fully active topology.

    Every device costs one port read per port; general reads happen
    once per *directed exploration arc*: one for the FM's own endpoint
    plus one per (device, active non-ingress port) pair — i.e. one per
    direction of every inter-device link, minus one per device for the
    ingress of its first discovery.
    """
    ports_per_device = {name: n for name, n in spec.switches}
    ports_per_device.update({name: 1 for name in spec.endpoints})
    port_reads = sum(ports_per_device.values())
    # Each link contributes two directed arcs; each device other than
    # the FM host consumes one arc as its (single) ingress when first
    # discovered; re-discoveries through remaining arcs cost one
    # general read each.  The FM endpoint adds its own general read.
    arcs = 2 * len(spec.links)
    devices = spec.total_devices
    general_reads = 1 + (arcs - (devices - 1))
    return port_reads + general_reads
