"""Live profiling of the FM implementation (the Fig. 4 methodology).

The paper obtained its FM/device packet-processing times "by using
profiling techniques, assuming a software implementation for the
management entities" on a 3 GHz Pentium 4.  This module reproduces the
*methodology* against this repository's own FM implementation: it runs
a discovery and wall-clock-profiles every invocation of the FM's
management-packet handler with :func:`time.perf_counter`.

The measured values characterize the Python implementation on the
host running the tests (they are *not* fed back into the simulation,
whose calibrated :class:`~repro.manager.timing.ProcessingTimeModel`
matches Fig. 4's published magnitudes); what should and does survive
the change of hardware and language is Fig. 4's *shape* — the Parallel
handler is the simplest and therefore cheapest per packet, the Serial
Packet machinery the most expensive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..experiments.runner import build_simulation, run_until_ready
from ..manager.timing import ALGORITHMS, ProcessingTimeModel
from ..topology.spec import TopologySpec


@dataclass
class ProfiledTiming:
    """Wall-clock cost of the FM handler during one discovery."""

    algorithm: str
    samples: int
    total_seconds: float
    mean_seconds: float
    max_seconds: float

    def asdict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "samples": self.samples,
            "mean_us": self.mean_seconds * 1e6,
            "max_us": self.max_seconds * 1e6,
        }


def profile_fm_processing(
    spec: TopologySpec,
    algorithm: str,
    timing: Optional[ProcessingTimeModel] = None,
) -> ProfiledTiming:
    """Run one discovery, wall-clock-profiling the FM's packet handler."""
    setup = build_simulation(spec, algorithm=algorithm, timing=timing,
                             auto_start=False)
    fm = setup.fm
    durations: List[float] = []
    original = fm.handle_management_packet

    def profiled(packet, port):
        start = time.perf_counter()
        try:
            return original(packet, port)
        finally:
            durations.append(time.perf_counter() - start)

    fm.handle_management_packet = profiled
    fm.start_discovery()
    run_until_ready(setup)

    if not durations:
        raise RuntimeError("the FM processed no packets")
    return ProfiledTiming(
        algorithm=algorithm,
        samples=len(durations),
        total_seconds=sum(durations),
        mean_seconds=sum(durations) / len(durations),
        max_seconds=max(durations),
    )


def profile_all_algorithms(
    spec: TopologySpec,
    repeats: int = 1,
) -> Dict[str, ProfiledTiming]:
    """Profile every algorithm on ``spec`` (best mean over repeats)."""
    results: Dict[str, ProfiledTiming] = {}
    for algorithm in ALGORITHMS:
        best: Optional[ProfiledTiming] = None
        for _ in range(max(1, repeats)):
            candidate = profile_fm_processing(spec, algorithm)
            if best is None or candidate.mean_seconds < best.mean_seconds:
                best = candidate
        results[algorithm] = best
    return results
