"""Analytical models and profiling (paper Fig. 7(b), Fig. 4)."""

from .model import PipelineModel, expected_packets
from .profiling import ProfiledTiming, profile_all_algorithms, profile_fm_processing

__all__ = [
    "PipelineModel",
    "ProfiledTiming",
    "expected_packets",
    "profile_all_algorithms",
    "profile_fm_processing",
]
