"""2-D mesh topologies.

The paper's meshes use 16-port switches arranged in a rows x cols grid
with one endpoint attached to every switch (Table 1: equal switch and
endpoint counts).  Switch port assignment::

    port 0: north   port 1: east   port 2: south   port 3: west
    port 4: local endpoint
"""

from __future__ import annotations

from .spec import TopologySpec

PORT_NORTH = 0
PORT_EAST = 1
PORT_SOUTH = 2
PORT_WEST = 3
PORT_ENDPOINT = 4


def switch_name(row: int, col: int) -> str:
    return f"sw_{row}_{col}"


def endpoint_name(row: int, col: int) -> str:
    return f"ep_{row}_{col}"


def make_mesh(rows: int, cols: int, switch_ports: int = 16) -> TopologySpec:
    """Build a ``rows x cols`` mesh specification."""
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be positive")
    if switch_ports < 5:
        raise ValueError("mesh switches need at least 5 ports")
    spec = TopologySpec(name=f"{rows}x{cols} mesh", family="mesh")
    for r in range(rows):
        for c in range(cols):
            spec.switches.append((switch_name(r, c), switch_ports))
            spec.endpoints.append(endpoint_name(r, c))
            spec.links.append(
                (endpoint_name(r, c), 0, switch_name(r, c), PORT_ENDPOINT)
            )
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:  # east neighbour
                spec.links.append(
                    (switch_name(r, c), PORT_EAST,
                     switch_name(r, c + 1), PORT_WEST)
                )
            if r + 1 < rows:  # south neighbour
                spec.links.append(
                    (switch_name(r, c), PORT_SOUTH,
                     switch_name(r + 1, c), PORT_NORTH)
                )
    spec.fm_host = endpoint_name(0, 0)
    spec.validate()
    return spec
