"""2-D torus topologies: meshes with wrap-around rings in both axes.

Port assignment matches :mod:`repro.topology.mesh` (north/east/south/
west plus the endpoint port), with the wrap links closing each row and
column into rings.
"""

from __future__ import annotations

from .mesh import (
    PORT_EAST,
    PORT_ENDPOINT,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
    endpoint_name,
    switch_name,
)
from .spec import TopologySpec


def make_torus(rows: int, cols: int, switch_ports: int = 16) -> TopologySpec:
    """Build a ``rows x cols`` torus specification.

    A dimension of size 2 would create a double link between the same
    pair of switches (the mesh link plus the wrap link); since each is
    wired to distinct ports that is legal, but sizes of 1 are rejected
    (self-links are not).
    """
    if rows < 2 or cols < 2:
        raise ValueError("torus dimensions must be at least 2")
    if switch_ports < 5:
        raise ValueError("torus switches need at least 5 ports")
    spec = TopologySpec(name=f"{rows}x{cols} torus", family="torus")
    for r in range(rows):
        for c in range(cols):
            spec.switches.append((switch_name(r, c), switch_ports))
            spec.endpoints.append(endpoint_name(r, c))
            spec.links.append(
                (endpoint_name(r, c), 0, switch_name(r, c), PORT_ENDPOINT)
            )
    for r in range(rows):
        for c in range(cols):
            # East links close each row into a ring.
            spec.links.append(
                (switch_name(r, c), PORT_EAST,
                 switch_name(r, (c + 1) % cols), PORT_WEST)
            )
            # South links close each column into a ring.
            spec.links.append(
                (switch_name(r, c), PORT_SOUTH,
                 switch_name((r + 1) % rows, c), PORT_NORTH)
            )
    spec.fm_host = endpoint_name(0, 0)
    spec.validate()
    return spec
