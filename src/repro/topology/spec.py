"""Declarative topology specifications.

A :class:`TopologySpec` lists devices and links abstractly; calling
:meth:`TopologySpec.build` instantiates them into a live
:class:`~repro.fabric.fabric.Fabric`.  Generators for the paper's
topology families live in the sibling modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..fabric.fabric import Fabric
from ..fabric.params import DEFAULT_PARAMS, FabricParams
from ..sim.core import Environment


@dataclass
class TopologySpec:
    """An abstract fabric topology.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"8x8 mesh"``).
    switches:
        ``(name, nports)`` pairs.
    endpoints:
        Endpoint names.
    links:
        ``(device_a, port_a, device_b, port_b)`` tuples.
    fm_host:
        The endpoint that hosts the primary fabric manager by default.
    family:
        Topology family tag (``mesh``, ``torus``, ``fattree``, ...).
    """

    name: str
    switches: List[Tuple[str, int]] = field(default_factory=list)
    endpoints: List[str] = field(default_factory=list)
    links: List[Tuple[str, int, str, int]] = field(default_factory=list)
    fm_host: Optional[str] = None
    family: str = "custom"

    # -- size accounting (Table 1 columns) --------------------------------
    @property
    def num_switches(self) -> int:
        return len(self.switches)

    @property
    def num_endpoints(self) -> int:
        return len(self.endpoints)

    @property
    def total_devices(self) -> int:
        """The paper's "Total Devices" column (switches + endpoints)."""
        return self.num_switches + self.num_endpoints

    def validate(self) -> None:
        """Check the specification is internally consistent."""
        names = [n for n, _ in self.switches] + list(self.endpoints)
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate device names")
        ports = {name: nports for name, nports in self.switches}
        ports.update({name: 1 for name in self.endpoints})
        used = set()
        for a, ap, b, bp in self.links:
            for dev, port in ((a, ap), (b, bp)):
                if dev not in ports:
                    raise ValueError(f"{self.name}: unknown device {dev!r}")
                if not 0 <= port < ports[dev]:
                    raise ValueError(
                        f"{self.name}: port {port} out of range on {dev!r}"
                    )
                if (dev, port) in used:
                    raise ValueError(
                        f"{self.name}: port {dev}.{port} wired twice"
                    )
                used.add((dev, port))
        if self.fm_host is not None and self.fm_host not in self.endpoints:
            raise ValueError(
                f"{self.name}: fm_host {self.fm_host!r} is not an endpoint"
            )

    def build(self, env: Environment,
              params: FabricParams = DEFAULT_PARAMS) -> Fabric:
        """Instantiate the specification into a fabric (not powered up)."""
        self.validate()
        fabric = Fabric(env, params)
        for name, nports in self.switches:
            fabric.add_switch(name, nports=nports)
        for name in self.endpoints:
            fabric.add_endpoint(name)
        for a, ap, b, bp in self.links:
            fabric.connect(a, ap, b, bp)
        return fabric

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<TopologySpec {self.name!r}: {self.num_switches} switches, "
            f"{self.num_endpoints} endpoints>"
        )
