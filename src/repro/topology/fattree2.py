"""Auto-designed two-layer fat-trees (leaf-spine).

Following Solnushkin's automated design approach (PAPERS.md, arXiv
1301.6179): given a number of compute endpoints, choose the edge
switch's split between ``d`` down-ports (endpoints) and ``u``
up-ports (one per core switch) so the design fits the port budget,
optionally with a blocking factor ``b`` (``u = ceil(d / b)``; ``b = 1``
is full bisection).  Every core switch connects to every edge switch,
so a core's radix equals the edge-switch count.

With ``switch_ports`` unspecified the designer picks the down-degree
that minimises the total switch count (the dominant cost term in
Solnushkin's model) subject to the baseline capability's port-block
budget; ``fattree2-1024`` resolves to 32 edge and 32 core switches of
radix 64.
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

from ..capability.baseline import MAX_PORT_BLOCKS
from .spec import TopologySpec

#: Shape of a two-layer fat-tree spec's name: the endpoint count, an
#: optional explicit edge-switch port count, and an optional blocking
#: factor.  Auto-designed specs record only the endpoint count — the
#: design rule is deterministic, so the name stays lossless.
_NAME_RE = re.compile(r"^fattree2-(\d+)(?:m(\d+))?(?:b(\d+))?$")


def fat_tree2_name(num_endpoints: int, switch_ports: Optional[int] = None,
                   blocking: int = 1) -> str:
    """The lossless canonical name of a two-layer fat-tree spec."""
    name = f"fattree2-{num_endpoints}"
    if switch_ports is not None:
        name += f"m{switch_ports}"
    if blocking != 1:
        name += f"b{blocking}"
    return name


def parse_fat_tree2_name(
        name: str) -> Optional[Tuple[int, Optional[int], int]]:
    """``(num_endpoints, switch_ports, blocking)`` recorded in a
    two-layer fat-tree spec's name, or ``None`` if the name is not
    one.  ``switch_ports`` is ``None`` for auto-designed specs."""
    match = _NAME_RE.match(name)
    if match is None:
        return None
    n, m, b = match.groups()
    return int(n), int(m) if m is not None else None, \
        int(b) if b is not None else 1


def _design(num_endpoints: int, switch_ports: Optional[int],
            blocking: int) -> Tuple[int, int]:
    """Choose the edge switch's ``(down, up)`` port split."""
    n, b = num_endpoints, blocking
    if switch_ports is None:
        # Auto-design: minimise edge + core switch count subject to the
        # core-radix budget (a core needs one port per edge switch).
        best = None
        for down in range(1, MAX_PORT_BLOCKS + 1):
            up = -(-down // b)
            if down + up > MAX_PORT_BLOCKS:
                break
            edges = -(-n // down)
            if edges > MAX_PORT_BLOCKS:
                continue
            cost = edges + up
            if best is None or cost < best[0]:
                best = (cost, down, up)
        if best is None:
            raise ValueError(
                f"no two-layer fat-tree for {n} endpoints fits "
                f"{MAX_PORT_BLOCKS}-port switches"
            )
        return best[1], best[2]
    m = switch_ports
    if m < 2:
        raise ValueError("fat-tree edge switches need at least 2 ports")
    if m > MAX_PORT_BLOCKS:
        raise ValueError(
            f"switch_ports {m} over the {MAX_PORT_BLOCKS}-port "
            f"baseline capability limit"
        )
    # Largest down-degree whose matching up-degree still fits.
    down = max(
        (d for d in range(1, m) if d + -(-d // b) <= m),
        default=0,
    )
    if down == 0:
        raise ValueError(f"no {m}-port edge split fits blocking {b}")
    return down, -(-down // b)


def make_fat_tree2(num_endpoints: int, switch_ports: Optional[int] = None,
                   blocking: int = 1) -> TopologySpec:
    """Build a two-layer fat-tree for ``num_endpoints`` endpoints.

    ``switch_ports`` fixes the edge-switch radix (``None`` auto-designs
    it); ``blocking`` is the oversubscription factor (1 = full
    bisection).  Edge switch ``i`` carries endpoints ``ep{i*d}`` ..
    on its first ``d`` ports and one up-link per core switch on the
    rest; core ``c`` reaches edge ``i`` on its port ``i``.
    """
    n, b = num_endpoints, blocking
    if n < 2:
        raise ValueError("a fat-tree needs at least 2 endpoints")
    if b < 1:
        raise ValueError("blocking factor must be at least 1")
    down, up = _design(n, switch_ports, b)
    edges = -(-n // down)
    if edges > MAX_PORT_BLOCKS:
        raise ValueError(
            f"fattree2-{n}: {edges} edge switches exceed a core's "
            f"{MAX_PORT_BLOCKS}-port baseline capability limit"
        )

    spec = TopologySpec(
        name=fat_tree2_name(n, switch_ports, b),
        family="fattree2",
    )
    for i in range(edges):
        spec.switches.append((f"edge{i}", down + up))
    for c in range(up):
        spec.switches.append((f"core{c}", edges))
    for e in range(n):
        ep = f"ep{e}"
        spec.endpoints.append(ep)
        spec.links.append((ep, 0, f"edge{e // down}", e % down))
    for i in range(edges):
        for c in range(up):
            spec.links.append((f"edge{i}", down + c, f"core{c}", i))

    spec.fm_host = "ep0"
    spec.validate()
    return spec
