"""Topology generators: the paper's Table 1 families plus extras."""

from .fattree import make_fattree
from .irregular import make_irregular, parse_irregular_name
from .mesh import make_mesh
from .spec import TopologySpec
from .table1 import (
    ALIASES,
    TABLE1_NAMES,
    canonical_name,
    table1_rows,
    table1_suite,
    table1_topology,
)
from .torus import make_torus

__all__ = [
    "ALIASES",
    "TABLE1_NAMES",
    "TopologySpec",
    "canonical_name",
    "make_fattree",
    "make_irregular",
    "make_mesh",
    "make_torus",
    "parse_irregular_name",
    "table1_rows",
    "table1_suite",
    "table1_topology",
]
