"""Topology generators: the paper's Table 1 families plus extras."""

from .dragonfly import dragonfly_name, make_dragonfly, parse_dragonfly_name
from .fattree import make_fattree
from .fattree2 import fat_tree2_name, make_fat_tree2, parse_fat_tree2_name
from .irregular import make_irregular, parse_irregular_name
from .mesh import make_mesh
from .registry import (
    GENERATOR_FAMILIES,
    canonical_topology_name,
    resolve_topology,
)
from .spec import TopologySpec
from .table1 import (
    ALIASES,
    TABLE1_NAMES,
    canonical_name,
    table1_rows,
    table1_suite,
    table1_topology,
)
from .torus import make_torus

__all__ = [
    "ALIASES",
    "GENERATOR_FAMILIES",
    "TABLE1_NAMES",
    "TopologySpec",
    "canonical_name",
    "canonical_topology_name",
    "dragonfly_name",
    "fat_tree2_name",
    "make_dragonfly",
    "make_fat_tree2",
    "make_fattree",
    "make_irregular",
    "make_mesh",
    "make_torus",
    "parse_dragonfly_name",
    "parse_fat_tree2_name",
    "parse_irregular_name",
    "resolve_topology",
    "table1_rows",
    "table1_suite",
    "table1_topology",
]
