"""Unified topology-name resolution across every generator family.

The CLI, the :class:`~repro.experiments.scenario.Scenario` layer, and
the fuzzer all accept a topology *name*.  Historically that meant a
Table 1 name or alias; the mega-scale families (Dragonfly, two-layer
fat-trees, irregulars) instead use lossless parseable names that
record their generator arguments.  This module resolves any of them:

* Table 1 names and aliases (``"8x8 mesh"``, ``mesh64``, ``fattree4-2``)
* Swapped Dragonflies: ``dragonfly-k{K}m{M}[e{E}]``
* two-layer fat-trees: ``fattree2-{N}[m{P}][b{B}]``
* irregulars: ``irregular-{N}+{E} (seed={S})``
"""

from __future__ import annotations

from typing import List

from .dragonfly import dragonfly_name, make_dragonfly, parse_dragonfly_name
from .fattree2 import fat_tree2_name, make_fat_tree2, parse_fat_tree2_name
from .irregular import make_irregular, parse_irregular_name
from .spec import TopologySpec
from .table1 import ALIASES, TABLE1_NAMES, canonical_name, table1_topology

#: One usage line per parseable generator family, for ``repro list``.
GENERATOR_FAMILIES: List[str] = [
    "dragonfly-k{K}m{M}[e{E}]   Swapped Dragonfly D3(K,M): M groups of K"
    " routers, E endpoints each (e.g. dragonfly-k4m8, dragonfly-k16m125e4)",
    "fattree2-{N}[m{P}][b{B}]   two-layer fat-tree for N endpoints,"
    " optional edge radix P and blocking factor B (e.g. fattree2-1024)",
    "irregular-{N}+{E} (seed={S})   random connected switch graph",
]


def canonical_topology_name(name: str) -> str:
    """Resolve any known topology name or alias to its canonical form.

    Raises :class:`ValueError` for names no family recognises.
    """
    stripped = name.strip().lower()
    parsed = parse_dragonfly_name(stripped)
    if parsed is not None:
        return dragonfly_name(*parsed)
    parsed = parse_fat_tree2_name(stripped)
    if parsed is not None:
        return fat_tree2_name(*parsed)
    if parse_irregular_name(name.strip()) is not None:
        return name.strip()
    try:
        return canonical_name(name)
    except ValueError:
        raise ValueError(
            f"unknown topology {name!r}; choose a Table 1 name "
            f"{TABLE1_NAMES}, an alias {sorted(ALIASES)}, or a "
            f"generator-family name (see 'repro list')"
        ) from None


def resolve_topology(name: str) -> TopologySpec:
    """Build the :class:`TopologySpec` any known name describes."""
    canonical = canonical_topology_name(name)
    parsed = parse_dragonfly_name(canonical)
    if parsed is not None:
        return make_dragonfly(*parsed)
    parsed = parse_fat_tree2_name(canonical)
    if parsed is not None:
        return make_fat_tree2(*parsed)
    parsed = parse_irregular_name(canonical)
    if parsed is not None:
        num, extra, seed = parsed
        return make_irregular(num, extra_links=extra, seed=seed)
    return table1_topology(canonical)


def topology_catalog() -> dict:
    """Every registered name, for ``repro topology`` and the service.

    Returns a JSON-ready document: the Table 1 names (with their
    shell-friendly aliases) and the usage line of each parameterised
    generator family.
    """
    reverse = {name: alias for alias, name in ALIASES.items()}
    return {
        "table1": [
            {"name": name, "alias": reverse.get(name)}
            for name in TABLE1_NAMES
        ],
        "families": list(GENERATOR_FAMILIES),
    }


def describe_topology(name: str) -> dict:
    """Size accounting for any resolvable topology name.

    Builds the spec (cheap for Table 1, proportional to device count
    for the generator families) and reports its device/switch/
    endpoint/link counts — the ``repro topology NAME`` and service
    ``topologies`` payload.
    """
    spec = resolve_topology(name)
    return {
        "name": spec.name,
        "canonical": canonical_topology_name(name),
        "family": spec.family,
        "devices": spec.total_devices,
        "switches": spec.num_switches,
        "endpoints": spec.num_endpoints,
        "links": len(spec.links),
        "fm_host": spec.fm_host or (
            spec.endpoints[0] if spec.endpoints else None
        ),
    }
