"""Random irregular topologies.

Not part of the paper's Table 1, but used by the test suite to check
that the discovery algorithms make no regularity assumptions: a random
connected switch graph with bounded degree, one endpoint per switch.
"""

from __future__ import annotations

import random
import re
from typing import Optional, Tuple

from .spec import TopologySpec

#: Port reserved for the local endpoint on every switch.
ENDPOINT_PORT = 0

#: Shape of an irregular spec's name; the recorded ``(num_switches,
#: extra_links, seed)`` make every spec regenerable from its name
#: alone (the fuzzer's shrinker relies on this to rebuild smaller
#: variants of a failing topology).
_NAME_RE = re.compile(
    r"^irregular-(\d+)\+(\d+) \(seed=(-?\d+)\)$"
)


def parse_irregular_name(name: str) -> Optional[Tuple[int, int, int]]:
    """``(num_switches, extra_links, seed)`` recorded in an irregular
    spec's name, or ``None`` if the name is not one."""
    match = _NAME_RE.match(name)
    if match is None:
        return None
    return tuple(int(group) for group in match.groups())


def make_irregular(num_switches: int, extra_links: int = 0,
                   switch_ports: int = 16,
                   seed: int = 0) -> TopologySpec:
    """Build a random connected topology.

    A random spanning tree guarantees connectivity; ``extra_links``
    additional random links add cycles and redundant paths (the
    situations where duplicate-detection via DSN matters).

    ``seed`` must be an explicit integer: the generated spec records
    it in its name, so any irregular topology — including one embedded
    in an archived :class:`~repro.experiments.scenario.Scenario` — is
    replayable exactly.
    """
    if num_switches < 1:
        raise ValueError("need at least one switch")
    if switch_ports < 4:
        raise ValueError("irregular switches need at least 4 ports")
    if seed is None or not isinstance(seed, int):
        raise ValueError(
            "make_irregular needs an explicit integer seed: the spec "
            "records it so the topology is reproducible"
        )
    rng = random.Random(seed)
    spec = TopologySpec(
        name=f"irregular-{num_switches}+{extra_links} (seed={seed})",
        family="irregular",
    )
    # Ports are always taken in increasing index order, so a cursor per
    # switch suffices — no materialized free-port lists (they dominated
    # the generator's memory at large ``num_switches``).
    next_port = {}
    for i in range(num_switches):
        name = f"sw{i}"
        spec.switches.append((name, switch_ports))
        spec.endpoints.append(f"ep{i}")
        spec.links.append((f"ep{i}", 0, name, ENDPOINT_PORT))
        next_port[name] = 1

    def has_port(switch: str) -> bool:
        return next_port[switch] < switch_ports

    def take_port(switch: str) -> Optional[int]:
        if not has_port(switch):
            return None
        port = next_port[switch]
        next_port[switch] = port + 1
        return port

    # Random spanning tree: connect each new switch to a random earlier
    # one (random recursive tree).
    for i in range(1, num_switches):
        a = f"sw{i}"
        b = f"sw{rng.randrange(i)}"
        pa, pb = take_port(a), take_port(b)
        if pa is None or pb is None:
            raise ValueError("ran out of switch ports building the tree")
        spec.links.append((a, pa, b, pb))

    # Extra random links (skipped when ports run out).
    added = 0
    attempts = 0
    wired = {tuple(sorted((a, b))) for a, _, b, _ in spec.links}
    while added < extra_links and attempts < 50 * (extra_links + 1):
        attempts += 1
        i, j = rng.randrange(num_switches), rng.randrange(num_switches)
        if i == j:
            continue
        a, b = f"sw{i}", f"sw{j}"
        if tuple(sorted((a, b))) in wired:
            continue
        if not has_port(a) or not has_port(b):
            continue
        spec.links.append((a, take_port(a), b, take_port(b)))
        wired.add(tuple(sorted((a, b))))
        added += 1

    spec.fm_host = "ep0"
    spec.validate()
    return spec
