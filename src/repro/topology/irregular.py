"""Random irregular topologies.

Not part of the paper's Table 1, but used by the test suite to check
that the discovery algorithms make no regularity assumptions: a random
connected switch graph with bounded degree, one endpoint per switch.
"""

from __future__ import annotations

import random
from typing import Optional

from .spec import TopologySpec

#: Port reserved for the local endpoint on every switch.
ENDPOINT_PORT = 0


def make_irregular(num_switches: int, extra_links: int = 0,
                   switch_ports: int = 16,
                   seed: Optional[int] = None) -> TopologySpec:
    """Build a random connected topology.

    A random spanning tree guarantees connectivity; ``extra_links``
    additional random links add cycles and redundant paths (the
    situations where duplicate-detection via DSN matters).
    """
    if num_switches < 1:
        raise ValueError("need at least one switch")
    if switch_ports < 4:
        raise ValueError("irregular switches need at least 4 ports")
    rng = random.Random(seed)
    spec = TopologySpec(
        name=f"irregular-{num_switches}+{extra_links} (seed={seed})",
        family="irregular",
    )
    free_ports = {}
    for i in range(num_switches):
        name = f"sw{i}"
        spec.switches.append((name, switch_ports))
        spec.endpoints.append(f"ep{i}")
        spec.links.append((f"ep{i}", 0, name, ENDPOINT_PORT))
        free_ports[name] = list(range(1, switch_ports))

    def take_port(switch: str) -> Optional[int]:
        if not free_ports[switch]:
            return None
        return free_ports[switch].pop(0)

    # Random spanning tree: connect each new switch to a random earlier
    # one (random recursive tree).
    for i in range(1, num_switches):
        a = f"sw{i}"
        b = f"sw{rng.randrange(i)}"
        pa, pb = take_port(a), take_port(b)
        if pa is None or pb is None:
            raise ValueError("ran out of switch ports building the tree")
        spec.links.append((a, pa, b, pb))

    # Extra random links (skipped when ports run out).
    added = 0
    attempts = 0
    wired = {tuple(sorted((a, b))) for a, _, b, _ in spec.links}
    while added < extra_links and attempts < 50 * (extra_links + 1):
        attempts += 1
        i, j = rng.randrange(num_switches), rng.randrange(num_switches)
        if i == j:
            continue
        a, b = f"sw{i}", f"sw{j}"
        if tuple(sorted((a, b))) in wired:
            continue
        if not free_ports[a] or not free_ports[b]:
            continue
        spec.links.append((a, take_port(a), b, take_port(b)))
        wired.add(tuple(sorted((a, b))))
        added += 1

    spec.fm_host = "ep0"
    spec.validate()
    return spec
