"""Swapped Dragonfly topologies (``D3(K, M)``).

The Swapped Dragonfly (PAPERS.md, arXiv 2202.01843) is a diameter-3,
linearly scalable network: ``M`` groups of ``K`` routers each, every
group internally a complete graph, and every pair of groups joined by
exactly one global link.  The global link for group pair ``{a, b}``
lands on router ``(a + b) mod K`` of both groups, which spreads the
global ports evenly — each router carries roughly ``(M - 1) / K``
global links.  The group-level graph is complete, so the switch-graph
diameter is at most 3 (local hop, global hop, local hop).

Because a router's radix is ``(K - 1)`` local ports plus about
``(M - 1) / K`` global ports plus its endpoint ports, the family
scales to tens of thousands of devices within the baseline
capability's port-block budget — ``dragonfly-k16m125e4`` is exactly
10,000 devices of radix 27.
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

from ..capability.baseline import MAX_PORT_BLOCKS
from .spec import TopologySpec

#: Shape of a Dragonfly spec's name.  The recorded ``(K, M,
#: endpoints_per_switch)`` make every spec regenerable from its name
#: alone, mirroring :func:`~repro.topology.irregular.parse_irregular_name`.
_NAME_RE = re.compile(r"^dragonfly-k(\d+)m(\d+)(?:e(\d+))?$")


def dragonfly_name(routers_per_group: int, num_groups: int,
                   endpoints_per_switch: int = 1) -> str:
    """The lossless canonical name of a Dragonfly spec."""
    name = f"dragonfly-k{routers_per_group}m{num_groups}"
    if endpoints_per_switch != 1:
        name += f"e{endpoints_per_switch}"
    return name


def parse_dragonfly_name(name: str) -> Optional[Tuple[int, int, int]]:
    """``(K, M, endpoints_per_switch)`` recorded in a Dragonfly spec's
    name, or ``None`` if the name is not one."""
    match = _NAME_RE.match(name)
    if match is None:
        return None
    k, m, e = match.groups()
    return int(k), int(m), int(e) if e is not None else 1


def make_dragonfly(routers_per_group: int, num_groups: int,
                   endpoints_per_switch: int = 1) -> TopologySpec:
    """Build a Swapped Dragonfly ``D3(K, M)``.

    ``routers_per_group`` (``K``) routers per group, ``num_groups``
    (``M``) groups.  Every group is a complete graph; group pair
    ``{a, b}`` is joined by one global link between router
    ``(a + b) mod K`` of each group.  Each router additionally carries
    ``endpoints_per_switch`` endpoints.
    """
    k, m, eps = routers_per_group, num_groups, endpoints_per_switch
    if k < 2:
        raise ValueError("dragonfly needs at least 2 routers per group")
    if m < 2:
        raise ValueError("dragonfly needs at least 2 groups")
    if eps < 1:
        raise ValueError("dragonfly needs at least 1 endpoint per switch")

    # Per-router port layout: endpoints first, then the K-1 local
    # ports, then the global ports in increasing peer-group order.
    local_base = eps
    global_base = eps + (k - 1)
    # Router r of group g serves every peer group b with
    # (g + b) mod K == r, so its global degree is |{b != g : b ≡ r - g
    # (mod K), 0 <= b < M}|.
    max_global = max(
        sum(1 for b in range(m) if b != g and (g + b) % k == r)
        for g in range(min(m, k)) for r in range(k)
    )
    nports = global_base + max_global
    if nports > MAX_PORT_BLOCKS:
        raise ValueError(
            f"dragonfly-k{k}m{m}e{eps} needs {nports}-port switches, "
            f"over the {MAX_PORT_BLOCKS}-port baseline capability limit"
        )

    spec = TopologySpec(
        name=dragonfly_name(k, m, eps),
        family="dragonfly",
    )
    for g in range(m):
        for r in range(k):
            sw = f"sw_{g}_{r}"
            spec.switches.append((sw, nports))
            for i in range(eps):
                ep = f"ep_{g}_{r}" if eps == 1 else f"ep_{g}_{r}_{i}"
                spec.endpoints.append(ep)
                spec.links.append((ep, 0, sw, i))

    # Local links: each group is a complete graph.  Router r reaches
    # router j on local port local_base + (j if j < r else j - 1).
    def local_port(r: int, j: int) -> int:
        return local_base + (j if j < r else j - 1)

    for g in range(m):
        for r in range(k):
            for j in range(r + 1, k):
                spec.links.append((
                    f"sw_{g}_{r}", local_port(r, j),
                    f"sw_{g}_{j}", local_port(j, r),
                ))

    # Global links: one per group pair, on router (a + b) mod K of
    # both sides.  Iterating pairs lexicographically hands each router
    # its global ports in increasing peer-group order.
    next_global = {}
    for a in range(m):
        for b in range(a + 1, m):
            r = (a + b) % k
            ends = []
            for g in (a, b):
                sw = f"sw_{g}_{r}"
                port = next_global.get(sw, global_base)
                next_global[sw] = port + 1
                ends.append((sw, port))
            (sa, pa), (sb, pb) = ends
            spec.links.append((sa, pa, sb, pb))

    spec.fm_host = spec.endpoints[0]
    spec.validate()
    return spec
