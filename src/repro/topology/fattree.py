"""Fixed-arity fat-trees ("m-port n-trees").

The paper builds its fat-trees "by using the methodology proposed in
[5]" (Lin, Chung, Huang — fat-tree-based InfiniBand networks), i.e.
the classic k-ary n-tree construction with k = m/2, where *m* is the
switch port count:

* ``n`` levels of switches, ``k**(n-1)`` switches per level, each with
  ``m = 2k`` ports (``k`` down, ``k`` up; the top level's up ports are
  unused);
* ``k**n`` endpoints attached below the leaf level.

A switch is identified by ``(level, w)`` with ``w`` a word of ``n-1``
digits in base ``k``; switches ``(l, w)`` and ``(l+1, w')`` are linked
iff ``w`` and ``w'`` agree in every digit except position ``l``.  An
endpoint with digits ``p[0..n-1]`` hangs off leaf switch
``w = p[0..n-2]`` at down port ``p[n-1]``.

Port assignment on every switch: ports ``0..k-1`` down, ``k..2k-1`` up.

Note on Table 1: the source text of the paper garbles the numeric
columns of Table 1; the counts produced by this construction
(4-port 2-tree: 4+4, 4-port 3-tree: 12+8, 4-port 4-tree: 32+16,
8-port 2-tree: 8+16 switches+endpoints) are the standard k-ary n-tree
sizes and preserve every trend the paper reports.
"""

from __future__ import annotations

from itertools import product
from typing import Tuple

from .spec import TopologySpec


def _word_name(word: Tuple[int, ...]) -> str:
    return "".join(str(d) for d in word)


def switch_name(level: int, word: Tuple[int, ...]) -> str:
    return f"sw_l{level}_{_word_name(word)}"


def endpoint_name(digits: Tuple[int, ...]) -> str:
    return f"ep_{_word_name(digits)}"


def make_fattree(ports: int, levels: int) -> TopologySpec:
    """Build an ``ports``-port ``levels``-tree specification."""
    if ports < 2 or ports % 2 != 0:
        raise ValueError("fat-tree switch port count must be even and >= 2")
    if levels < 1:
        raise ValueError("fat-tree needs at least one level")
    k = ports // 2
    spec = TopologySpec(
        name=f"{ports}-port {levels}-tree", family="fattree"
    )

    words = list(product(range(k), repeat=levels - 1))
    for level in range(levels):
        for word in words:
            spec.switches.append((switch_name(level, word), ports))

    # Endpoints below the leaf level.
    for digits in product(range(k), repeat=levels):
        word, down_port = digits[:-1], digits[-1]
        name = endpoint_name(digits)
        spec.endpoints.append(name)
        spec.links.append((name, 0, switch_name(0, word), down_port))

    # Inter-level links: (l, w) up-port x  <->  (l+1, w') down-port w[l],
    # where w' is w with digit l replaced by x.
    for level in range(levels - 1):
        for word in words:
            for x in range(k):
                upper = list(word)
                down_port = upper[level]
                upper[level] = x
                spec.links.append(
                    (
                        switch_name(level, word), k + x,
                        switch_name(level + 1, tuple(upper)), down_port,
                    )
                )

    spec.fm_host = spec.endpoints[0]
    spec.validate()
    return spec
