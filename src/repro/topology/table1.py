"""The paper's Table 1: the evaluated topology suite.

Meshes and tori from 3x3 up (10x10 torus largest), plus four
fixed-arity fat-trees.  Every mesh/torus switch carries one endpoint,
so switch and endpoint counts are equal for those families.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .fattree import make_fattree
from .mesh import make_mesh
from .spec import TopologySpec
from .torus import make_torus

#: Ordered names of the Table 1 topologies.
TABLE1_NAMES: List[str] = [
    "3x3 mesh",
    "3x3 torus",
    "4x4 mesh",
    "4x4 torus",
    "6x6 mesh",
    "6x6 torus",
    "8x8 mesh",
    "8x8 torus",
    "10x10 torus",
    "4-port 2-tree",
    "4-port 3-tree",
    "4-port 4-tree",
    "8-port 2-tree",
]

_BUILDERS: Dict[str, Callable[[], TopologySpec]] = {
    "3x3 mesh": lambda: make_mesh(3, 3),
    "3x3 torus": lambda: make_torus(3, 3),
    "4x4 mesh": lambda: make_mesh(4, 4),
    "4x4 torus": lambda: make_torus(4, 4),
    "6x6 mesh": lambda: make_mesh(6, 6),
    "6x6 torus": lambda: make_torus(6, 6),
    "8x8 mesh": lambda: make_mesh(8, 8),
    "8x8 torus": lambda: make_torus(8, 8),
    "10x10 torus": lambda: make_torus(10, 10),
    "4-port 2-tree": lambda: make_fattree(4, 2),
    "4-port 3-tree": lambda: make_fattree(4, 3),
    "4-port 4-tree": lambda: make_fattree(4, 4),
    "8-port 2-tree": lambda: make_fattree(8, 2),
}


#: Shell-friendly aliases (``mesh16`` == ``"4x4 mesh"``).  The number
#: is the switch count, matching how the paper's figures label the x
#: axis.
ALIASES: Dict[str, str] = {
    "mesh9": "3x3 mesh",
    "torus9": "3x3 torus",
    "mesh16": "4x4 mesh",
    "torus16": "4x4 torus",
    "mesh36": "6x6 mesh",
    "torus36": "6x6 torus",
    "mesh64": "8x8 mesh",
    "torus64": "8x8 torus",
    "torus100": "10x10 torus",
    "fattree4-2": "4-port 2-tree",
    "fattree4-3": "4-port 3-tree",
    "fattree4-4": "4-port 4-tree",
    "fattree8-2": "8-port 2-tree",
}


def canonical_name(name: str) -> str:
    """Resolve a topology name or alias to its Table 1 name.

    Raises :class:`ValueError` for anything that is neither.
    """
    resolved = ALIASES.get(name.strip().lower(), name)
    if resolved not in _BUILDERS:
        raise ValueError(
            f"unknown Table 1 topology {name!r}; "
            f"choose from {TABLE1_NAMES} "
            f"(or aliases {sorted(ALIASES)})"
        )
    return resolved


def table1_topology(name: str) -> TopologySpec:
    """Build one Table 1 topology by name (aliases accepted)."""
    return _BUILDERS[canonical_name(name)]()


def table1_suite() -> List[TopologySpec]:
    """Build every Table 1 topology, in table order."""
    return [table1_topology(name) for name in TABLE1_NAMES]


def table1_rows() -> List[dict]:
    """The Table 1 contents: name, switches, endpoints, total devices."""
    return [
        {
            "topology": spec.name,
            "switches": spec.num_switches,
            "endpoints": spec.num_endpoints,
            "total_devices": spec.total_devices,
        }
        for spec in table1_suite()
    ]
