"""Background application traffic.

The paper's results "have been obtained without considering application
traffic into the network.  This traffic scarcely influences on the
discovery time.  The reason is that, in ASI, the management and
notification packets have the higher priority when they are transmitted
through the fabric." (section 4.1)

This workload lets us *test* that claim instead of assuming it: every
endpoint injects Poisson traffic to uniformly random endpoints at a
configurable fraction of the link rate, on the application traffic
class (which maps to the low-priority VC).  The discovery benches then
compare discovery time with and without load.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..fabric.fabric import Fabric
from ..fabric.header import RouteHeader
from ..fabric.packet import PI_APPLICATION, Packet
from ..fabric.params import APPLICATION_TC
from ..routing.paths import fabric_endpoint_routes
from ..sim.monitor import Counter


class TrafficGenerator:
    """Poisson endpoint-to-endpoint application traffic."""

    def __init__(self, fabric: Fabric, load: float = 0.5,
                 packet_bytes: int = 256, seed: int = 0,
                 tc: int = APPLICATION_TC):
        if not 0 < load <= 1.0:
            raise ValueError("load must be in (0, 1]")
        if packet_bytes < 1:
            raise ValueError("packets need at least one byte")
        self.fabric = fabric
        self.env = fabric.env
        self.load = load
        self.packet_bytes = packet_bytes
        self.tc = tc
        self.rng = random.Random(seed)
        self.stats = Counter()
        self._running = False
        self._procs = []
        #: Per-source route tables computed from ground truth (the
        #: paths a real deployment would have received from the FM).
        self._routes: Dict[str, Dict[str, Tuple]] = {}

    @property
    def mean_interarrival(self) -> float:
        """Mean time between packets per source at the requested load."""
        wire = self.packet_bytes + self.fabric.params.framing_overhead + \
            16 + self.fabric.params.pcrc_bytes
        packet_time = self.fabric.params.tx_time(wire)
        return packet_time / self.load

    def start(self) -> None:
        """Begin injecting traffic from every active endpoint."""
        if self._running:
            raise RuntimeError("traffic generator already running")
        self._running = True
        for endpoint in self.fabric.endpoints():
            if not endpoint.active:
                continue
            routes = fabric_endpoint_routes(self.fabric, endpoint.name)
            if not routes:
                continue
            self._routes[endpoint.name] = routes
            self._procs.append(
                self.env.process(
                    self._source(endpoint),
                    name=f"traffic:{endpoint.name}",
                )
            )

    def stop(self) -> None:
        """Stop all sources (takes effect at their next arrival)."""
        self._running = False

    def _source(self, endpoint):
        routes = self._routes[endpoint.name]
        destinations = sorted(routes)
        while self._running and endpoint.active:
            yield self.env.timeout(
                self.rng.expovariate(1.0 / self.mean_interarrival)
            )
            if not self._running or not endpoint.active:
                return
            dst = self.rng.choice(destinations)
            pool, out_port = routes[dst]
            header = RouteHeader(
                pi=PI_APPLICATION, tc=self.tc,
                turn_pointer=pool.bits, turn_pool=pool.pool,
            )
            payload = bytes(self.packet_bytes)
            endpoint.inject(Packet(header=header, payload=payload),
                            port_index=out_port)
            self.stats.incr("packets_injected")
            self.stats.incr("bytes_injected", self.packet_bytes)

    def attach_sinks(self, entities) -> None:
        """Count application-packet deliveries at each endpoint.

        ``entities`` maps device names to their management entities;
        the sink uses the entity's zero-cost application handler slot.
        """

        def sink(packet, port):
            self.stats.incr("packets_delivered")

        for endpoint in self.fabric.endpoints():
            entity = entities.get(endpoint.name)
            if entity is not None:
                entity.app_handler = sink
