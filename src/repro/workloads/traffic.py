"""The data-plane traffic engine: configurable application flows.

The paper's results "have been obtained without considering application
traffic into the network.  This traffic scarcely influences on the
discovery time.  The reason is that, in ASI, the management and
notification packets have the higher priority when they are transmitted
through the fabric." (section 4.1)

This workload lets us *test* that claim instead of assuming it.  A
:class:`TrafficSpec` describes one fabric-wide application workload —
offered load, packet size, traffic class, arrival process, destination
pattern — and :class:`TrafficGenerator` realizes it as one flow process
per active endpoint:

* **arrival processes** — ``poisson`` (memoryless, the classic open
  model), ``constant`` (a fixed inter-arrival clock), ``bursty``
  (geometric on/off: back-to-back line-rate bursts separated by
  exponential silences, same long-run load);
* **destination patterns** — ``uniform`` (every packet draws a fresh
  destination), ``permutation`` (a fixed random derangement, each
  source hammering one partner), ``hotspot`` (a configurable fraction
  of all traffic converges on one victim endpoint);
* **traffic class** — the per-flow TC selects the VC through the
  fabric's ``tc_vc_map``, so traffic either rides the low-priority VC
  under strict-priority management (the ASI bypass arrangement) or
  contends head-to-head with management on a mixed mapping.

An offered load of 0 is a valid spec meaning "idle": the generator
schedules nothing and draws no random numbers, so a load-0 run is
bit-identical to one without a generator at all — the property the
golden determinism tests pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Tuple

from ..fabric.fabric import Fabric
from ..fabric.header import RouteHeader
from ..fabric.packet import PI_APPLICATION, Packet
from ..fabric.params import APPLICATION_TC
from ..routing.paths import fabric_endpoint_routes
from ..sim.monitor import Counter

#: Supported arrival processes.
ARRIVALS = ("poisson", "bursty", "constant")

#: Supported destination patterns.
PATTERNS = ("uniform", "permutation", "hotspot")

#: Schema tag embedded in every serialized spec.
TRAFFIC_SCHEMA = "repro/traffic/v1"


@dataclass(frozen=True)
class TrafficSpec:
    """A frozen, portable description of one application workload.

    Attributes
    ----------
    load:
        Offered load per source endpoint as a fraction of the link
        rate, in ``[0, 1]``.  ``0`` disables the workload entirely (no
        processes, no RNG draws).
    packet_bytes:
        Application payload size per packet.
    tc:
        Traffic class (0-7) stamped on every packet; the fabric's
        ``tc_vc_map`` turns this into a VC, which is where the QoS
        experiments bite (``APPLICATION_TC`` rides the low-priority VC
        on the default bypass mapping).
    arrival:
        Arrival process: ``poisson``, ``bursty``, or ``constant``.
    pattern:
        Destination pattern: ``uniform``, ``permutation``, or
        ``hotspot``.
    burst_length:
        Mean packets per burst for the ``bursty`` process (geometric).
    hotspot_fraction:
        For ``hotspot``: the probability a packet targets the hotspot
        endpoint instead of a uniform draw.
    """

    load: float = 0.5
    packet_bytes: int = 256
    tc: int = APPLICATION_TC
    arrival: str = "poisson"
    pattern: str = "uniform"
    burst_length: float = 8.0
    hotspot_fraction: float = 0.5

    def __post_init__(self):
        if not 0 <= self.load <= 1.0:
            raise ValueError("load must be in [0, 1]")
        if self.packet_bytes < 1:
            raise ValueError("packets need at least one byte")
        if not 0 <= self.tc <= 7:
            raise ValueError("tc must be a traffic class in 0..7")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r} "
                f"(expected one of {ARRIVALS})"
            )
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"unknown destination pattern {self.pattern!r} "
                f"(expected one of {PATTERNS})"
            )
        if self.burst_length < 1:
            raise ValueError("mean burst length must be at least 1 packet")
        if not 0 < self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot fraction must be in (0, 1]")

    @property
    def enabled(self) -> bool:
        """Whether this spec injects any traffic at all."""
        return self.load > 0

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-ready rendering (every field, always)."""
        document = {"schema": TRAFFIC_SCHEMA}
        for spec_field in fields(self):
            document[spec_field.name] = getattr(self, spec_field.name)
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "TrafficSpec":
        """Rebuild from :meth:`to_dict` output; unknown keys raise."""
        kwargs = dict(document)
        schema = kwargs.pop("schema", TRAFFIC_SCHEMA)
        if schema != TRAFFIC_SCHEMA:
            raise ValueError(
                f"expected schema {TRAFFIC_SCHEMA!r}, got {schema!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise ValueError(
                f"unknown TrafficSpec fields: {', '.join(unknown)}"
            )
        return cls(**kwargs)


class TrafficGenerator:
    """Realize a :class:`TrafficSpec` as per-endpoint flow processes.

    Implements the :class:`~repro.workloads.base.Workload` lifecycle
    (``start``/``stop``/``stats``/``describe``).  Legacy keyword
    construction (``TrafficGenerator(fabric, load=0.4, seed=7)``) still
    works: any :class:`TrafficSpec` field passed as a keyword overrides
    the given (or default) spec.

    Routes come from ground truth (:func:`fabric_endpoint_routes` —
    the turn pools a real deployment would have received from the FM),
    so application traffic flows from time zero, while discovery is
    still walking the fabric.
    """

    def __init__(self, fabric: Fabric, spec: Optional[TrafficSpec] = None,
                 seed: int = 0, **overrides):
        base = spec if spec is not None else TrafficSpec()
        self.spec = replace(base, **overrides) if overrides else base
        self.fabric = fabric
        self.env = fabric.env
        self.seed = seed
        self.rng = random.Random(seed)
        self.counters = Counter()
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._running = False
        self._procs = []
        #: Per-source route tables computed from ground truth.
        self._routes: Dict[str, Dict[str, Tuple]] = {}
        #: pattern="permutation": fixed partner per source.
        self._partners: Dict[str, str] = {}
        #: pattern="hotspot": the victim endpoint.
        self._hotspot: Optional[str] = None

    # -- convenience views ---------------------------------------------------
    @property
    def load(self) -> float:
        return self.spec.load

    @property
    def packet_bytes(self) -> int:
        return self.spec.packet_bytes

    @property
    def tc(self) -> int:
        return self.spec.tc

    @property
    def packet_time(self) -> float:
        """Serialization time of one application packet on the wire."""
        wire = self.spec.packet_bytes + self.fabric.params.framing_overhead \
            + 16 + self.fabric.params.pcrc_bytes
        return self.fabric.params.tx_time(wire)

    @property
    def mean_interarrival(self) -> float:
        """Mean time between packets per source at the requested load."""
        if not self.spec.enabled:
            raise ValueError("idle spec (load=0) has no arrival rate")
        return self.packet_time / self.spec.load

    @property
    def running(self) -> bool:
        """Whether sources are currently injecting packets."""
        return self._running

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Begin injecting traffic from every active endpoint.

        With ``load=0`` this is a no-op: no process is scheduled and no
        random number is drawn, so the simulation's event stream is
        bit-identical to a run without a generator.
        """
        if self._running:
            raise RuntimeError("traffic generator already running")
        if not self.spec.enabled:
            return
        self._running = True
        self.started_at = self.env.now
        sources: List = []
        for endpoint in self.fabric.endpoints():
            if not endpoint.active:
                continue
            routes = fabric_endpoint_routes(self.fabric, endpoint.name)
            if not routes:
                continue
            self._routes[endpoint.name] = routes
            sources.append(endpoint)
        self._assign_pattern([ep.name for ep in sources])
        for endpoint in sources:
            self._procs.append(
                self.env.process(
                    self._source(endpoint),
                    name=f"traffic:{endpoint.name}",
                )
            )

    def stop(self) -> None:
        """Stop all sources (takes effect at their next arrival)."""
        if self._running:
            self.stopped_at = self.env.now
        self._running = False

    def stats(self) -> dict:
        """Counters plus derived offered/delivered rates."""
        result = dict(self.counters.asdict())
        result["offered_load"] = self.spec.load
        until = (self.stopped_at if self.stopped_at is not None
                 else self.env.now)
        elapsed = (until - self.started_at
                   if self.started_at is not None else 0.0)
        result["elapsed"] = elapsed
        result["delivered_bytes_per_s"] = (
            result.get("bytes_delivered", 0) / elapsed if elapsed > 0
            else 0.0
        )
        return result

    def describe(self) -> dict:
        return {
            "workload": "traffic",
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "running": self._running,
        }

    # -- pattern wiring ------------------------------------------------------
    def _assign_pattern(self, sources: List[str]) -> None:
        """Draw the pattern's fixed randomness once, at start time."""
        pattern = self.spec.pattern
        if pattern == "permutation" and len(sources) >= 2:
            # A single random cycle over the sources: shuffle, then
            # each sends to its successor.  No fixed points, and every
            # endpoint receives from exactly one partner.
            cycle = list(sources)
            self.rng.shuffle(cycle)
            for position, name in enumerate(cycle):
                partner = cycle[(position + 1) % len(cycle)]
                # Only a reachable partner is usable; fall back to a
                # per-packet uniform draw for sources whose cycle
                # successor has no route (partitioned fabrics).
                if partner in self._routes.get(name, ()):
                    self._partners[name] = partner
        elif pattern == "hotspot" and sources:
            self._hotspot = self.rng.choice(sorted(sources))

    def _pick_destination(self, source: str, destinations) -> str:
        pattern = self.spec.pattern
        if pattern == "permutation":
            partner = self._partners.get(source)
            if partner is not None:
                return partner
        elif pattern == "hotspot":
            hotspot = self._hotspot
            if (hotspot is not None and hotspot != source
                    and hotspot in self._routes[source]
                    and self.rng.random() < self.spec.hotspot_fraction):
                return hotspot
        return self.rng.choice(destinations)

    # -- arrival processes ---------------------------------------------------
    def _gaps(self):
        """Generator of inter-arrival gaps for one source."""
        arrival = self.spec.arrival
        mean = self.mean_interarrival
        if arrival == "constant":
            while True:
                yield mean
        elif arrival == "poisson":
            expovariate = self.rng.expovariate
            rate = 1.0 / mean
            while True:
                yield expovariate(rate)
        else:  # bursty: geometric on/off with the same long-run load
            packet_time = self.packet_time
            burst_mean = self.spec.burst_length
            # Mean silence balancing `burst_mean` back-to-back packets
            # so the long-run average stays `load`.
            off_mean = max(burst_mean * (mean - packet_time), 1e-12)
            continue_p = 1.0 - 1.0 / burst_mean
            while True:
                yield self.rng.expovariate(1.0 / off_mean)
                # The burst's remaining packets follow at line rate.
                while self.rng.random() < continue_p:
                    yield packet_time

    # -- the flow process ----------------------------------------------------
    def _source(self, endpoint):
        routes = self._routes[endpoint.name]
        destinations = sorted(routes)
        incr = self.counters.incr
        packet_bytes = self.spec.packet_bytes
        tc = self.spec.tc
        for gap in self._gaps():
            yield self.env.timeout(gap)
            if not self._running or not endpoint.active:
                return
            dst = self._pick_destination(endpoint.name, destinations)
            pool, out_port = routes[dst]
            header = RouteHeader(
                pi=PI_APPLICATION, tc=tc,
                turn_pointer=pool.bits, turn_pool=pool.pool,
            )
            packet = Packet(header=header, payload=bytes(packet_bytes),
                            src=endpoint.name, created_at=self.env.now)
            endpoint.inject(packet, port_index=out_port)
            incr("packets_injected")
            incr("bytes_injected", packet_bytes)

    # -- delivery accounting -------------------------------------------------
    def attach_sinks(self, entities) -> None:
        """Count application-packet deliveries at each endpoint.

        ``entities`` maps device names to their management entities;
        the sink uses the entity's zero-cost application handler slot.
        Delivery latency is accumulated from each packet's
        ``created_at`` stamp.
        """
        incr = self.counters.incr
        env = self.env
        packet_bytes = self.spec.packet_bytes
        # Latency is tallied in integer nanoseconds so the Counter
        # stays integral (its contract) without losing resolution.
        def sink(packet, port):
            incr("packets_delivered")
            incr("bytes_delivered", packet_bytes)
            incr("latency_ns_total",
                 int((env.now - packet.created_at) * 1e9))

        for endpoint in self.fabric.endpoints():
            entity = entities.get(endpoint.name)
            if entity is not None:
                entity.app_handler = sink
