"""Synthetic workloads: background traffic and fault injection."""

from .faults import FaultEvent, FaultInjector
from .traffic import TrafficGenerator

__all__ = ["FaultEvent", "FaultInjector", "TrafficGenerator"]
