"""Synthetic workloads: background traffic and fault injection.

Everything here implements the :class:`Workload` lifecycle
(``start``/``stop``/``stats``/``describe``) so harnesses can manage a
mixed set of workloads uniformly — see :mod:`repro.workloads.base`.
"""

from .base import Workload, WorkloadSet
from .faults import FaultEvent, FaultInjector
from .traffic import ARRIVALS, PATTERNS, TrafficGenerator, TrafficSpec

__all__ = [
    "ARRIVALS",
    "FaultEvent",
    "FaultInjector",
    "PATTERNS",
    "TrafficGenerator",
    "TrafficSpec",
    "Workload",
    "WorkloadSet",
]
