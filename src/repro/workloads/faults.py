"""Fault injection: randomized topology churn over time.

The paper studies one change per run; a production fabric sees many.
This workload drives a fabric through a seeded sequence of hot switch
removals, restorations, and link flaps, so soak tests and the
continuous-operation example can check that the management layer keeps
converging to the true topology change after change.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ..fabric.fabric import Fabric
from ..sim.events import Event

#: Fault kinds the injector can produce.
KINDS = ("remove_switch", "restore_switch", "fail_link", "restore_link")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-run inspection."""

    time: float
    kind: str
    target: str


class FaultInjector:
    """Injects random topology changes at exponential intervals.

    Parameters
    ----------
    fabric:
        The live fabric to disturb.
    mean_interval:
        Mean seconds between faults (exponentially distributed); keep
        it comfortably above the fabric's assimilation time if each
        change should be absorbed before the next arrives.
    protect:
        Device names never to remove (e.g. the FM host's attachment
        switch).  Endpoints are never targeted.
    seed:
        Randomness seed (the full fault schedule is reproducible).
    """

    def __init__(self, fabric: Fabric, mean_interval: float = 30e-3,
                 protect: Optional[Sequence[str]] = None,
                 seed: int = 0):
        if mean_interval <= 0:
            raise ValueError("mean interval must be positive")
        self.fabric = fabric
        self.env = fabric.env
        self.mean_interval = mean_interval
        self.protect: Set[str] = set(protect or ())
        self.rng = random.Random(seed)
        self.log: List[FaultEvent] = []
        self._removed: List[str] = []
        self._failed_links: List[tuple] = []
        self._proc = None
        self._stopping = False
        self._done: Optional[Event] = None
        #: The Timeout the injector loop is currently sleeping on.
        self._wait = None

    # -- schedule -----------------------------------------------------------
    def run(self, faults: int) -> Event:
        """Inject ``faults`` changes; the event triggers when done."""
        if self._proc is not None:
            raise RuntimeError("fault injector already running")
        self._done = self.env.event()
        self._proc = self.env.process(self._loop(faults, self._done),
                                      name="fault-injector")
        return self._done

    def _loop(self, faults: int, done: Event):
        for _ in range(faults):
            self._wait = self.env.timeout(
                self.rng.expovariate(1.0 / self.mean_interval)
            )
            yield self._wait
            self._wait = None
            if self._stopping:
                break
            self._inject_one()
        if not done.triggered:
            done.succeed(list(self.log))

    def stop(self) -> None:
        """Stop injecting *now*.

        The pending inter-fault timeout is cancelled (the loop would
        otherwise sleep through one more interval before noticing) and
        the ``run`` event succeeds immediately with the partial log.
        """
        self._stopping = True
        if self._wait is not None and not self._wait.triggered:
            # The loop generator stays suspended on the cancelled
            # event forever; that is fine — it holds no simulation
            # resources and schedules nothing further.
            self.env.cancel(self._wait)
            self._wait = None
        if self._done is not None and not self._done.triggered:
            self._done.succeed(list(self.log))

    # -- fault selection --------------------------------------------------------
    def _eligible_switches(self) -> List[str]:
        return sorted(
            sw.name for sw in self.fabric.switches()
            if sw.active and sw.name not in self.protect
        )

    def _healthy_links(self) -> List[tuple]:
        result = []
        for link in self.fabric.links:
            if not link.up:
                continue
            a = link.a_port.device
            b = link.b_port.device
            # Endpoint attachment links stay up (killing one would
            # permanently silence an endpoint; switch faults cover
            # connectivity loss already).
            if a.kind != "switch" or b.kind != "switch":
                continue
            if a.name in self.protect or b.name in self.protect:
                continue
            result.append((a.name, b.name))
        return sorted(result)

    def _inject_one(self) -> None:
        actions = []
        if self._eligible_switches():
            actions.append("remove_switch")
        if self._removed:
            actions.append("restore_switch")
        if self._healthy_links():
            actions.append("fail_link")
        if self._failed_links:
            actions.append("restore_link")
        if not actions:
            return
        kind = self.rng.choice(actions)
        if kind == "remove_switch":
            target = self.rng.choice(self._eligible_switches())
            self.fabric.remove_device(target)
            self._removed.append(target)
        elif kind == "restore_switch":
            target = self._removed.pop(
                self.rng.randrange(len(self._removed))
            )
            self.fabric.restore_device(target)
        elif kind == "fail_link":
            a, b = self.rng.choice(self._healthy_links())
            self.fabric.fail_link(a, b)
            self._failed_links.append((a, b))
            target = f"{a}<->{b}"
        else:
            a, b = self._failed_links.pop(
                self.rng.randrange(len(self._failed_links))
            )
            self.fabric.restore_link(a, b)
            target = f"{a}<->{b}"
        if kind in ("remove_switch", "restore_switch"):
            pass
        self.log.append(FaultEvent(self.env.now, kind,
                                   target if isinstance(target, str)
                                   else str(target)))

    # -- introspection ----------------------------------------------------------
    def summary(self) -> dict:
        counts = {}
        for event in self.log:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
