"""Fault injection: randomized topology churn over time.

The paper studies one change per run; a production fabric sees many.
This workload drives a fabric through a seeded sequence of hot switch
removals, restorations, and link flaps, so soak tests and the
continuous-operation example can check that the management layer keeps
converging to the true topology change after change.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ..fabric.fabric import Fabric
from ..sim.events import Event

#: Fault kinds the injector can produce.  The FM kinds join the pool
#: only when ``allow_fm_kill`` is set (the default injector never
#: touches the manager, so every pre-existing schedule is unchanged).
KINDS = ("remove_switch", "restore_switch", "fail_link", "restore_link",
         "kill_fm", "restart_fm")

#: Default fault budget for the protocol-level ``start()``: large
#: enough that an open-ended session never exhausts it, small enough
#: to bound the fault log.
DEFAULT_FAULT_BUDGET = 1_000_000


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-run inspection."""

    time: float
    kind: str
    target: str
    #: Whether the fault landed while the observed FM was mid-walk
    #: (always False without a ``fm`` reference).
    mid_discovery: bool = False


def _fm_busy(fm) -> bool:
    """Whether ``fm`` is currently walking or assimilating."""
    return bool(
        fm.is_discovering or getattr(fm, "is_assimilating", False)
    )


class FaultInjector:
    """Injects random topology changes at exponential intervals.

    Parameters
    ----------
    fabric:
        The live fabric to disturb.
    mean_interval:
        Mean seconds between faults (exponentially distributed); keep
        it comfortably above the fabric's assimilation time if each
        change should be absorbed before the next arrives — or well
        below it (plus ``during_discovery``) to study mid-discovery
        churn.
    protect:
        Device names never to remove; links adjacent to a protected
        device are never failed either, so churn cannot amputate it.
        Protecting an *endpoint* (e.g. the FM host) extends the shield
        to its attachment switches — the one fault class that could
        silently cut the FM off.  Endpoints are never targeted.
    seed:
        Randomness seed (the full fault schedule is reproducible).
    fm:
        Fabric manager to observe for ``during_discovery`` mode (and
        for the ``mid_discovery`` flag on logged faults).
    during_discovery:
        Chaos mode: after each inter-fault interval elapses, hold the
        fault until the observed FM is mid-walk (checked every
        ``poll_interval``), so changes land *while* discovery runs —
        the overlap case the paper's one-change protocol never
        exercises.  If no discovery starts within ``max_hold`` the
        fault fires anyway (a fault is itself what provokes the next
        discovery, so the first one may have to land on a quiet
        fabric).
    poll_interval:
        Busy-poll granularity of ``during_discovery`` (default:
        ``mean_interval / 8``).
    max_hold:
        Longest a fault is held waiting for a discovery (default:
        ``20 * mean_interval``).
    allow_fm_kill:
        Opt-in: add ``kill_fm`` (hot-remove the FM's host endpoint) to
        the fault pool.  Needs ``fm``.  Off by default so the RNG draw
        sequence — and therefore every existing seeded schedule and
        golden — is bit-identical to an injector without the feature.
    fm_restart_delay:
        With ``allow_fm_kill``: resurrect a killed FM this many seconds
        after the kill, deterministically (no RNG draw).  When ``None``,
        ``restart_fm`` instead joins the random fault pool while the FM
        is down, so the schedule itself decides if/when the old primary
        comes back — the dueling-managers case fencing exists for.
    fault_budget:
        How many faults the protocol-level :meth:`start` injects
        before the schedule ends on its own.  :meth:`run` takes the
        budget explicitly and ignores this.
    """

    def __init__(self, fabric: Fabric, mean_interval: float = 30e-3,
                 protect: Optional[Sequence[str]] = None,
                 seed: int = 0, fm=None,
                 during_discovery: bool = False,
                 poll_interval: Optional[float] = None,
                 max_hold: Optional[float] = None,
                 allow_fm_kill: bool = False,
                 fm_restart_delay: Optional[float] = None,
                 fault_budget: int = DEFAULT_FAULT_BUDGET):
        if mean_interval <= 0:
            raise ValueError("mean interval must be positive")
        if during_discovery and fm is None:
            raise ValueError("during_discovery mode needs an fm to observe")
        if allow_fm_kill and fm is None:
            raise ValueError("allow_fm_kill needs the fm reference")
        if fm_restart_delay is not None and fm_restart_delay <= 0:
            raise ValueError("fm restart delay must be positive")
        self.fabric = fabric
        self.env = fabric.env
        self.mean_interval = mean_interval
        self.protect: Set[str] = self._expand_protection(fabric, protect)
        self.rng = random.Random(seed)
        self.fm = fm
        self.during_discovery = during_discovery
        self.poll_interval = (
            poll_interval if poll_interval is not None
            else mean_interval / 8
        )
        self.max_hold = (
            max_hold if max_hold is not None else 20 * mean_interval
        )
        if self.poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        self.allow_fm_kill = allow_fm_kill
        self.fm_restart_delay = fm_restart_delay
        if fault_budget < 1:
            raise ValueError("fault budget must be at least 1")
        self.fault_budget = fault_budget
        #: Whether the FM host is currently hot-removed by this injector.
        self.fm_down = False
        #: Called with each :class:`FaultEvent` as it lands — the
        #: failover harness hooks this to stamp the standby's
        #: detection-latency clock the instant the primary dies.
        self.on_fault: Optional[callable] = None
        self.log: List[FaultEvent] = []
        #: Faults that fired while the FM was mid-walk.
        self.mid_discovery_faults = 0
        self._removed: List[str] = []
        self._failed_links: List[tuple] = []
        self._proc = None
        self._stopping = False
        self._done: Optional[Event] = None
        #: The Timeout the injector loop is currently sleeping on.
        self._wait = None
        #: Pending auto-restore of a killed FM (``fm_restart_delay``).
        self._restore_handle = None

    @staticmethod
    def _expand_protection(fabric: Fabric,
                           protect: Optional[Sequence[str]]) -> Set[str]:
        """Protected set, widened so the shield actually holds.

        A protected endpoint's attachment switches are protected too:
        failing such a switch (or the link to it) would amputate the
        endpoint exactly as removing it would — the scenario ``protect``
        exists to prevent (the FM host must survive the soak).
        """
        expanded: Set[str] = set(protect or ())
        for name in sorted(expanded):
            device = fabric.devices.get(name)
            if device is None or device.kind == "switch":
                continue
            for port in device.ports:
                neighbor = port.neighbor()
                if neighbor is not None:
                    expanded.add(neighbor.device.name)
        return expanded

    # -- schedule -----------------------------------------------------------
    def start(self) -> None:
        """:class:`~repro.workloads.base.Workload` entry point.

        Equivalent to ``run(self.fault_budget)`` with the completion
        event ignored — for callers that manage lifecycles uniformly
        and will ``stop()`` the injector themselves.
        """
        self.run(self.fault_budget)

    def run(self, faults: int) -> Event:
        """Inject ``faults`` changes; the event triggers when done."""
        if self._proc is not None:
            raise RuntimeError("fault injector already running")
        self._done = self.env.event()
        self._proc = self.env.process(self._loop(faults, self._done),
                                      name="fault-injector")
        return self._done

    def _loop(self, faults: int, done: Event):
        for _ in range(faults):
            self._wait = self.env.timeout(
                self.rng.expovariate(1.0 / self.mean_interval)
            )
            yield self._wait
            self._wait = None
            if self._stopping:
                break
            if self.during_discovery and not _fm_busy(self.fm):
                # Hold the fault until the FM is mid-walk, bounded by
                # an env-time deadline so a quiet fabric cannot stall
                # the schedule forever.  Measuring against env.now
                # (rather than tallying poll_interval per wait) honors
                # max_hold exactly even when a wait completes early or
                # is interrupted.
                deadline = self.env.now + self.max_hold
                while self.env.now < deadline and not _fm_busy(self.fm):
                    self._wait = self.env.timeout(
                        min(self.poll_interval, deadline - self.env.now)
                    )
                    yield self._wait
                    self._wait = None
                    if self._stopping:
                        break
                if self._stopping:
                    break
            self._inject_one()
        if not done.triggered:
            done.succeed(list(self.log))

    def stop(self) -> None:
        """Stop injecting *now*.

        The pending inter-fault timeout is cancelled (the loop would
        otherwise sleep through one more interval before noticing) and
        the ``run`` event succeeds immediately with the partial log.
        """
        self._stopping = True
        if self._wait is not None and not self._wait.triggered:
            # The loop generator stays suspended on the cancelled
            # event forever; that is fine — it holds no simulation
            # resources and schedules nothing further.
            self.env.cancel(self._wait)
            self._wait = None
        if self._restore_handle is not None:
            self.env.cancel(self._restore_handle)
            self._restore_handle = None
        if self._done is not None and not self._done.triggered:
            self._done.succeed(list(self.log))

    # -- fault selection --------------------------------------------------------
    def _eligible_switches(self) -> List[str]:
        return sorted(
            sw.name for sw in self.fabric.switches()
            if sw.active and sw.name not in self.protect
        )

    def _healthy_links(self) -> List[tuple]:
        result = []
        for link in self.fabric.links:
            if not link.up:
                continue
            a = link.a_port.device
            b = link.b_port.device
            # Endpoint attachment links stay up (killing one would
            # permanently silence an endpoint; switch faults cover
            # connectivity loss already).
            if a.kind != "switch" or b.kind != "switch":
                continue
            if a.name in self.protect or b.name in self.protect:
                continue
            result.append((a.name, b.name))
        return sorted(result)

    def _fm_host(self) -> str:
        return self.fm.endpoint.name

    def _inject_one(self) -> None:
        actions = []
        if self._eligible_switches():
            actions.append("remove_switch")
        if self._removed:
            actions.append("restore_switch")
        if self._healthy_links():
            actions.append("fail_link")
        if self._failed_links:
            actions.append("restore_link")
        # The FM kinds append *after* the baseline four, and only when
        # opted in — with ``allow_fm_kill`` off, the candidate list (and
        # therefore the RNG draw sequence) is bit-identical to before
        # the feature existed.
        if self.allow_fm_kill:
            if not self.fm_down:
                actions.append("kill_fm")
            elif self.fm_restart_delay is None:
                # With an automatic restart delay the resurrection is
                # scheduled deterministically at kill time instead.
                actions.append("restart_fm")
        if not actions:
            return
        kind = self.rng.choice(actions)
        if kind == "kill_fm":
            self.kill_fm_now()
            return
        if kind == "restart_fm":
            self.restore_fm_now()
            return
        if kind == "remove_switch":
            target = self.rng.choice(self._eligible_switches())
            self.fabric.remove_device(target)
            self._removed.append(target)
        elif kind == "restore_switch":
            target = self._removed.pop(
                self.rng.randrange(len(self._removed))
            )
            self.fabric.restore_device(target)
        elif kind == "fail_link":
            a, b = self.rng.choice(self._healthy_links())
            self.fabric.fail_link(a, b)
            self._failed_links.append((a, b))
            target = f"{a}<->{b}"
        else:
            a, b = self._failed_links.pop(
                self.rng.randrange(len(self._failed_links))
            )
            self.fabric.restore_link(a, b)
            target = f"{a}<->{b}"
        self._log(kind, target if isinstance(target, str) else str(target))

    def _log(self, kind: str, target: str) -> None:
        mid = (self.fm is not None and not self.fm_down
               and _fm_busy(self.fm))
        if mid:
            self.mid_discovery_faults += 1
        event = FaultEvent(self.env.now, kind, target, mid_discovery=mid)
        self.log.append(event)
        if self.on_fault is not None:
            self.on_fault(event)

    # -- FM faults --------------------------------------------------------------
    def kill_fm_now(self) -> None:
        """Hot-remove the FM's host endpoint, deterministically.

        Usable directly (no RNG draw) by harnesses that want the kill
        at a precise point in the schedule; the random ``kill_fm``
        fault routes through here too.  With ``fm_restart_delay`` set,
        the resurrection is scheduled now, at a fixed offset.
        """
        if self.fm is None:
            raise ValueError("no fm to kill")
        if self.fm_down:
            return
        # Mid-walk flag is sampled before the kill lands (the whole
        # point of killing mid-discovery is that the FM *was* busy).
        mid = _fm_busy(self.fm)
        self.fm_down = True
        self.fabric.remove_device(self._fm_host())
        if mid:
            self.mid_discovery_faults += 1
        event = FaultEvent(self.env.now, "kill_fm", self._fm_host(),
                           mid_discovery=mid)
        self.log.append(event)
        if self.on_fault is not None:
            self.on_fault(event)
        if self.fm_restart_delay is not None:
            self._restore_handle = self.env.schedule_callback(
                self.fm_restart_delay, lambda _ev: self.restore_fm_now()
            )

    def restore_fm_now(self) -> None:
        """Resurrect a killed FM host (the split-brain provocation).

        Power restoration fires the neighbours' port-up events; the old
        primary's own management entity comes back and — unless it has
        been demoted by fencing — will start rediscovering as if it
        still owned the fabric.
        """
        if not self.fm_down:
            return
        self.fm_down = False
        self._restore_handle = None
        self.fabric.restore_device(self._fm_host())
        # A rebooted manager walks the fabric on startup — it cannot
        # know it was deposed while dark (its own database still calls
        # its ports "up", so the resurrection's port events alone look
        # stale to it).  The walk ends in the ownership-fencing pass,
        # which is where a fenced fabric makes it demote itself.
        if not getattr(self.fm, "demoted", False):
            self.fm.start_discovery(trigger="restart", force=True)
        self._log("restart_fm", self._fm_host())

    # -- introspection ----------------------------------------------------------
    def summary(self) -> dict:
        counts = {}
        for event in self.log:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def stats(self) -> dict:
        """Per-kind fault counts plus totals (Workload protocol)."""
        result = dict(self.summary())
        result["faults_injected"] = len(self.log)
        result["mid_discovery_faults"] = self.mid_discovery_faults
        result["fm_down"] = self.fm_down
        return result

    def describe(self) -> dict:
        return {
            "workload": "faults",
            "mean_interval": self.mean_interval,
            "protect": sorted(self.protect),
            "during_discovery": self.during_discovery,
            "allow_fm_kill": self.allow_fm_kill,
            "fault_budget": self.fault_budget,
            "running": self._proc is not None and not self._stopping,
        }
