"""The common workload lifecycle contract.

Every background activity that runs against a live fabric — fault
injection, application traffic, standby monitoring — implements the
same four-method lifecycle so harnesses and experiments can manage a
heterogeneous set of them uniformly:

* ``start()`` — begin the activity (idempotence is *not* required;
  starting a running workload may raise);
* ``stop()`` — cease the activity; safe to call more than once and
  safe to call on a never-started workload;
* ``stats()`` — a JSON-ready dict of counters and derived rates,
  readable at any time (including after ``stop``);
* ``describe()`` — a JSON-ready dict of static configuration, enough
  to tell one workload from another in logs and service responses.

:class:`WorkloadSet` is the trivial composite: it fans each call out
to its members, stopping in reverse start order.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, runtime_checkable


@runtime_checkable
class Workload(Protocol):
    """Anything with the start/stop/stats/describe lifecycle."""

    def start(self) -> None:
        """Begin the background activity."""

    def stop(self) -> None:
        """Cease the activity; must be safe to call repeatedly."""

    def stats(self) -> dict:
        """JSON-ready counters and derived rates."""

    def describe(self) -> dict:
        """JSON-ready static configuration for logs and APIs."""


class WorkloadSet:
    """Manage several workloads as one.

    ``start`` runs in registration order, ``stop`` in reverse, so a
    workload that observes another (say, a standby watching a fabric
    the injector is disturbing) is stopped before what it observes.
    """

    def __init__(self, *workloads: Workload):
        self._workloads: List[Workload] = list(workloads)

    def add(self, workload: Workload) -> Workload:
        self._workloads.append(workload)
        return workload

    def __iter__(self):
        return iter(self._workloads)

    def __len__(self) -> int:
        return len(self._workloads)

    def start(self) -> None:
        for workload in self._workloads:
            workload.start()

    def stop(self) -> None:
        for workload in reversed(self._workloads):
            workload.stop()

    def stats(self) -> Dict[str, dict]:
        """Per-workload stats keyed by each member's workload label."""
        return {self._label(i, w): w.stats()
                for i, w in enumerate(self._workloads)}

    def describe(self) -> Dict[str, dict]:
        return {self._label(i, w): w.describe()
                for i, w in enumerate(self._workloads)}

    def _label(self, index: int, workload: Workload) -> str:
        kind = workload.describe().get("workload", type(workload).__name__)
        return f"{kind}[{index}]"
