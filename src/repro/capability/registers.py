"""32-bit register blocks backing device capability structures."""

from __future__ import annotations

from typing import List, Optional, Sequence

DWORD_MASK = 0xFFFFFFFF


class RegisterError(IndexError):
    """Raised on out-of-range or malformed register accesses."""


class RegisterBlock:
    """A fixed-size array of 32-bit registers.

    All configuration-space state is stored as dwords, mirroring how
    the specification exposes device information to PI-4 accesses.
    Registers power up as all-zeros, so the backing list is only
    materialized on the first write — a mega-scale fabric carries
    tens of thousands of blocks that are never written.
    """

    __slots__ = ("_regs", "_size")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("register block needs at least one dword")
        self._size = size
        self._regs: Optional[List[int]] = None

    def __len__(self) -> int:
        return self._size

    def read(self, offset: int, count: int = 1) -> List[int]:
        """Read ``count`` dwords starting at ``offset``."""
        self._check_range(offset, count)
        if self._regs is None:
            return [0] * count
        return self._regs[offset:offset + count]

    def write(self, offset: int, values: Sequence[int]) -> None:
        """Write consecutive dwords starting at ``offset``."""
        self._check_range(offset, len(values))
        if self._regs is None:
            self._regs = [0] * self._size
        for i, value in enumerate(values):
            if not 0 <= value <= DWORD_MASK:
                raise RegisterError(f"value {value:#x} is not a dword")
            self._regs[offset + i] = value

    def _check_range(self, offset: int, count: int) -> None:
        if count < 1:
            raise RegisterError("count must be positive")
        if offset < 0 or offset + count > self._size:
            raise RegisterError(
                f"access [{offset}, {offset + count}) outside block of "
                f"{self._size} dwords"
            )


def pack_u64(value: int) -> List[int]:
    """Split a 64-bit value into [high, low] dwords."""
    if not 0 <= value < (1 << 64):
        raise ValueError(f"{value:#x} is not a u64")
    return [(value >> 32) & DWORD_MASK, value & DWORD_MASK]


def unpack_u64(high: int, low: int) -> int:
    """Combine [high, low] dwords into a 64-bit value."""
    return ((high & DWORD_MASK) << 32) | (low & DWORD_MASK)


def get_field(dword: int, shift: int, width: int) -> int:
    """Extract a bit field from a dword."""
    return (dword >> shift) & ((1 << width) - 1)


def set_field(dword: int, shift: int, width: int, value: int) -> int:
    """Return ``dword`` with the given bit field replaced by ``value``."""
    mask = (1 << width) - 1
    if not 0 <= value <= mask:
        raise ValueError(f"value {value} exceeds {width}-bit field")
    return (dword & ~(mask << shift)) | (value << shift)
