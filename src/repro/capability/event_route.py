"""The event-route capability.

PI-5 event notifications must reach the fabric manager, but a device
has no global view of the topology.  The FM therefore programs each
device with a source route back to itself (via PI-4 writes) right after
discovery; the device uses that route — and the stored local egress
port — for every subsequent PI-5 packet.

Layout::

    dword 0 : [valid:1][rsvd:16][out_port:8][turn_pointer:7]
    dword 1 : turn pool high dword
    dword 2 : turn pool low dword
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .registers import RegisterBlock, RegisterError, get_field, set_field

#: Capability identifier of the event-route capability.
EVENT_ROUTE_CAP_ID = 0x05

_SIZE = 3


class EventRouteCapability:
    """Writable storage for the device's route to the fabric manager."""

    cap_id = EVENT_ROUTE_CAP_ID

    def __init__(self):
        self._block = RegisterBlock(_SIZE)

    def __len__(self) -> int:
        return _SIZE

    def read(self, offset: int, count: int) -> List[int]:
        return self._block.read(offset, count)

    def write(self, offset: int, values: Sequence[int]) -> None:
        self._block.write(offset, values)

    # -- typed accessors --------------------------------------------------
    @staticmethod
    def encode(turn_pool: int, turn_pointer: int, out_port: int) -> List[int]:
        """Render the three dwords of a valid route entry."""
        dword0 = set_field(0, 31, 1, 1)
        dword0 = set_field(dword0, 7, 8, out_port)
        dword0 = set_field(dword0, 0, 7, turn_pointer)
        return [
            dword0,
            (turn_pool >> 32) & 0xFFFFFFFF,
            turn_pool & 0xFFFFFFFF,
        ]

    def set_route(self, turn_pool: int, turn_pointer: int,
                  out_port: int = 0) -> None:
        """Program the route to the FM (marks the entry valid)."""
        self._block.write(0, self.encode(turn_pool, turn_pointer, out_port))

    def clear(self) -> None:
        """Invalidate the stored route."""
        self._block.write(0, [0, 0, 0])

    def get_route(self) -> Optional[Tuple[int, int, int]]:
        """Return ``(turn_pool, turn_pointer, out_port)`` or None."""
        d0, high, low = self._block.read(0, 3)
        if not get_field(d0, 31, 1):
            return None
        return (
            (high << 32) | low,
            get_field(d0, 0, 7),
            get_field(d0, 7, 8),
        )
