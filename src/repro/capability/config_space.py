"""A device's configuration space: the set of its capability structures.

PI-4 requests address configuration space as ``(capability id, dword
offset, dword count)``.  Reads of up to eight dwords return data in a
single completion; malformed accesses produce a completion-with-error,
which this module signals with :class:`ConfigSpaceError`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .registers import RegisterError

#: Maximum dwords a single PI-4 read may return (spec: eight 32-bit blocks).
MAX_READ_DWORDS = 8


class ConfigSpaceError(Exception):
    """A configuration-space access failed.

    ``status`` is a PI-4 completion status code hint (bad range by
    default, conflict for lose-the-race claim writes).
    """

    def __init__(self, message: str, status: int = 0x02):
        super().__init__(message)
        self.status = status


class ConfigSpace:
    """Maps capability ids to capability structures."""

    def __init__(self):
        self._caps: Dict[int, object] = {}

    def add(self, capability) -> None:
        """Register a capability structure (must expose ``cap_id``)."""
        cap_id = capability.cap_id
        if cap_id in self._caps:
            raise ValueError(f"capability {cap_id:#x} already present")
        self._caps[cap_id] = capability

    def capability(self, cap_id: int):
        """Return the capability object for ``cap_id``."""
        try:
            return self._caps[cap_id]
        except KeyError:
            raise ConfigSpaceError(
                f"device has no capability {cap_id:#x}"
            ) from None

    def capability_ids(self) -> List[int]:
        return sorted(self._caps)

    def __contains__(self, cap_id: int) -> bool:
        return cap_id in self._caps

    def read(self, cap_id: int, offset: int, count: int) -> List[int]:
        """Read ``count`` dwords from a capability.

        Raises
        ------
        ConfigSpaceError
            On unknown capability, oversized read, or bad range — the
            device turns this into a PI-4 completion-with-error.
        """
        if not 1 <= count <= MAX_READ_DWORDS:
            raise ConfigSpaceError(
                f"read of {count} dwords outside [1, {MAX_READ_DWORDS}]"
            )
        cap = self.capability(cap_id)
        try:
            return cap.read(offset, count)
        except RegisterError as exc:
            raise ConfigSpaceError(str(exc)) from exc

    def write(self, cap_id: int, offset: int, values: Sequence[int]) -> None:
        """Write dwords into a capability (same error contract as read)."""
        if not values:
            raise ConfigSpaceError("empty write")
        cap = self.capability(cap_id)
        try:
            cap.write(offset, values)
        except RegisterError as exc:
            raise ConfigSpaceError(str(exc)) from exc
