"""The multicast capability: PI-4 access to a switch's forwarding table.

The FM programs multicast distribution trees by writing operation
dwords into this capability (paper, section 2: fabric management
includes "multicast group management").

Write format (each dword is one operation)::

    [op:8][group:16][port:8]

    op 1 : add ``port`` to ``group``
    op 2 : remove ``port`` from ``group``
    op 3 : clear ``group`` (port field ignored)

Reads return, for the group selected by the dword *offset*, the port
membership as a 32-bit bitmap per dword pair — enough for the model's
16-port switches (dword 0 of the pair; dword 1 reserved).
"""

from __future__ import annotations

from typing import List, Sequence

from ..routing.tables import MulticastForwardingTable, MulticastTableError
from .config_space import ConfigSpaceError
from .registers import RegisterError

#: Capability identifier of the multicast capability.
MULTICAST_CAP_ID = 0x09

OP_ADD = 0x01
OP_REMOVE = 0x02
OP_CLEAR = 0x03


def encode_op(op: int, group: int, port: int = 0) -> int:
    """Pack one table operation into a dword."""
    if not 0 <= group <= 0xFFFF:
        raise ConfigSpaceError(f"group {group} outside 16 bits")
    if not 0 <= port <= 0xFF:
        raise ConfigSpaceError(f"port {port} outside 8 bits")
    return (op << 24) | (group << 8) | port


class MulticastCapability:
    """Write-to-program view of a switch's multicast table."""

    cap_id = MULTICAST_CAP_ID

    #: Groups readable through the capability window (dword offset
    #: selects the group; kept small to bound read offsets).
    READ_GROUPS = 256

    def __init__(self, table: MulticastForwardingTable):
        self._table = table

    def __len__(self) -> int:
        return self.READ_GROUPS

    def read(self, offset: int, count: int) -> List[int]:
        """Read port bitmaps for groups ``offset .. offset+count-1``."""
        if offset < 0 or offset + count > self.READ_GROUPS:
            raise RegisterError(
                f"multicast read [{offset}, {offset + count}) outside "
                f"{self.READ_GROUPS} groups"
            )
        result = []
        for group in range(offset, offset + count):
            bitmap = 0
            for port in self._table.ports_for(group):
                if port < 32:
                    bitmap |= 1 << port
            result.append(bitmap)
        return result

    def write(self, offset: int, values: Sequence[int]) -> None:
        """Apply a sequence of table operations."""
        if offset != 0:
            raise RegisterError("multicast operations are written at 0")
        for dword in values:
            op = (dword >> 24) & 0xFF
            group = (dword >> 8) & 0xFFFF
            port = dword & 0xFF
            try:
                if op == OP_ADD:
                    self._table.add_port(group, port)
                elif op == OP_REMOVE:
                    self._table.remove_port(group, port)
                elif op == OP_CLEAR:
                    self._table.clear_group(group)
                else:
                    raise ConfigSpaceError(f"unknown multicast op {op:#x}")
            except MulticastTableError as exc:
                raise ConfigSpaceError(str(exc)) from exc
