"""The path-table capability of fabric endpoints.

After discovery, the fabric manager computes a set of source routes
between endpoints and distributes them (section 1 of the paper; path
*distribution* is studied as an extension here).  Each endpoint stores
the routes in this capability and uses them to address unicast packets.

Layout (entries of 5 dwords each)::

    entry e, dword 0 : [valid:1][rsvd:24][turn_pointer:7]
    entry e, dword 1-2 : destination DSN (high/low)
    entry e, dword 3-4 : turn pool (high/low)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .registers import (
    RegisterBlock,
    RegisterError,
    get_field,
    pack_u64,
    set_field,
    unpack_u64,
)

#: Capability identifier of the path-table capability.
PATH_TABLE_CAP_ID = 0x06

ENTRY_DWORDS = 5


class PathTableCapability:
    """Writable table of (destination DSN -> source route) entries."""

    cap_id = PATH_TABLE_CAP_ID

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("need at least one path-table entry")
        self.max_entries = max_entries
        self._block = RegisterBlock(max_entries * ENTRY_DWORDS)

    def __len__(self) -> int:
        return len(self._block)

    def read(self, offset: int, count: int) -> List[int]:
        return self._block.read(offset, count)

    def write(self, offset: int, values: Sequence[int]) -> None:
        self._block.write(offset, values)

    # -- typed accessors --------------------------------------------------
    @staticmethod
    def encode_entry(dsn: int, turn_pool: int, turn_pointer: int) -> List[int]:
        """Render one valid table entry as 5 dwords."""
        d0 = set_field(set_field(0, 31, 1, 1), 0, 7, turn_pointer)
        return [d0, *pack_u64(dsn), *pack_u64(turn_pool)]

    def set_entry(self, index: int, dsn: int, turn_pool: int,
                  turn_pointer: int) -> None:
        """Store a route to ``dsn`` at table slot ``index``."""
        if not 0 <= index < self.max_entries:
            raise RegisterError(f"entry {index} outside path table")
        self._block.write(
            index * ENTRY_DWORDS,
            self.encode_entry(dsn, turn_pool, turn_pointer),
        )

    def clear(self) -> None:
        """Invalidate every entry."""
        self._block.write(0, [0] * len(self._block))

    def entries(self) -> Dict[int, Tuple[int, int]]:
        """All valid entries as ``{dsn: (turn_pool, turn_pointer)}``."""
        result: Dict[int, Tuple[int, int]] = {}
        for index in range(self.max_entries):
            entry = self._block.read(index * ENTRY_DWORDS, ENTRY_DWORDS)
            if get_field(entry[0], 31, 1):
                dsn = unpack_u64(entry[1], entry[2])
                pool = unpack_u64(entry[3], entry[4])
                result[dsn] = (pool, get_field(entry[0], 0, 7))
        return result

    def lookup(self, dsn: int) -> Optional[Tuple[int, int]]:
        """Route to ``dsn`` as ``(turn_pool, turn_pointer)`` or None."""
        return self.entries().get(dsn)
