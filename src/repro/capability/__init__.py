"""Device configuration space and capability structures.

The fabric manager learns everything it knows about a device by
reading these structures through PI-4 (see :mod:`repro.protocols.pi4`).
"""

from .baseline import (
    BASELINE_CAP_ID,
    DEVICE_TYPE_ENDPOINT,
    DEVICE_TYPE_SWITCH,
    GENERAL_INFO_DWORDS,
    PORT_BLOCK_DWORDS,
    PORT_STATE_DOWN,
    PORT_STATE_UP,
    BaselineCapability,
    decode_general_info,
    decode_port_status,
    port_block_offset,
)
from .claim import CLAIM_CAP_ID, ClaimCapability
from .config_space import MAX_READ_DWORDS, ConfigSpace, ConfigSpaceError
from .event_route import EVENT_ROUTE_CAP_ID, EventRouteCapability
from .multicast import MULTICAST_CAP_ID, MulticastCapability, encode_op
from .path_table import PATH_TABLE_CAP_ID, PathTableCapability
from .registers import (
    RegisterBlock,
    RegisterError,
    get_field,
    pack_u64,
    set_field,
    unpack_u64,
)

__all__ = [
    "BASELINE_CAP_ID",
    "CLAIM_CAP_ID",
    "ClaimCapability",
    "BaselineCapability",
    "ConfigSpace",
    "ConfigSpaceError",
    "DEVICE_TYPE_ENDPOINT",
    "DEVICE_TYPE_SWITCH",
    "EVENT_ROUTE_CAP_ID",
    "EventRouteCapability",
    "MULTICAST_CAP_ID",
    "MulticastCapability",
    "encode_op",
    "GENERAL_INFO_DWORDS",
    "MAX_READ_DWORDS",
    "PATH_TABLE_CAP_ID",
    "PORT_BLOCK_DWORDS",
    "PORT_STATE_DOWN",
    "PORT_STATE_UP",
    "PathTableCapability",
    "RegisterBlock",
    "RegisterError",
    "decode_general_info",
    "decode_port_status",
    "get_field",
    "pack_u64",
    "port_block_offset",
    "set_field",
    "unpack_u64",
]
