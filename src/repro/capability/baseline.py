"""The baseline capability: device control and status information.

Per the specification (as summarized in section 2 of the paper), the
baseline capability starts with six dwords of general device
information — type, serial number, number of supported ports, maximum
packet size — followed by up to 32 blocks describing each port (link
speed and width, current port state).

Layout used by this model::

    dword 0   : [type:8][nports:8][max_pkt_code:8][flags:8]
                flags bit0 = device active, bit1 = FM capable
    dword 1-2 : device serial number (DSN), high/low
    dword 3   : vendor id (16) | device id (16)
    dword 4   : capability version
    dword 5   : FM election priority (endpoints only; 0 otherwise)
    dword 6 + 2*p : port p status  [state:2][width:6][speed:8][rsvd:16]
    dword 7 + 2*p : port p error counter

The port-status dwords are *live*: reads always reflect the current
simulated port state, which is what makes PI-4 port reads meaningful to
the discovery algorithms.
"""

from __future__ import annotations

from typing import List

from .registers import RegisterError, get_field, pack_u64, set_field

#: Capability identifier of the baseline capability.
BASELINE_CAP_ID = 0x00

#: Device type codes stored in dword 0.
DEVICE_TYPE_ENDPOINT = 0x01
DEVICE_TYPE_SWITCH = 0x02

#: Port state codes.
PORT_STATE_DOWN = 0x0
PORT_STATE_UP = 0x1

#: Number of dwords of general information before the port blocks.
GENERAL_INFO_DWORDS = 6
#: Dwords per port block.
PORT_BLOCK_DWORDS = 2
#: Maximum ports a baseline capability can describe.  The ASI spec
#: caps this at 32 blocks; the model extends it to 128 so the
#: mega-scale generator families (Dragonfly groups, two-layer fat-tree
#: cores) can use high-radix switches.  PI-4 offsets are a full dword,
#: so the wire format is unaffected.
MAX_PORT_BLOCKS = 128


def port_block_offset(port_index: int) -> int:
    """Dword offset of the status block for ``port_index``."""
    if not 0 <= port_index < MAX_PORT_BLOCKS:
        raise RegisterError(f"port {port_index} outside baseline capability")
    return GENERAL_INFO_DWORDS + PORT_BLOCK_DWORDS * port_index


class BaselineCapability:
    """Computed view of a device's baseline capability.

    Reads are rendered on demand from the owning device's live state so
    that port up/down transitions are immediately visible to PI-4.
    """

    cap_id = BASELINE_CAP_ID

    def __init__(self, device):
        self._device = device

    def __len__(self) -> int:
        return GENERAL_INFO_DWORDS + PORT_BLOCK_DWORDS * len(self._device.ports)

    # -- rendering ------------------------------------------------------
    def _render(self, offset: int) -> int:
        device = self._device
        if offset == 0:
            flags = (1 if device.active else 0) | (
                2 if getattr(device, "fm_capable", False) else 0
            )
            dword = 0
            dword = set_field(dword, 24, 8, device.type_code)
            dword = set_field(dword, 16, 8, len(device.ports))
            dword = set_field(dword, 8, 8, device.max_payload_code)
            dword = set_field(dword, 0, 8, flags)
            return dword
        if offset in (1, 2):
            high, low = pack_u64(device.dsn)
            return high if offset == 1 else low
        if offset == 3:
            return (device.vendor_id << 16) | device.device_id
        if offset == 4:
            return device.capability_version
        if offset == 5:
            return getattr(device, "fm_priority", 0)
        # Port blocks.
        rel = offset - GENERAL_INFO_DWORDS
        port_index, word = divmod(rel, PORT_BLOCK_DWORDS)
        if port_index >= len(device.ports):
            raise RegisterError(
                f"baseline offset {offset} beyond {len(device.ports)} ports"
            )
        port = device.ports[port_index]
        if word == 0:
            dword = 0
            dword = set_field(
                dword, 30, 2, PORT_STATE_UP if port.is_up else PORT_STATE_DOWN
            )
            dword = set_field(dword, 24, 6, 1)  # x1 link width
            dword = set_field(dword, 16, 8, 1)  # speed code: 2.5 Gbps
            return dword
        return port.error_count & 0xFFFFFFFF

    def read(self, offset: int, count: int) -> List[int]:
        """Read ``count`` dwords starting at ``offset``."""
        if count < 1:
            raise RegisterError("count must be positive")
        if offset < 0 or offset + count > len(self):
            raise RegisterError(
                f"access [{offset}, {offset + count}) outside baseline "
                f"capability of {len(self)} dwords"
            )
        return [self._render(offset + i) for i in range(count)]

    def write(self, offset: int, values) -> None:
        raise RegisterError("baseline capability is read-only")


# -- decode helpers used by the fabric manager -------------------------------

def decode_general_info(dwords: List[int]) -> dict:
    """Decode the six general-information dwords into a dict."""
    if len(dwords) < GENERAL_INFO_DWORDS:
        raise ValueError(
            f"need {GENERAL_INFO_DWORDS} dwords, got {len(dwords)}"
        )
    d0 = dwords[0]
    from .registers import unpack_u64

    return {
        "type_code": get_field(d0, 24, 8),
        "nports": get_field(d0, 16, 8),
        "max_payload_code": get_field(d0, 8, 8),
        "active": bool(get_field(d0, 0, 1)),
        "fm_capable": bool(get_field(d0, 1, 1)),
        "dsn": unpack_u64(dwords[1], dwords[2]),
        "vendor_id": get_field(dwords[3], 16, 16),
        "device_id": get_field(dwords[3], 0, 16),
        "capability_version": dwords[4],
        "fm_priority": dwords[5],
    }


def decode_port_status(dword: int) -> dict:
    """Decode a port-status dword into a dict."""
    return {
        "state": get_field(dword, 30, 2),
        "up": get_field(dword, 30, 2) == PORT_STATE_UP,
        "width": get_field(dword, 24, 6),
        "speed_code": get_field(dword, 16, 8),
    }
