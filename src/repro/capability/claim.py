"""The discovery-claim capability (collaborative discovery support).

Used by the distributed-discovery extension (paper future work,
section 5: "distribute the entire process through several collaborative
fabric managers").  Each collaborating FM, before exploring a freshly
found device, writes a *claim* naming itself.  The device accepts the
first claim of a generation and rejects later ones with a PI-4
completion status of ``STATUS_CONFLICT`` — the device's serial
management-packet processing makes the test-and-set atomic for free.

Layout::

    dword 0 : [valid:1][rsvd:15][generation:16]
    dword 1 : owner DSN high
    dword 2 : owner DSN low
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .config_space import ConfigSpaceError
from .registers import RegisterBlock, RegisterError, get_field, set_field

#: Capability identifier of the claim capability.
CLAIM_CAP_ID = 0x07

#: PI-4 status returned when a claim loses the race.
STATUS_CONFLICT = 0x04

_SIZE = 3


class ClaimCapability:
    """First-writer-wins claim register."""

    cap_id = CLAIM_CAP_ID

    def __init__(self):
        self._block = RegisterBlock(_SIZE)

    def __len__(self) -> int:
        return _SIZE

    @staticmethod
    def encode(owner_dsn: int, generation: int) -> List[int]:
        dword0 = set_field(set_field(0, 31, 1, 1), 0, 16, generation & 0xFFFF)
        return [
            dword0,
            (owner_dsn >> 32) & 0xFFFFFFFF,
            owner_dsn & 0xFFFFFFFF,
        ]

    def read(self, offset: int, count: int) -> List[int]:
        return self._block.read(offset, count)

    def write(self, offset: int, values: Sequence[int]) -> None:
        """Accept the claim only if unclaimed for this generation."""
        if offset != 0 or len(values) != _SIZE:
            raise RegisterError("claim writes must cover the whole capability")
        current = self.get_claim()
        incoming_generation = get_field(values[0], 0, 16)
        if current is not None and current[1] == incoming_generation:
            raise ConfigSpaceError(
                f"already claimed by {current[0]:#x} in generation "
                f"{incoming_generation}",
                status=STATUS_CONFLICT,
            )
        self._block.write(0, values)

    def get_claim(self) -> Optional[Tuple[int, int]]:
        """Return ``(owner_dsn, generation)`` or None if unclaimed."""
        d0, high, low = self._block.read(0, 3)
        if not get_field(d0, 31, 1):
            return None
        return ((high << 32) | low, get_field(d0, 0, 16))

    def clear(self) -> None:
        self._block.write(0, [0, 0, 0])
