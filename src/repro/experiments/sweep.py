"""Parameter sweeps behind the paper's evaluation figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..manager.discovery.base import DiscoveryStats
from ..manager.timing import ALGORITHMS, ProcessingTimeModel
from ..topology.spec import TopologySpec
from ..topology.table1 import table1_suite
from .runner import (
    ExperimentResult,
    build_simulation,
    run_change_experiment,
    run_until_ready,
)

#: Default FM processing factors swept in Fig. 8(a).
FM_FACTORS = (0.25, 1 / 3, 0.5, 1.0, 2.0, 3.0, 4.0)
#: Default device processing factors swept in Fig. 8(b).
DEVICE_FACTORS = (0.05, 0.1, 0.2, 1 / 3, 0.5, 1.0, 2.0, 4.0)


def measure_initial_discovery(
    spec: TopologySpec,
    algorithm: str,
    timing: Optional[ProcessingTimeModel] = None,
) -> DiscoveryStats:
    """Discovery time of a fully active fabric (no change), as used by
    Figs. 4, 7(a), and 8 ("assuming that all fabric devices are
    active")."""
    setup = build_simulation(spec, algorithm=algorithm, timing=timing,
                             auto_start=False)
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    # Attach the measured mean FM processing time for Fig. 4.
    stats.mean_fm_time = setup.fm.mean_processing_time()
    return stats


def sweep_change_experiments(
    topologies: Optional[Sequence[TopologySpec]] = None,
    algorithms: Sequence[str] = ALGORITHMS,
    seeds: Iterable[int] = range(3),
    timing: Optional[ProcessingTimeModel] = None,
) -> List[ExperimentResult]:
    """The Fig. 6 / Fig. 9 protocol over a topology suite.

    Each seed alternates removal and addition changes, mirroring the
    paper's "addition or removal of a randomly chosen fabric switch...
    repeated several times for each topology".
    """
    topologies = list(topologies) if topologies else table1_suite()
    results: List[ExperimentResult] = []
    for spec in topologies:
        for algorithm in algorithms:
            for seed in seeds:
                change = "remove_switch" if seed % 2 == 0 else "add_switch"
                results.append(
                    run_change_experiment(
                        spec, algorithm=algorithm, change=change,
                        seed=seed, timing=timing,
                    )
                )
    return results


def sweep_fm_factor(
    spec: TopologySpec,
    factors: Sequence[float] = FM_FACTORS,
    algorithms: Sequence[str] = ALGORITHMS,
    base_timing: Optional[ProcessingTimeModel] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 8(a): discovery time vs FM processing factor."""
    base = base_timing or ProcessingTimeModel()
    series: Dict[str, List[Tuple[float, float]]] = {}
    for algorithm in algorithms:
        points = []
        for factor in factors:
            timing = base.with_factors(fm_factor=factor)
            stats = measure_initial_discovery(spec, algorithm, timing)
            points.append((factor, stats.discovery_time))
        series[algorithm] = points
    return series


def sweep_device_factor(
    spec: TopologySpec,
    factors: Sequence[float] = DEVICE_FACTORS,
    algorithms: Sequence[str] = ALGORITHMS,
    base_timing: Optional[ProcessingTimeModel] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 8(b): discovery time vs device processing factor."""
    base = base_timing or ProcessingTimeModel()
    series: Dict[str, List[Tuple[float, float]]] = {}
    for algorithm in algorithms:
        points = []
        for factor in factors:
            timing = base.with_factors(device_factor=factor)
            stats = measure_initial_discovery(spec, algorithm, timing)
            points.append((factor, stats.discovery_time))
        series[algorithm] = points
    return series


def fig4_measurements(
    topologies: Optional[Sequence[TopologySpec]] = None,
    algorithms: Sequence[str] = ALGORITHMS,
    timing: Optional[ProcessingTimeModel] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 4: measured mean FM PI-4 processing time vs network size.

    The x axis is the switch count, as in the paper.
    """
    topologies = list(topologies) if topologies else table1_suite()
    series: Dict[str, List[Tuple[int, float]]] = {a: [] for a in algorithms}
    for spec in topologies:
        for algorithm in algorithms:
            stats = measure_initial_discovery(spec, algorithm, timing)
            series[algorithm].append(
                (spec.num_switches, stats.mean_fm_time)
            )
    for points in series.values():
        points.sort()
    return series
