"""Parameter sweeps behind the paper's evaluation figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..manager.discovery.base import DiscoveryStats
from ..manager.timing import ALGORITHMS, ProcessingTimeModel
from ..topology.spec import TopologySpec
from ..topology.table1 import table1_suite
from .executor import change_job, initial_job, run_sweep
from .runner import ExperimentResult, build_simulation, run_until_ready

#: Default FM processing factors swept in Fig. 8(a).
FM_FACTORS = (0.25, 1 / 3, 0.5, 1.0, 2.0, 3.0, 4.0)
#: Default device processing factors swept in Fig. 8(b).
DEVICE_FACTORS = (0.05, 0.1, 0.2, 1 / 3, 0.5, 1.0, 2.0, 4.0)


def measure_initial_discovery(
    spec: TopologySpec,
    algorithm: str,
    timing: Optional[ProcessingTimeModel] = None,
) -> DiscoveryStats:
    """Discovery time of a fully active fabric (no change), as used by
    Figs. 4, 7(a), and 8 ("assuming that all fabric devices are
    active")."""
    setup = build_simulation(spec, algorithm=algorithm, timing=timing,
                             auto_start=False)
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    # Attach the measured mean FM processing time for Fig. 4.
    stats.mean_fm_time = setup.fm.mean_processing_time()
    return stats


def sweep_change_experiments(
    topologies: Optional[Sequence[TopologySpec]] = None,
    algorithms: Sequence[str] = ALGORITHMS,
    seeds: Iterable[int] = range(3),
    timing: Optional[ProcessingTimeModel] = None,
    jobs: int = 1,
    progress=None,
) -> List[ExperimentResult]:
    """The Fig. 6 / Fig. 9 protocol over a topology suite.

    Each seed alternates removal and addition changes, mirroring the
    paper's "addition or removal of a randomly chosen fabric switch...
    repeated several times for each topology".  ``jobs`` worker
    processes run the suite in parallel; the returned list is
    identical, run for run, to the serial (``jobs=1``) order.
    """
    topologies = list(topologies) if topologies else table1_suite()
    joblist = [
        change_job(
            spec, algorithm, seed=seed,
            change="remove_switch" if seed % 2 == 0 else "add_switch",
            timing=timing,
        )
        for spec in topologies
        for algorithm in algorithms
        for seed in seeds
    ]
    return run_sweep(joblist, workers=jobs, progress=progress)


def _factor_sweep(
    spec: TopologySpec,
    factors: Sequence[float],
    algorithms: Sequence[str],
    base: ProcessingTimeModel,
    which: str,
    jobs: int,
    progress,
) -> Dict[str, List[Tuple[float, float]]]:
    joblist = [
        initial_job(
            spec, algorithm,
            timing=base.with_factors(**{which: factor}),
            tag=(algorithm, factor),
        )
        for algorithm in algorithms
        for factor in factors
    ]
    series: Dict[str, List[Tuple[float, float]]] = {
        algorithm: [] for algorithm in algorithms
    }
    for job, stats in zip(joblist, run_sweep(joblist, workers=jobs,
                                             progress=progress)):
        algorithm, factor = job.tag
        series[algorithm].append((factor, stats.discovery_time))
    return series


def sweep_fm_factor(
    spec: TopologySpec,
    factors: Sequence[float] = FM_FACTORS,
    algorithms: Sequence[str] = ALGORITHMS,
    base_timing: Optional[ProcessingTimeModel] = None,
    jobs: int = 1,
    progress=None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 8(a): discovery time vs FM processing factor."""
    base = base_timing or ProcessingTimeModel()
    return _factor_sweep(spec, factors, algorithms, base, "fm_factor",
                         jobs, progress)


def sweep_device_factor(
    spec: TopologySpec,
    factors: Sequence[float] = DEVICE_FACTORS,
    algorithms: Sequence[str] = ALGORITHMS,
    base_timing: Optional[ProcessingTimeModel] = None,
    jobs: int = 1,
    progress=None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 8(b): discovery time vs device processing factor."""
    base = base_timing or ProcessingTimeModel()
    return _factor_sweep(spec, factors, algorithms, base, "device_factor",
                         jobs, progress)


def fig4_measurements(
    topologies: Optional[Sequence[TopologySpec]] = None,
    algorithms: Sequence[str] = ALGORITHMS,
    timing: Optional[ProcessingTimeModel] = None,
    jobs: int = 1,
    progress=None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 4: measured mean FM PI-4 processing time vs network size.

    The x axis is the switch count, as in the paper.
    """
    topologies = list(topologies) if topologies else table1_suite()
    joblist = [
        initial_job(spec, algorithm,
                    timing=timing, tag=(algorithm, spec.num_switches))
        for spec in topologies
        for algorithm in algorithms
    ]
    series: Dict[str, List[Tuple[int, float]]] = {a: [] for a in algorithms}
    for job, stats in zip(joblist, run_sweep(joblist, workers=jobs,
                                             progress=progress)):
        algorithm, num_switches = job.tag
        series[algorithm].append((num_switches, stats.mean_fm_time))
    for points in series.values():
        points.sort()
    return series
