"""JSON import/export of topologies and experiment results.

Downstream users can archive sweeps, share topologies, or feed the
series into their own plotting stacks without touching the simulator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..topology.spec import TopologySpec
from .runner import ExperimentResult

PathLike = Union[str, Path]

_SPEC_SCHEMA = "repro/topology-spec/v1"
_RESULTS_SCHEMA = "repro/experiment-results/v1"


class IoError(ValueError):
    """Raised on malformed documents."""


# -- topology specifications -------------------------------------------------

def spec_to_dict(spec: TopologySpec) -> dict:
    """Render a specification as a JSON-ready dict."""
    spec.validate()
    return {
        "schema": _SPEC_SCHEMA,
        "name": spec.name,
        "family": spec.family,
        "fm_host": spec.fm_host,
        "switches": [[name, nports] for name, nports in spec.switches],
        "endpoints": list(spec.endpoints),
        "links": [list(link) for link in spec.links],
    }


def spec_from_dict(document: dict) -> TopologySpec:
    """Rebuild a specification from :func:`spec_to_dict` output."""
    if document.get("schema") != _SPEC_SCHEMA:
        raise IoError(
            f"expected schema {_SPEC_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    try:
        spec = TopologySpec(
            name=document["name"],
            family=document.get("family", "custom"),
            fm_host=document.get("fm_host"),
            switches=[(name, int(nports))
                      for name, nports in document["switches"]],
            endpoints=list(document["endpoints"]),
            links=[(a, int(ap), b, int(bp))
                   for a, ap, b, bp in document["links"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise IoError(f"malformed topology document: {exc}") from exc
    spec.validate()
    return spec


def save_spec(spec: TopologySpec, path: PathLike) -> Path:
    """Write a specification to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(spec_to_dict(spec), indent=2) + "\n")
    return path


def load_spec(path: PathLike) -> TopologySpec:
    """Read a specification from a JSON file."""
    return spec_from_dict(json.loads(Path(path).read_text()))


# -- experiment results -----------------------------------------------------

def results_to_dict(results: List[ExperimentResult]) -> dict:
    """Render change-experiment results as a JSON-ready dict."""
    return {
        "schema": _RESULTS_SCHEMA,
        "runs": [result.asdict() for result in results],
    }


def save_results(results: List[ExperimentResult], path: PathLike) -> Path:
    """Archive a sweep's results as JSON."""
    path = Path(path)
    path.write_text(json.dumps(results_to_dict(results), indent=2) + "\n")
    return path


def load_results(path: PathLike) -> List[dict]:
    """Load archived results (as plain dicts, one per run)."""
    document = json.loads(Path(path).read_text())
    if document.get("schema") != _RESULTS_SCHEMA:
        raise IoError(
            f"expected schema {_RESULTS_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    runs = document.get("runs")
    if not isinstance(runs, list):
        raise IoError("malformed results document: 'runs' must be a list")
    return runs
