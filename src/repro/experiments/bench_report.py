"""Bench-trajectory reports: machine-readable before/after wall times.

Perf work is only real if it is measured against a recorded baseline.
This module maintains a small JSON trajectory file (``BENCH_kernel.json``
at the repository root for the kernel bench) with the shape::

    {
      "benchmark": "kernel",
      "units": {"fig6_mesh_wall_s": "seconds", ...},
      "baseline": {"label": ..., "metrics": {...}},
      "runs": [
        {"label": ..., "quick": false, "metrics": {...},
         "speedup_vs_baseline": {"fig6_mesh_wall_s": 1.8, ...}},
        ...
      ]
    }

``baseline`` is captured once (on the unoptimized tree) and kept; every
subsequent bench invocation appends to ``runs`` with per-metric speedups
against the baseline, so the trajectory of every future perf PR is
visible from a single file.

Speedup convention: metrics whose name ends in ``_s`` are wall times
(speedup = baseline / current); metrics ending in ``_per_s`` are rates
(speedup = current / baseline).  Either way, bigger is better.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

Metrics = Dict[str, float]


def _empty_report(benchmark: str, units: Optional[Dict[str, str]]) -> dict:
    return {
        "benchmark": benchmark,
        "units": units or {},
        "baseline": None,
        "runs": [],
    }


def load_report(path: Path, benchmark: str,
                units: Optional[Dict[str, str]] = None) -> dict:
    """Load an existing trajectory file (or a fresh skeleton)."""
    path = Path(path)
    if path.exists():
        text = path.read_text().strip()
        if text:
            report = json.loads(text)
            if report.get("benchmark") == benchmark:
                if units:
                    report.setdefault("units", {}).update(units)
                return report
    return _empty_report(benchmark, units)


def speedups(baseline: Metrics, current: Metrics) -> Metrics:
    """Per-metric speedup factors (bigger is better for every metric)."""
    out: Metrics = {}
    for name, now in current.items():
        base = baseline.get(name)
        if not base or not now:
            continue
        if name.endswith("_per_s"):
            out[name] = now / base
        else:
            out[name] = base / now
    return out


def record_run(path: Path, benchmark: str, label: str, metrics: Metrics,
               units: Optional[Dict[str, str]] = None,
               quick: bool = False, as_baseline: bool = False) -> dict:
    """Append one bench run to the trajectory file and return its entry.

    With ``as_baseline`` the metrics (re)define the baseline instead of
    appending a run.  Quick-mode runs never overwrite the baseline and
    get no speedup numbers unless the baseline was also quick (the
    reduced workloads are not comparable to the full ones).
    """
    path = Path(path)
    report = load_report(path, benchmark, units)
    entry = {"label": label, "quick": quick, "metrics": metrics}
    if as_baseline:
        report["baseline"] = entry
    else:
        baseline = report.get("baseline")
        if baseline and bool(baseline.get("quick")) == quick:
            entry["speedup_vs_baseline"] = speedups(
                baseline["metrics"], metrics
            )
        report["runs"].append(entry)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return entry


def render_entry(entry: dict) -> str:
    """One bench entry as aligned text (for the bench's stdout)."""
    lines = [f"{entry['label']}{' [quick]' if entry.get('quick') else ''}"]
    for name, value in entry["metrics"].items():
        lines.append(f"  {name:<24s} {value:>14,.6g}")
    for name, factor in entry.get("speedup_vs_baseline", {}).items():
        lines.append(f"  speedup[{name}]{'':<7s} {factor:>14.2f}x")
    return "\n".join(lines)
