"""Per-figure data builders.

One function per table/figure of the paper's evaluation section; each
returns ``(data, text)`` where ``data`` is plain Python (dicts/lists,
ready for any plotting front end) and ``text`` is the rendered ASCII
reproduction printed by the corresponding bench.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.model import PipelineModel, expected_packets
from ..manager.timing import ALGORITHMS, ProcessingTimeModel
from ..topology.spec import TopologySpec
from ..topology.table1 import table1_rows, table1_suite, table1_topology
from .report import render_kv, render_series, render_table
from .runner import ExperimentResult
from .sweep import (
    DEVICE_FACTORS,
    FM_FACTORS,
    fig4_measurements,
    measure_initial_discovery,
    sweep_change_experiments,
    sweep_device_factor,
    sweep_fm_factor,
)

#: Display names matching the paper's legends.
ALGO_LABELS = {
    "serial_packet": "Serial Packet",
    "serial_device": "Serial Device",
    "parallel": "Parallel",
}


def _label(series: Dict[str, list]) -> Dict[str, list]:
    return {ALGO_LABELS.get(k, k): v for k, v in series.items()}


# -- Table 1 -----------------------------------------------------------------

def figure_table1() -> Tuple[List[dict], str]:
    """Table 1: the evaluated topologies."""
    rows = table1_rows()
    text = render_table(
        ["Topology", "Switches", "Endpoints", "Total Devices"],
        [[r["topology"], r["switches"], r["endpoints"],
          r["total_devices"]] for r in rows],
    )
    return rows, "Table 1. Topologies evaluated\n" + text


# -- Fig. 4 ------------------------------------------------------------------

def figure4(topologies: Optional[Sequence[TopologySpec]] = None,
            algorithms: Sequence[str] = ALGORITHMS,
            jobs: int = 1) -> Tuple[dict, str]:
    """Fig. 4: mean PI-4 processing time at the FM vs network size."""
    if topologies is None:
        topologies = [
            table1_topology(n)
            for n in ("3x3 mesh", "4x4 mesh", "6x6 mesh", "8x8 mesh",
                      "10x10 torus")
        ]
    series = fig4_measurements(topologies, algorithms, jobs=jobs)
    data = {"series": series}
    display = {
        name: [(x, y * 1e6) for x, y in points]
        for name, points in _label(series).items()
    }
    text = render_series(
        "Fig. 4. Average time to process a PI-4 packet at the FM",
        "switches", "PI-4 processing time (microsec)", display,
    )
    return data, text


# -- Fig. 6 ------------------------------------------------------------------

def figure6(results: Optional[List[ExperimentResult]] = None,
            seeds: Iterable[int] = range(2),
            topologies: Optional[Sequence[TopologySpec]] = None,
            jobs: int = 1) -> Tuple[dict, str]:
    """Fig. 6: discovery time per run (a) and per-topology means (b)."""
    if results is None:
        results = sweep_change_experiments(topologies=topologies,
                                           seeds=seeds, jobs=jobs)
    points_a: Dict[str, List[Tuple[int, float]]] = defaultdict(list)
    for result in results:
        points_a[result.algorithm].append(
            (result.active_devices, result.discovery_time)
        )
    for points in points_a.values():
        points.sort()

    sums: Dict[Tuple[str, str, int], List[float]] = defaultdict(list)
    for result in results:
        sums[(result.algorithm, result.topology,
              result.total_devices)].append(result.discovery_time)
    points_b: Dict[str, List[Tuple[int, float]]] = defaultdict(list)
    for (algorithm, _topology, total), times in sorted(sums.items()):
        points_b[algorithm].append((total, sum(times) / len(times)))
    for points in points_b.values():
        points.sort()

    data = {
        "per_run": dict(points_a),
        "per_topology_mean": dict(points_b),
        "runs": [r.asdict() for r in results],
    }
    text_a = render_series(
        "Fig. 6(a). Discovery time versus the amount of active nodes",
        "active_nodes", "discovery time (s)", _label(points_a),
    )
    text_b = render_series(
        "Fig. 6(b). Discovery time versus the network size (averages)",
        "physical_nodes", "discovery time (s)", _label(points_b),
    )
    return data, text_a + "\n\n" + text_b


# -- Fig. 7 ------------------------------------------------------------------

def figure7(spec: Optional[TopologySpec] = None,
            timing: Optional[ProcessingTimeModel] = None,
            sample_every: int = 20) -> Tuple[dict, str]:
    """Fig. 7: per-packet FM timeline (a) and ideal pipelines (b)."""
    spec = spec or table1_topology("3x3 mesh")
    timing = timing or ProcessingTimeModel()
    timelines: Dict[str, List[Tuple[int, float]]] = {}
    slopes: Dict[str, float] = {}
    for algorithm in ALGORITHMS:
        stats = measure_initial_discovery(spec, algorithm, timing)
        timelines[algorithm] = stats.packet_timeline
        first_n, first_t = stats.packet_timeline[0]
        last_n, last_t = stats.packet_timeline[-1]
        slopes[algorithm] = (last_t - first_t) / max(1, last_n - first_n)

    sampled = {
        name: [p for i, p in enumerate(points)
               if i % sample_every == 0 or i == len(points) - 1]
        for name, points in timelines.items()
    }
    text_a = render_series(
        f"Fig. 7(a). Time at which each discovery packet is processed "
        f"({spec.name})",
        "packet_number", "simulation time (s)", _label(sampled),
    )

    model = PipelineModel.from_parameters(
        timing, "serial_packet", known_devices=spec.total_devices // 2,
    )
    parallel_model = PipelineModel.from_parameters(
        timing, "parallel", known_devices=spec.total_devices // 2,
    )
    ideal = {
        "T_FM (serial pkt)": model.t_fm,
        "T_Device": model.t_device,
        "T_Prop (one way)": model.t_prop,
        "serial period  = T_FM + 2*T_Prop + T_Device": model.serial_period,
        "parallel period = T_FM": parallel_model.parallel_period,
        "measured serial slope": slopes["serial_packet"],
        "measured parallel slope": slopes["parallel"],
    }
    text_b = render_kv(
        "Fig. 7(b). Ideal serial and parallel behaviours (s/packet)",
        ideal,
    )
    data = {"timelines": timelines, "slopes": slopes, "ideal": ideal}
    return data, text_a + "\n\n" + text_b


# -- Fig. 8 ------------------------------------------------------------------

def figure8(spec: Optional[TopologySpec] = None,
            fm_factors: Sequence[float] = FM_FACTORS,
            device_factors: Sequence[float] = DEVICE_FACTORS,
            jobs: int = 1) -> Tuple[dict, str]:
    """Fig. 8: discovery time vs FM factor (a) and device factor (b)."""
    spec = spec or table1_topology("8x8 mesh")
    series_a = sweep_fm_factor(spec, fm_factors, jobs=jobs)
    series_b = sweep_device_factor(spec, device_factors, jobs=jobs)
    text_a = render_series(
        f"Fig. 8(a). Discovery time vs FM processing factor "
        f"({spec.name}, device factor = 1)",
        "fm_factor", "discovery time (s)", _label(series_a),
    )
    text_b = render_series(
        f"Fig. 8(b). Discovery time vs device processing factor "
        f"({spec.name}, FM factor = 1)",
        "device_factor", "discovery time (s)", _label(series_b),
    )
    data = {"fm_factor": series_a, "device_factor": series_b}
    return data, text_a + "\n\n" + text_b


# -- Fig. 9 ------------------------------------------------------------------

#: The paper's three (FM factor, device factor) corners.
FIG9_PANELS = (
    ("a", 1.0, 1.0),
    ("b", 1.0, 0.2),
    ("c", 4.0, 0.2),
)


def figure9(topologies: Optional[Sequence[TopologySpec]] = None,
            seeds: Iterable[int] = range(2),
            jobs: int = 1) -> Tuple[dict, str]:
    """Fig. 9: the Fig. 6(a) study at three processing-factor corners."""
    data = {}
    texts = []
    for panel, fm_factor, device_factor in FIG9_PANELS:
        timing = ProcessingTimeModel(fm_factor=fm_factor,
                                     device_factor=device_factor)
        results = sweep_change_experiments(
            topologies=topologies, seeds=seeds, timing=timing, jobs=jobs,
        )
        points: Dict[str, List[Tuple[int, float]]] = defaultdict(list)
        for result in results:
            points[result.algorithm].append(
                (result.active_devices, result.discovery_time)
            )
        for series in points.values():
            series.sort()
        data[panel] = {
            "fm_factor": fm_factor,
            "device_factor": device_factor,
            "series": dict(points),
        }
        texts.append(
            render_series(
                f"Fig. 9({panel}). FM factor={fm_factor}; "
                f"Device factor={device_factor}",
                "active_nodes", "discovery time (s)", _label(points),
            )
        )
    return data, "\n\n".join(texts)


# -- section 4.1 statements ---------------------------------------------------

def overhead_comparison(
    topologies: Optional[Sequence[TopologySpec]] = None,
) -> Tuple[dict, str]:
    """S1: management packets/bytes are (near) identical across the
    algorithms — the paper omits the plot for this reason."""
    topologies = list(topologies) if topologies else [
        table1_topology(n) for n in ("3x3 mesh", "4x4 torus",
                                     "4-port 3-tree", "8-port 2-tree")
    ]
    rows = []
    data = []
    for spec in topologies:
        per_algo = {}
        for algorithm in ALGORITHMS:
            stats = measure_initial_discovery(spec, algorithm)
            per_algo[algorithm] = stats
        expected = expected_packets(spec)
        rows.append([
            spec.name,
            expected,
            *[per_algo[a].requests_sent for a in ALGORITHMS],
            *[per_algo[a].total_bytes for a in ALGORITHMS],
        ])
        data.append({
            "topology": spec.name,
            "expected_requests": expected,
            "requests": {a: per_algo[a].requests_sent for a in ALGORITHMS},
            "bytes": {a: per_algo[a].total_bytes for a in ALGORITHMS},
        })
    text = render_table(
        ["Topology", "model",
         "req(SP)", "req(SD)", "req(P)",
         "bytes(SP)", "bytes(SD)", "bytes(P)"],
        rows,
    )
    return data, (
        "S1. Management packets/bytes per discovery "
        "(identical across algorithms)\n" + text
    )
