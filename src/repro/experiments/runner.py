"""Single-experiment runner: the paper's simulation protocol.

"Each simulation begins with a transient period in which fabric devices
are activated and the FM gathers the initial topology.  After that, we
have programmed the occurrence of a topological change, consisting in
the addition or removal of a randomly chosen fabric switch.  For the
detection of changes, we have implemented the event-reporting mechanism
(PI-5) proposed in the ASI specification." (paper, section 4.1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import networkx as nx

from ..fabric.fabric import Fabric
from ..fabric.params import DEFAULT_PARAMS, FabricParams
from ..manager.discovery.base import DiscoveryStats
from ..manager.fm import FabricManager
from ..manager.timing import PARALLEL, ProcessingTimeModel
from ..protocols.entity import ManagementEntity
from ..sim.core import Environment
from ..topology.spec import TopologySpec

#: Safety horizon: no single discovery should take this long (seconds).
MAX_SIM_TIME = 120.0


@dataclass
class SimulationSetup:
    """A built, powered-up fabric with management entities and an FM."""

    env: Environment
    spec: TopologySpec
    fabric: Fabric
    entities: Dict[str, ManagementEntity]
    fm: FabricManager


#: Manager kinds :func:`build_simulation` can instantiate.
MANAGER_KINDS = ("full", "partial")


def _manager_class(manager: str):
    if manager == "full":
        return FabricManager
    if manager == "partial":
        # Imported late: partial.py pulls in the whole discovery stack.
        from ..manager.discovery.partial import PartialAssimilationManager
        return PartialAssimilationManager
    raise ValueError(
        f"unknown manager kind {manager!r} (expected one of "
        f"{MANAGER_KINDS})"
    )


def build_simulation(
    spec: TopologySpec,
    algorithm: str = PARALLEL,
    timing: Optional[ProcessingTimeModel] = None,
    params: FabricParams = DEFAULT_PARAMS,
    fm_host: Optional[str] = None,
    power_up: bool = True,
    manager: str = "full",
    tracer=None,
    **fm_kwargs,
) -> SimulationSetup:
    """Instantiate a topology with a management entity per device and a
    fabric manager on ``fm_host`` (default: the spec's designated host).

    ``manager`` selects the FM flavour: ``"full"`` (every change is a
    full rediscovery, the paper's assumption) or ``"partial"`` (the
    burst-based partial change assimilation extension).  ``tracer`` is
    an optional :class:`repro.obs.session.TraceSession`, installed
    before anything runs; tracing never perturbs the simulation.
    """
    env = Environment()
    fabric = spec.build(env, params)
    timing = timing or ProcessingTimeModel()
    entities = {
        name: ManagementEntity(
            device,
            processing_time=timing.device_time,
            processing_factor=timing.device_factor,
        )
        for name, device in fabric.devices.items()
    }
    host = fm_host or spec.fm_host or spec.endpoints[0]
    fm = _manager_class(manager)(
        fabric.device(host), entities[host],
        timing=timing, algorithm=algorithm, **fm_kwargs,
    )
    if power_up:
        fabric.power_up()
    setup = SimulationSetup(env=env, spec=spec, fabric=fabric,
                            entities=entities, fm=fm)
    if tracer is not None:
        tracer.install(setup)
    return setup


def run_until_ready(setup: SimulationSetup) -> DiscoveryStats:
    """Run until the FM's current discovery finished AND its event
    routes are programmed (the fabric is change-detection capable)."""
    setup.env.run(until=setup.fm.ready_event)
    return setup.fm.last_stats()


def run_until_discovery_count(setup: SimulationSetup, n: int,
                              horizon: float = MAX_SIM_TIME) -> DiscoveryStats:
    """Run until ``n`` discoveries have completed (bounded by horizon)."""
    env, fm = setup.env, setup.fm
    if len(fm.history) >= n:
        return fm.history[n - 1]
    marker = env.event()

    def check(stats):
        if len(fm.history) >= n and not marker.triggered:
            marker.succeed(stats)

    fm.on_discovery_complete.append(check)
    deadline = env.timeout(horizon)
    env.run(until=env.any_of([marker, deadline]))
    fm.on_discovery_complete.remove(check)
    # On success the horizon Timeout is still scheduled; a later bare
    # env.run() would spin the clock all the way to it.
    env.cancel(deadline)
    if len(fm.history) < n:
        raise TimeoutError(
            f"discovery #{n} did not finish within {horizon} s of "
            f"simulated time"
        )
    return fm.history[n - 1]


def database_matches_fabric(setup: SimulationSetup) -> bool:
    """Whether the FM database equals the reachable ground truth."""
    fabric, fm = setup.fabric, setup.fm
    reachable = set(fabric.reachable_devices(fm.endpoint.name))
    truth = fabric.graph().subgraph(reachable)
    truth_dsn = nx.relabel_nodes(
        truth, {n: fabric.device(n).dsn for n in truth}
    )
    found = fm.database.graph()
    return (
        set(found.nodes) == set(truth_dsn.nodes)
        and {frozenset(e) for e in found.edges}
        == {frozenset(e) for e in truth_dsn.edges}
    )


@dataclass
class ExperimentResult:
    """Outcome of one change-assimilation experiment (one Fig. 6 dot)."""

    topology: str
    family: str
    algorithm: str
    seed: int
    change: str
    changed_device: str
    total_devices: int
    #: Devices active and reachable from the FM after the change — the
    #: horizontal axis of Fig. 6(a) / Fig. 9.
    active_devices: int
    initial: DiscoveryStats = None
    assimilation: DiscoveryStats = None
    database_correct: bool = False

    @property
    def discovery_time(self) -> float:
        """Rediscovery time after the change (the Fig. 6 metric)."""
        return self.assimilation.discovery_time

    def asdict(self) -> dict:
        return {
            "topology": self.topology,
            "family": self.family,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "change": self.change,
            "changed_device": self.changed_device,
            "total_devices": self.total_devices,
            "active_devices": self.active_devices,
            "discovery_time": self.discovery_time,
            "initial_discovery_time": self.initial.discovery_time,
            "packets": self.assimilation.total_packets,
            "bytes": self.assimilation.total_bytes,
            "database_correct": self.database_correct,
        }


def _removable_switches(setup: SimulationSetup) -> list:
    """Switches whose removal leaves the FM endpoint attached.

    Removing the switch that hosts the FM's own link would leave the FM
    alone in the fabric; the paper's runs keep the FM reachable, so the
    directly-attached switch is excluded from the random choice.
    """
    fm_port = setup.fm.endpoint.ports[0]
    neighbor = fm_port.neighbor()
    attached = neighbor.device.name if neighbor is not None else None
    return sorted(
        sw.name for sw in setup.fabric.switches() if sw.name != attached
    )

