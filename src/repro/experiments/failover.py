"""Failover experiments: kill the primary FM, measure the takeover.

"If the primary FM fails, the secondary one takes over" (paper,
section 2) — this family measures *how fast* and *how safely*.  One
run: settle, churn the fabric for a while (so the standby's mirror is
genuinely exercised, not a copy of a static topology), kill the
primary's host endpoint mid-operation, and let the standby detect the
silence and promote itself.  Warm takeovers (mirror + verify/repair,
see :class:`repro.manager.failover.StandbyManager`) are compared
against cold full rediscoveries on the same schedule; detection
latency and recovery time come from the extended
:class:`~repro.manager.failover.FailoverReport`.

Optionally the old primary is then resurrected: its neighbours'
port-up events wake it, it rediscovers, and the ownership-epoch
fencing must make it demote itself instead of split-braining the
fabric — the run records whether it did.

Every run is seeded end-to-end (fault schedule, guard sampling), so
sweep results are bit-identical regardless of worker scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..fabric.params import DEFAULT_PARAMS, FabricParams
from ..manager.consistency import audit_topology
from ..manager.failover import MODES, StandbyManager
from ..manager.fm import FabricManager
from ..manager.timing import PARALLEL, ProcessingTimeModel
from ..routing.paths import fabric_route
from ..topology.spec import TopologySpec
from ..workloads.faults import FaultInjector
from .churn import DEFAULT_MEAN_INTERVAL, run_until_quiescent
from .report import render_table
from .runner import (
    MAX_SIM_TIME,
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)

#: Churn faults injected before the kill (they dirty the mirror).
DEFAULT_FAULTS = 3

#: Standby heartbeat interval for failover runs.
DEFAULT_HEARTBEAT = 1e-3

#: Consecutive missed heartbeats before promotion.
DEFAULT_MISS_THRESHOLD = 3


@dataclass
class FailoverResult:
    """Outcome of one FM-kill / takeover run."""

    topology: str
    family: str
    algorithm: str
    manager: str
    #: Takeover mode *requested* ("warm"/"cold").
    mode: str
    seed: int
    heartbeat_interval: float
    miss_threshold: int
    #: Churn faults injected before the kill.
    faults: int
    #: Takeover mode actually taken (a warm standby with an unusable
    #: mirror falls back to "cold").
    takeover_mode: str
    missed_heartbeats: int
    #: Seconds from the kill to the standby noticing (heartbeats).
    detection_latency: float
    #: Seconds from detection to a converged topology under the new FM.
    recovery_time: float
    #: Port-state differences the warm verify pass repaired.
    repairs: int
    #: Mirror refreshes completed before the kill (warm only).
    mirror_syncs: int
    devices_recovered: int
    #: Database equals the reachable ground truth (graph comparison).
    converged: bool
    #: The consistency auditor found zero differences post-takeover.
    audit_ok: bool
    audit_differences: int
    #: Whether the run resurrected the old primary afterwards.
    restart_primary: bool
    #: Fencing verdict: did the resurrected old primary demote itself?
    #: (``None`` when ``restart_primary`` is off.)
    old_primary_demoted: Optional[bool] = None

    def asdict(self) -> dict:
        return {
            "topology": self.topology,
            "family": self.family,
            "algorithm": self.algorithm,
            "manager": self.manager,
            "mode": self.mode,
            "seed": self.seed,
            "heartbeat_interval": self.heartbeat_interval,
            "miss_threshold": self.miss_threshold,
            "faults": self.faults,
            "takeover_mode": self.takeover_mode,
            "missed_heartbeats": self.missed_heartbeats,
            "detection_latency": self.detection_latency,
            "recovery_time": self.recovery_time,
            "repairs": self.repairs,
            "mirror_syncs": self.mirror_syncs,
            "devices_recovered": self.devices_recovered,
            "converged": self.converged,
            "audit_ok": self.audit_ok,
            "audit_differences": self.audit_differences,
            "restart_primary": self.restart_primary,
            "old_primary_demoted": self.old_primary_demoted,
        }


def build_failover_pair(
    spec: TopologySpec,
    algorithm: str = PARALLEL,
    mode: str = "warm",
    heartbeat_interval: float = DEFAULT_HEARTBEAT,
    miss_threshold: int = DEFAULT_MISS_THRESHOLD,
    manager: str = "partial",
    timing: Optional[ProcessingTimeModel] = None,
    params: FabricParams = DEFAULT_PARAMS,
    tracer=None,
    fm_options: Optional[dict] = None,
):
    """Primary on the spec's FM host, standby on the far corner.

    Both managers run with ``fence_ownership`` on (the primary stamps
    epoch 1; a takeover bumps past it).  The standby's request timeout
    is tightened so a heartbeat into a dead fabric fails within one
    interval.  Returns ``(setup, standby)``; the standby is built but
    not started.
    """
    if mode not in MODES:
        raise ValueError(f"unknown takeover mode {mode!r}")
    candidates = [ep for ep in spec.endpoints if ep != (spec.fm_host or "")]
    if not candidates:
        raise ValueError(
            "failover needs a second endpoint to host the standby"
        )
    options = dict(fm_options or {})
    options.setdefault("fence_ownership", True)
    setup = build_simulation(
        spec, algorithm=algorithm, timing=timing, params=params,
        manager=manager, tracer=tracer, **options,
    )
    standby_host = sorted(candidates)[-1]
    standby_class = type(setup.fm) if mode == "warm" else FabricManager
    standby_fm = standby_class(
        setup.fabric.device(standby_host),
        setup.entities[standby_host],
        timing=setup.fm.timing, algorithm=algorithm,
        auto_start=False,
        request_timeout=min(0.3e-3, heartbeat_interval / 2),
        max_retries=0,
        **options,
    )
    route = fabric_route(setup.fabric, standby_host, setup.fm.endpoint.name)
    standby = StandbyManager(
        standby_fm, primary_route=route,
        heartbeat_interval=heartbeat_interval,
        miss_threshold=miss_threshold,
        mode=mode, primary=setup.fm,
    )
    return setup, standby


def run_failover_experiment(
    spec: TopologySpec,
    algorithm: str = PARALLEL,
    seed: int = 0,
    mode: str = "warm",
    heartbeat_interval: float = DEFAULT_HEARTBEAT,
    miss_threshold: int = DEFAULT_MISS_THRESHOLD,
    faults: int = DEFAULT_FAULTS,
    mean_interval: float = DEFAULT_MEAN_INTERVAL,
    restart_primary: bool = False,
    manager: str = "partial",
    timing: Optional[ProcessingTimeModel] = None,
    params: FabricParams = DEFAULT_PARAMS,
    tracer=None,
    fm_options: Optional[dict] = None,
) -> FailoverResult:
    """One failover run: settle, churn, kill the primary, take over.

    With ``restart_primary`` the old primary's host is resurrected
    after the takeover converges, and the result records whether the
    ownership-epoch fencing demoted it.
    """
    setup, standby = build_failover_pair(
        spec, algorithm=algorithm, mode=mode,
        heartbeat_interval=heartbeat_interval,
        miss_threshold=miss_threshold, manager=manager,
        timing=timing, params=params, tracer=tracer,
        fm_options=fm_options,
    )
    primary = setup.fm
    run_until_ready(setup)
    standby.start()

    # Churn shielded from amputating either manager; FM kinds enabled
    # but drawn only via the deterministic kill below.
    injector = FaultInjector(
        setup.fabric, mean_interval=mean_interval,
        protect={primary.endpoint.name, standby.fm.endpoint.name},
        seed=seed, fm=primary, during_discovery=True,
        poll_interval=mean_interval / 40,
    )

    def on_fault(event):
        # Stamp the standby's detection-latency clock at the instant
        # the primary dies.
        if event.kind == "kill_fm":
            standby.note_primary_failure(event.time)

    injector.on_fault = on_fault
    if faults > 0:
        done = injector.run(faults=faults)
        setup.env.run(until=done)
        run_until_quiescent(setup, raise_on_abort=False)
        # Let the standby's next periodic sync fold the churned
        # topology into the mirror before the lights go out.
        setup.env.run(until=setup.env.now + 2 * standby.sync_interval)

    churn_faults = len(injector.log)
    injector.kill_fm_now()
    report = setup.env.run(until=standby.takeover_event)

    # From here the promoted standby *is* the fabric manager.
    setup.fm = standby.fm
    run_until_quiescent(setup, raise_on_abort=False)

    if restart_primary:
        injector.restore_fm_now()
        # The resurrected region's port-up events reach the new FM (its
        # takeover reprogrammed the event routes) and the old primary's
        # own entity wakes it; fencing decides who survives.
        run_until_quiescent(setup, horizon=MAX_SIM_TIME,
                            raise_on_abort=False)
        deadline = setup.env.now + 50e-3
        while (not primary.demoted and setup.env.now < deadline
               and setup.env.peek() != float("inf")):
            setup.env.run(until=setup.env.now + 5e-3)
        run_until_quiescent(setup, raise_on_abort=False)

    if tracer is not None:
        tracer.finalize(setup)
    audit = audit_topology(setup.fabric, standby.fm)
    detection = report.detection_latency
    return FailoverResult(
        topology=spec.name,
        family=spec.family,
        algorithm=algorithm,
        manager=manager,
        mode=mode,
        seed=seed,
        heartbeat_interval=heartbeat_interval,
        miss_threshold=miss_threshold,
        faults=churn_faults,
        takeover_mode=report.mode,
        missed_heartbeats=report.missed_heartbeats,
        detection_latency=detection if detection is not None else 0.0,
        recovery_time=report.recovery_time,
        repairs=report.repairs,
        mirror_syncs=standby.mirror_syncs,
        devices_recovered=report.devices_recovered,
        converged=database_matches_fabric(setup),
        audit_ok=audit.ok,
        audit_differences=len(audit.differences),
        restart_primary=restart_primary,
        old_primary_demoted=primary.demoted if restart_primary else None,
    )


def sweep_failover(
    spec: TopologySpec,
    modes: Sequence[str] = MODES,
    seeds: Iterable[int] = (0,),
    algorithm: str = PARALLEL,
    heartbeat_interval: float = DEFAULT_HEARTBEAT,
    miss_threshold: int = DEFAULT_MISS_THRESHOLD,
    faults: int = DEFAULT_FAULTS,
    mean_interval: float = DEFAULT_MEAN_INTERVAL,
    restart_primary: bool = False,
    manager: str = "partial",
    timing: Optional[ProcessingTimeModel] = None,
    workers: int = 1,
    progress: Union[bool, None] = None,
) -> List[FailoverResult]:
    """Cross takeover modes x seeds through the executor."""
    # Imported late: executor.py imports this module at load time.
    from .executor import run_many
    from .io import spec_to_dict
    from .scenario import Scenario

    spec_doc = spec_to_dict(spec)
    timing_doc = timing.to_dict() if timing is not None else None
    jobs = [
        Scenario(
            kind="failover", topology=spec_doc, algorithm=algorithm,
            manager=manager, seed=seed, timing=timing_doc,
            faults=faults, mean_interval=mean_interval,
            mode=mode, heartbeat_interval=heartbeat_interval,
            miss_threshold=miss_threshold,
            restart_primary=restart_primary,
        ).job()
        for mode in modes
        for seed in seeds
    ]
    report = run_many(jobs, workers=workers, progress=progress)
    report.raise_if_failed()
    return list(report.results)


def summarize_failover(results: Sequence[FailoverResult]) -> List[dict]:
    """Aggregate per requested mode: latency, recovery, safety."""
    groups: Dict[Tuple[str, str], List[FailoverResult]] = {}
    for result in results:
        groups.setdefault((result.mode, result.manager), []).append(result)
    rows = []
    for (mode, manager) in sorted(groups):
        bucket = groups[(mode, manager)]
        n = len(bucket)
        rows.append({
            "mode": mode,
            "manager": manager,
            "runs": n,
            "mean_detection_latency": sum(
                r.detection_latency for r in bucket
            ) / n,
            "mean_recovery_time": sum(
                r.recovery_time for r in bucket
            ) / n,
            "mean_repairs": sum(r.repairs for r in bucket) / n,
            "cold_fallbacks": sum(
                1 for r in bucket
                if r.mode == "warm" and r.takeover_mode == "cold"
            ),
            "audit_pass_rate": sum(
                1 for r in bucket if r.audit_ok
            ) / n,
            "all_converged": all(r.converged for r in bucket),
            "all_fenced": all(
                r.old_primary_demoted in (True, None) for r in bucket
            ),
        })
    return rows


def render_failover(rows: Sequence[dict], title: str = "") -> str:
    """ASCII table of :func:`summarize_failover` rows."""
    headers = ("mode", "manager", "runs", "t_detect", "t_recover",
               "repairs", "cold_fb", "audit", "converged", "fenced")
    table = render_table(headers, [
        (
            row["mode"], row["manager"], row["runs"],
            row["mean_detection_latency"], row["mean_recovery_time"],
            row["mean_repairs"], row["cold_fallbacks"],
            row["audit_pass_rate"], row["all_converged"],
            row["all_fenced"],
        )
        for row in rows
    ])
    return f"{title}\n{table}" if title else table
