"""Plain-text rendering of experiment tables and series.

The benches regenerate the paper's tables and figures as ASCII; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def format_value(value) -> str:
    """Human-friendly scalar formatting (SI-ish for small floats)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3:
            return f"{value * 1e6:.2f}u"
        if abs(value) < 1:
            return f"{value * 1e3:.3f}m"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(title: str, xlabel: str, ylabel: str,
                  series: Dict[str, List[Tuple[float, float]]]) -> str:
    """Render named (x, y) series as aligned columns.

    X values are unioned across series; missing points show as "-".
    """
    xs = sorted({x for points in series.values() for x, _ in points})
    by_name = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [xlabel] + list(series)
    rows = []
    for x in xs:
        row = [x]
        for name in series:
            y = by_name[name].get(x)
            row.append("-" if y is None else y)
        rows.append(row)
    body = render_table(headers, rows)
    return f"{title}  (y = {ylabel})\n{body}"


def render_phase_breakdown(rows: Sequence[dict], title: str = "") -> str:
    """ASCII table of per-phase discovery-time breakdowns.

    ``rows`` are :func:`repro.obs.breakdown.discovery_phase_breakdown`
    dicts; by construction ``claim + port_read + other == total``
    (route distribution runs after the measured window and is its own
    column).
    """
    headers = ("span", "algorithm", "trigger", "claim", "port_read",
               "other", "total", "coverage", "routes")
    table = render_table(headers, [
        (
            row["name"], row["algorithm"], row["trigger"],
            row["claim"], row["port_read"], row["other"], row["total"],
            f"{row['coverage'] * 100:.1f}%", row["route_distribution"],
        )
        for row in rows
    ])
    return f"{title}\n{table}" if title else table


def render_kv(title: str, mapping: Dict[str, object]) -> str:
    """Render a labelled key/value block."""
    width = max((len(k) for k in mapping), default=0)
    lines = [title]
    for key, value in mapping.items():
        lines.append(f"  {key.ljust(width)} : {format_value(value)}")
    return "\n".join(lines)
