"""Auto-shrink: reduce a failing Scenario to a minimal reproducer.

A fuzzer-found failure is only useful once a human can stare at it,
and nobody can stare at "churn, irregular-8+3, perturbed timing,
verify_sample=3, six faults".  :func:`shrink_scenario` greedily
simplifies a failing :class:`~repro.experiments.scenario.Scenario`
while an ``evaluate`` callable keeps reporting the *same* failure
reason: drop the fault plan, zero the link-error rates, strip the
timing/params/FM-option perturbations, and regenerate embedded
irregular topologies smaller (their specs record ``(num_switches,
extra_links, seed)`` in the name, so any variant is rebuildable).

The shrinker is deliberately deterministic — candidates are tried in
a fixed order, most aggressive first — so the same failure always
shrinks to the same minimal scenario, and the regression corpus the
fuzzer writes is byte-stable across runs and worker counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional, Tuple

from ..topology.irregular import make_irregular, parse_irregular_name
from .scenario import Scenario

#: An ``evaluate`` callable: run (or statically judge) a scenario and
#: return ``None`` when it passes or ``(reason, detail)`` when it
#: fails.  The fuzzing lab's :func:`repro.experiments.fuzz.
#: evaluate_scenario` is the canonical implementation.
Evaluator = Callable[[Scenario], Optional[Tuple[str, str]]]

#: Default cap on candidate evaluations per shrink.
DEFAULT_MAX_ATTEMPTS = 80


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal scenario still failing with
    the original reason, plus bookkeeping."""

    scenario: Scenario
    reason: str
    detail: str
    #: Candidate evaluations spent (accepted + rejected).
    attempts: int
    #: Greedy passes over the candidate list.
    rounds: int
    #: Accepted simplification steps.
    steps: int


def _canonical(scenario: Scenario) -> str:
    return json.dumps(scenario.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def _irregular_candidates(topology: dict) -> Iterator[dict]:
    """Smaller regenerations of an embedded irregular topology."""
    recorded = parse_irregular_name(topology.get("name", ""))
    if recorded is None:
        return
    num_switches, extra_links, seed = recorded
    switches = topology.get("switches") or []
    ports = switches[0][1] if switches else 16
    ladder = [
        (2, 0),
        (max(2, num_switches // 2), 0),
        (num_switches - 1, min(extra_links, num_switches - 2)),
        (num_switches, 0),
        (num_switches, extra_links - 1),
    ]
    seen = set()
    for n, e in ladder:
        if n < 1 or e < 0 or (n, e) == (num_switches, extra_links):
            continue
        if n > num_switches or e > extra_links:
            continue
        if (n, e) in seen:
            continue
        seen.add((n, e))
        from .io import spec_to_dict
        yield spec_to_dict(make_irregular(
            n, extra_links=e, switch_ports=ports, seed=seed,
        ))


def _smaller_table1(name: str) -> List[str]:
    """Table 1 topologies strictly smaller than ``name``, ascending."""
    from ..topology.table1 import TABLE1_NAMES, table1_topology
    try:
        size = table1_topology(name).total_devices
    except ValueError:
        return []
    smaller = [
        other for other in TABLE1_NAMES
        if table1_topology(other).total_devices < size
    ]
    smaller.sort(key=lambda other: table1_topology(other).total_devices)
    return smaller


def shrink_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Simplified variants of ``scenario``, most aggressive first.

    Every yielded candidate is a *valid* scenario (construction errors
    are swallowed); whether it still reproduces the failure is for the
    caller's ``evaluate`` to decide.
    """

    def attempt(**changes) -> Optional[Scenario]:
        try:
            return replace(scenario, **changes)
        except (ValueError, TypeError):
            return None

    candidates: List[Optional[Scenario]] = []

    # 1. Shrink the topology (the biggest reduction in run cost).
    if isinstance(scenario.topology, dict):
        for document in _irregular_candidates(scenario.topology):
            candidates.append(attempt(topology=document))
    else:
        for name in _smaller_table1(scenario.topology):
            candidates.append(attempt(topology=name))

    # 2. Drop faults from the churn (or pre-kill failover) plan.
    if scenario.kind in ("churn", "failover"):
        if scenario.kind == "churn":
            from .churn import DEFAULT_FAULTS
            default_faults = DEFAULT_FAULTS
        else:
            from .failover import DEFAULT_FAULTS as default_faults
        effective = (default_faults if scenario.faults is None
                     else scenario.faults)
        if scenario.kind == "failover" and effective >= 1:
            # A kill with no preceding churn at all is the simplest
            # failover there is.
            candidates.append(attempt(faults=0))
        for fewer in (1, effective // 2, effective - 1):
            if 1 <= fewer < effective:
                candidates.append(attempt(faults=fewer))

    # 3. Calm the channel: drop the params document, zero the error
    #    rates, then halve each nonzero rate.
    if scenario.params is not None:
        candidates.append(attempt(params=None))
        rates = ("bit_error_rate", "packet_loss_rate", "duplicate_rate")
        lossy = [r for r in rates if scenario.params.get(r, 0.0) > 0.0]
        if lossy:
            calmed = dict(scenario.params)
            for rate in lossy:
                calmed[rate] = 0.0
            candidates.append(attempt(params=calmed))
            for rate in lossy:
                halved = dict(scenario.params)
                halved[rate] = scenario.params[rate] / 2.0
                candidates.append(attempt(params=halved))

    # 4. Quiet the traffic plane: first kill the workload outright
    #    (a load failure that survives with no traffic is a plain
    #    change bug), then calm it — lighter load, steady arrivals,
    #    uniform destinations.
    if scenario.traffic is not None:
        candidates.append(attempt(traffic=None))
        calmer = dict(scenario.traffic)
        if calmer.get("load", 0) > 0.3:
            candidates.append(attempt(
                traffic={**calmer, "load": 0.3}))
        if calmer.get("arrival", "poisson") != "constant":
            candidates.append(attempt(
                traffic={**calmer, "arrival": "constant"}))
        if calmer.get("pattern", "uniform") != "uniform":
            candidates.append(attempt(
                traffic={**calmer, "pattern": "uniform"}))

    # 5. Strip the perturbations and optional knobs.
    if scenario.timing is not None:
        candidates.append(attempt(timing=None))
    if scenario.fm_options is not None:
        candidates.append(attempt(fm_options=None))
        if len(scenario.fm_options) > 1:
            for key in sorted(scenario.fm_options):
                trimmed = {k: v for k, v in scenario.fm_options.items()
                           if k != key}
                candidates.append(attempt(fm_options=trimmed))
    for knob in ("max_retries", "mean_interval", "verify_sample",
                 "max_discovery_restarts", "restart_backoff",
                 "heartbeat_interval", "miss_threshold",
                 "restart_primary"):
        if getattr(scenario, knob) is not None:
            candidates.append(attempt(**{knob: None}))

    # 6. Normalize the change kind and the seed.
    if scenario.change == "add_switch":
        candidates.append(attempt(change="remove_switch"))
    if scenario.seed != 0:
        candidates.append(attempt(seed=0))

    for candidate in candidates:
        if candidate is not None and candidate != scenario:
            yield candidate


def shrink_scenario(
    scenario: Scenario,
    reason: str,
    detail: str,
    evaluate: Evaluator,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> ShrinkResult:
    """Greedily minimize ``scenario`` while ``evaluate`` still fails
    it with ``reason``.

    Each round walks the candidate list in order and restarts from the
    first accepted simplification; the loop ends at a fixpoint (no
    candidate reproduces the failure) or after ``max_attempts``
    candidate evaluations.  A candidate failing with a *different*
    reason is rejected — the minimal scenario must reproduce the
    original failure, not merely some failure.
    """
    current, current_detail = scenario, detail
    attempts = rounds = steps = 0
    tried = {_canonical(scenario)}
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        rounds += 1
        for candidate in shrink_candidates(current):
            if attempts >= max_attempts:
                break
            key = _canonical(candidate)
            if key in tried:
                continue
            tried.add(key)
            attempts += 1
            try:
                verdict = evaluate(candidate)
            except Exception as exc:  # an evaluator must not abort a shrink
                verdict = (f"error:{type(exc).__name__}", str(exc))
            if verdict is not None and verdict[0] == reason:
                current, current_detail = candidate, verdict[1]
                steps += 1
                improved = True
                break
    return ShrinkResult(scenario=current, reason=reason,
                        detail=current_detail, attempts=attempts,
                        rounds=rounds, steps=steps)
