"""Experiment harness: runners, sweeps, and per-figure builders."""

from .ascii_plot import render_plot
from .churn import (
    ChurnResult,
    render_churn,
    run_churn_experiment,
    run_until_quiescent,
    summarize_churn,
    sweep_churn,
)
from .executor import (
    Job,
    RunFailure,
    SweepError,
    SweepReport,
    change_job,
    churn_job,
    initial_job,
    reliability_job,
    run_many,
    run_sweep,
)
from .io import load_results, load_spec, save_results, save_spec
from .reliability import (
    DEFAULT_BIT_ERROR_RATES,
    ReliabilityResult,
    render_reliability,
    run_reliability_experiment,
    summarize_reliability,
    sweep_reliability,
)
from .report import render_kv, render_phase_breakdown, render_series, \
    render_table
from .runner import (
    ExperimentResult,
    SimulationSetup,
    build_simulation,
    database_matches_fabric,
    run_change_experiment,
    run_until_discovery_count,
    run_until_ready,
)
from .scenario import Scenario, run_scenario
from .sweep import (
    DEVICE_FACTORS,
    FM_FACTORS,
    fig4_measurements,
    measure_initial_discovery,
    sweep_change_experiments,
    sweep_device_factor,
    sweep_fm_factor,
)

__all__ = [
    "ChurnResult",
    "churn_job",
    "render_churn",
    "run_churn_experiment",
    "run_until_quiescent",
    "summarize_churn",
    "sweep_churn",
    "DEFAULT_BIT_ERROR_RATES",
    "DEVICE_FACTORS",
    "Job",
    "ReliabilityResult",
    "reliability_job",
    "render_reliability",
    "run_reliability_experiment",
    "summarize_reliability",
    "sweep_reliability",
    "RunFailure",
    "SweepError",
    "SweepReport",
    "change_job",
    "initial_job",
    "run_many",
    "run_sweep",
    "load_results",
    "load_spec",
    "render_kv",
    "render_phase_breakdown",
    "render_plot",
    "render_series",
    "render_table",
    "Scenario",
    "run_scenario",
    "save_results",
    "save_spec",
    "ExperimentResult",
    "FM_FACTORS",
    "SimulationSetup",
    "build_simulation",
    "database_matches_fabric",
    "fig4_measurements",
    "measure_initial_discovery",
    "run_change_experiment",
    "run_until_discovery_count",
    "run_until_ready",
    "sweep_change_experiments",
    "sweep_device_factor",
    "sweep_fm_factor",
]
