"""Churn soak: discovery convergence under mid-walk topology churn.

The paper's change-assimilation protocol injects exactly one change,
and only after the fabric has settled.  A production fabric misbehaves
*while* the FM is walking it: a switch dies between its general-info
read and its port reads, a link flaps under a route the walker already
recorded, a second change lands before the rediscovery for the first
one finished.  This experiment drives that regime and measures whether
the hardened FM (bounded restart/repair policy, convergence guard,
consistency auditor — see :mod:`repro.manager.consistency`) always
terminates and actually converges to the true topology.

One run = transient period, then a seeded burst of faults preferring
mid-discovery instants (:class:`repro.workloads.faults.FaultInjector`
in ``during_discovery`` mode), then run-to-quiescence and a full
:class:`~repro.manager.consistency.TopologyAuditor` audit.  The sweep
crosses algorithms x seeds and fans out over the process-parallel
executor; every run derives all randomness from its own seed, so the
results are bit-identical regardless of worker scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..fabric.params import DEFAULT_PARAMS, FabricParams
from ..manager.consistency import audit_topology
from ..manager.fm import DiscoveryAborted
from ..manager.timing import ALGORITHMS, PARALLEL, ProcessingTimeModel
from ..topology.spec import TopologySpec
from ..workloads.faults import FaultInjector
from .report import render_table
from .runner import (
    MAX_SIM_TIME,
    SimulationSetup,
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)

#: Faults injected per soak run by default.
DEFAULT_FAULTS = 6

#: Mean seconds between faults.  Deliberately of the same order as one
#: discovery on the small meshes (~2-3 ms), so consecutive faults
#: routinely overlap a running walk even before the injector's
#: mid-discovery hold kicks in.
DEFAULT_MEAN_INTERVAL = 2e-3

#: Convergence-guard sample size used for churn runs (the guard is the
#: feature under test here; the paper-faithful experiments keep it 0).
DEFAULT_VERIFY_SAMPLE = 3


def _fm_quiet(fm) -> bool:
    return not (
        fm.is_discovering or getattr(fm, "is_assimilating", False)
    )


def run_until_quiescent(
    setup: SimulationSetup,
    horizon: float = MAX_SIM_TIME,
    poll: float = 5e-3,
    settle: float = 20e-3,
    raise_on_abort: bool = True,
):
    """Run until the FM is idle with its event routes programmed.

    Unlike :func:`~repro.experiments.runner.run_until_ready` this keeps
    going through *chains* of automatic restarts/repairs: it returns
    only when no discovery or assimilation burst is in flight and the
    current ``ready_event`` has triggered — and that state has held
    for ``settle`` seconds (an idle-looking FM may have a PI-5 event
    packet still in flight toward it) or the event heap has drained
    entirely.  The bounded restart policy guarantees that state is
    reached; ``raise_on_abort`` controls whether exhausting the budget
    surfaces as :class:`~repro.manager.fm.DiscoveryAborted` or is left
    to the caller to read from the returned stats.

    Returns the stats of the last completed discovery.
    """
    env, fm = setup.env, setup.fm
    deadline = env.now + horizon
    quiet_since = None
    while True:
        ready = fm.ready_event is not None and fm.ready_event.triggered
        if _fm_quiet(fm) and ready and fm.history:
            if env.peek() == float("inf"):
                break
            if quiet_since is None:
                quiet_since = env.now
            elif env.now - quiet_since >= settle:
                break
        else:
            quiet_since = None
        if env.now >= deadline:
            raise TimeoutError(
                f"fabric not quiescent within {horizon} s of simulated "
                f"time"
            )
        env.run(until=min(env.now + poll, deadline))
    stats = fm.history[-1]
    if raise_on_abort and stats.aborted:
        raise DiscoveryAborted(
            f"restart budget ({fm.max_discovery_restarts}) exhausted "
            f"after {len(fm.history)} discoveries"
        )
    return stats


@dataclass
class ChurnResult:
    """Outcome of one churn soak run."""

    topology: str
    family: str
    algorithm: str
    manager: str
    seed: int
    #: Faults injected / how many landed while the FM was mid-walk.
    faults: int
    mid_discovery_faults: int
    #: Completed discoveries (initial + assimilations + restarts).
    discoveries: int
    #: Automatic full restarts taken by the bounded policy.
    restarts: int
    #: Targeted subtree repairs that avoided a full rediscovery.
    repairs: int
    #: Non-initial full walks (change assimilations + restarts).
    full_rediscoveries: int
    #: Partial-assimilation bursts (0 under the ``"full"`` manager).
    partial_bursts: int
    #: Convergence-guard re-reads issued / mismatches they caught.
    guard_probes: int
    guard_mismatches: int
    #: Runs that exhausted the restart budget (terminated, not hung).
    aborted_runs: int
    #: Seconds from the last injected fault to the end of the last
    #: discovery (0 if the FM was already converged when it landed).
    time_to_converge: float
    #: Database equals the reachable ground truth (graph comparison).
    converged: bool
    #: The consistency auditor found zero differences.
    audit_ok: bool
    audit_differences: int
    devices_found: int

    def asdict(self) -> dict:
        return {
            "topology": self.topology,
            "family": self.family,
            "algorithm": self.algorithm,
            "manager": self.manager,
            "seed": self.seed,
            "faults": self.faults,
            "mid_discovery_faults": self.mid_discovery_faults,
            "discoveries": self.discoveries,
            "restarts": self.restarts,
            "repairs": self.repairs,
            "full_rediscoveries": self.full_rediscoveries,
            "partial_bursts": self.partial_bursts,
            "guard_probes": self.guard_probes,
            "guard_mismatches": self.guard_mismatches,
            "aborted_runs": self.aborted_runs,
            "time_to_converge": self.time_to_converge,
            "converged": self.converged,
            "audit_ok": self.audit_ok,
            "audit_differences": self.audit_differences,
            "devices_found": self.devices_found,
        }


def run_churn_experiment(
    spec: TopologySpec,
    algorithm: str = PARALLEL,
    seed: int = 0,
    faults: int = DEFAULT_FAULTS,
    mean_interval: float = DEFAULT_MEAN_INTERVAL,
    manager: str = "full",
    timing: Optional[ProcessingTimeModel] = None,
    params: FabricParams = DEFAULT_PARAMS,
    verify_sample: int = DEFAULT_VERIFY_SAMPLE,
    max_discovery_restarts: int = 8,
    restart_backoff: float = 0.0,
    tracer=None,
    fm_options: Optional[dict] = None,
) -> ChurnResult:
    """One churn soak: settle, inject ``faults`` mid-walk changes,
    run to quiescence, audit.

    ``seed`` drives both the fault schedule and the convergence-guard
    sampling, so two runs with the same arguments are bit-for-bit
    identical regardless of which sweep worker executes them.
    ``fm_options`` are extra keyword arguments for the FM constructor
    (ablation switches).
    """
    setup = build_simulation(
        spec, algorithm=algorithm, timing=timing, params=params,
        manager=manager,
        max_discovery_restarts=max_discovery_restarts,
        restart_backoff=restart_backoff,
        verify_sample=verify_sample,
        verify_seed=seed,
        tracer=tracer,
        **dict(fm_options or {}),
    )
    run_until_ready(setup)

    # Protecting the FM's endpoint also shields its attachment
    # switches and their links (see FaultInjector), so churn can never
    # amputate the manager itself.
    injector = FaultInjector(
        setup.fabric, mean_interval=mean_interval,
        protect={setup.fm.endpoint.name}, seed=seed,
        fm=setup.fm, during_discovery=True,
        # Partial-assimilation bursts are much shorter than a full
        # walk; a fine hold-poll is needed to catch one in flight.
        poll_interval=mean_interval / 40,
    )
    done = injector.run(faults=faults)
    setup.env.run(until=done)
    run_until_quiescent(setup, raise_on_abort=False)

    fm = setup.fm
    if tracer is not None:
        tracer.finalize(setup)
    last_fault = injector.log[-1].time if injector.log else 0.0
    time_to_converge = max(0.0, fm.history[-1].finished_at - last_fault)
    report = audit_topology(setup.fabric, fm)
    return ChurnResult(
        topology=spec.name,
        family=spec.family,
        algorithm=algorithm,
        manager=manager,
        seed=seed,
        faults=len(injector.log),
        mid_discovery_faults=injector.mid_discovery_faults,
        discoveries=len(fm.history),
        restarts=fm.counters["discovery_restarts"],
        repairs=fm.counters["subtree_repairs"],
        full_rediscoveries=sum(
            1 for s in fm.history[1:] if s.algorithm != "partial"
        ),
        partial_bursts=sum(
            1 for s in fm.history if s.algorithm == "partial"
        ),
        guard_probes=fm.counters["guard_probes"],
        guard_mismatches=fm.counters["guard_mismatches"],
        aborted_runs=sum(1 for s in fm.history if s.aborted),
        time_to_converge=time_to_converge,
        converged=database_matches_fabric(setup),
        audit_ok=report.ok,
        audit_differences=len(report.differences),
        devices_found=len(fm.database),
    )


def sweep_churn(
    spec: TopologySpec,
    algorithms: Sequence[str] = ALGORITHMS,
    seeds: Iterable[int] = (0,),
    faults: int = DEFAULT_FAULTS,
    mean_interval: float = DEFAULT_MEAN_INTERVAL,
    manager: str = "full",
    timing: Optional[ProcessingTimeModel] = None,
    verify_sample: int = DEFAULT_VERIFY_SAMPLE,
    workers: int = 1,
    progress: Union[bool, None] = None,
) -> List[ChurnResult]:
    """Cross algorithms x seeds through the executor.

    Results come back in job-submission order (algorithm-major, then
    seed) — identical to a serial sweep.
    """
    # Imported late: executor.py imports this module at load time.
    from .executor import run_many
    from .io import spec_to_dict
    from .scenario import Scenario

    spec_doc = spec_to_dict(spec)
    timing_doc = timing.to_dict() if timing is not None else None
    jobs = [
        Scenario(
            kind="churn", topology=spec_doc, algorithm=algorithm,
            manager=manager, seed=seed, timing=timing_doc,
            faults=faults, mean_interval=mean_interval,
            verify_sample=verify_sample,
        ).job()
        for algorithm in algorithms
        for seed in seeds
    ]
    report = run_many(jobs, workers=workers, progress=progress)
    report.raise_if_failed()
    return list(report.results)


def summarize_churn(results: Sequence[ChurnResult]) -> List[dict]:
    """Aggregate per (manager, algorithm): recovery work, convergence
    latency, and the audit pass rate."""
    groups: Dict[Tuple[str, str], List[ChurnResult]] = {}
    for result in results:
        groups.setdefault(
            (result.manager, result.algorithm), []
        ).append(result)
    rows = []
    for (manager, algorithm) in sorted(groups):
        bucket = groups[(manager, algorithm)]
        n = len(bucket)
        rows.append({
            "manager": manager,
            "algorithm": algorithm,
            "runs": n,
            "mean_faults": sum(r.faults for r in bucket) / n,
            "mean_mid_discovery": sum(
                r.mid_discovery_faults for r in bucket
            ) / n,
            "mean_restarts": sum(r.restarts for r in bucket) / n,
            "mean_repairs": sum(r.repairs for r in bucket) / n,
            "mean_time_to_converge": sum(
                r.time_to_converge for r in bucket
            ) / n,
            "aborted_runs": sum(r.aborted_runs for r in bucket),
            "audit_pass_rate": sum(
                1 for r in bucket if r.audit_ok
            ) / n,
            "all_converged": all(r.converged for r in bucket),
        })
    return rows


def render_churn(rows: Sequence[dict], title: str = "") -> str:
    """ASCII table of :func:`summarize_churn` rows."""
    headers = ("manager", "algorithm", "runs", "mid-walk", "restarts",
               "repairs", "t_converge", "aborted", "audit", "converged")
    table = render_table(headers, [
        (
            row["manager"], row["algorithm"], row["runs"],
            row["mean_mid_discovery"], row["mean_restarts"],
            row["mean_repairs"], row["mean_time_to_converge"],
            row["aborted_runs"], row["audit_pass_rate"],
            row["all_converged"],
        )
        for row in rows
    ])
    return f"{title}\n{table}" if title else table
