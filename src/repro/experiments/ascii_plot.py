"""Dependency-free ASCII plots of experiment series.

The figure benches print their data both as aligned columns
(:mod:`repro.experiments.report`) and as a scatter plot so the *shape*
of each reproduced figure — who wins, how gaps scale, where knees sit —
is visible directly in a terminal or CI log.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

#: Series markers, assigned in definition order.
MARKERS = "*+ox#@%&"


def _nice_number(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude < 1e-3 or magnitude >= 1e4:
        return f"{value:.2e}"
    return f"{value:.4g}"


def render_plot(
    title: str,
    xlabel: str,
    ylabel: str,
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    logy: bool = False,
) -> str:
    """Scatter-plot named ``(x, y)`` series on a character grid.

    Overlapping points from different series show the marker of the
    later series (legend order breaks ties, like overplotting).
    """
    if width < 16 or height < 6:
        raise ValueError("plot area too small")
    points = [
        (x, y) for pts in series.values() for x, y in pts
    ]
    if not points:
        raise ValueError("nothing to plot")
    if logy and any(y <= 0 for _x, y in points):
        raise ValueError("log scale requires positive y values")

    xs = [x for x, _y in points]
    ys = [math.log10(y) if logy else y for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(MARKERS, series.items()):
        for x, y in pts:
            yy = math.log10(y) if logy else y
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((yy - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    y_top = _nice_number(10 ** y_hi if logy else y_hi)
    y_bot = _nice_number(10 ** y_lo if logy else y_lo)
    label_width = max(len(y_top), len(y_bot))

    lines = [title]
    scale = " (log y)" if logy else ""
    lines.append(f"{ylabel}{scale}")
    for i, row in enumerate(grid):
        if i == 0:
            label = y_top.rjust(label_width)
        elif i == height - 1:
            label = y_bot.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    x_lo_s, x_hi_s = _nice_number(x_lo), _nice_number(x_hi)
    pad = width - len(x_lo_s) - len(x_hi_s)
    lines.append(
        f"{' ' * label_width}  {x_lo_s}{' ' * max(1, pad)}{x_hi_s}"
    )
    lines.append(f"{' ' * label_width}  ({xlabel})")
    legend = "   ".join(
        f"{marker} {name}" for marker, name in zip(MARKERS, series)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)
