"""Load sweep: discovery and change detection under application traffic.

The paper's results were "obtained without considering application
traffic into the network", on the claim that the management packets'
higher priority makes load irrelevant (section 4.1).  This experiment
family tests the claim: it runs the paper's change-assimilation
protocol (settle, remove a switch, measure detection and rediscovery)
while a :class:`~repro.workloads.traffic.TrafficGenerator` keeps every
endpoint injecting application traffic, and compares against the idle
baseline of the *same seed* — so the victim switch, the walk order,
and every management decision are identical and the only variable is
the traffic.

The sweep crosses offered load with the TC→VC mapping:

* ``"bvc"`` — the ASI arrangement the paper assumes: application TCs
  ride VC0, the management TC rides the strict-priority bypass VC1;
* ``"mixed"`` — every TC on VC0, so management packets queue behind
  application packets (what happens on a fabric without bypass VCs).

Measured per run: initial discovery time, PI-5 change-detection
latency (fault to first accepted PI-5 event at the FM), assimilation
time, delivered application throughput, and whether the final
database still matches ground truth.  A load-0 run draws no RNG and
schedules no traffic processes, so it is bit-identical to the plain
``change`` scenario — the golden tests hold it to that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..fabric.params import DEFAULT_PARAMS, FabricParams
from ..manager.timing import PARALLEL, ProcessingTimeModel
from ..topology.spec import TopologySpec
from ..workloads.traffic import TrafficGenerator, TrafficSpec
from .report import render_table
from .runner import (
    _removable_switches,
    build_simulation,
    database_matches_fabric,
    run_until_discovery_count,
    run_until_ready,
)

#: The two TC→VC mappings the sweep compares.  ``bvc`` is the fabric
#: default (management bypasses application traffic on VC1); ``mixed``
#: forces every traffic class onto one VC so management contends.
TC_MAPPINGS: Dict[str, Tuple[int, ...]] = {
    "bvc": (0, 0, 0, 0, 1, 1, 1, 1),
    "mixed": (0, 0, 0, 0, 0, 0, 0, 0),
}

#: Offered loads swept by default (0 is the baseline the inflation
#: factors are computed against).
DEFAULT_LOADS: Tuple[float, ...] = (0.0, 0.3, 0.6, 0.9)


def mapping_label(params: FabricParams) -> str:
    """Name ``params``'s TC→VC mapping (``bvc``/``mixed``/``custom``)."""
    mapping = tuple(params.tc_vc_map)
    for label, candidate in TC_MAPPINGS.items():
        if mapping == candidate:
            return label
    return "custom"


@dataclass
class LoadResult:
    """Outcome of one change-assimilation run under traffic."""

    topology: str
    family: str
    algorithm: str
    seed: int
    offered_load: float
    mapping: str
    arrival: str
    pattern: str
    change: str
    changed_device: str
    #: Initial discovery time, with the traffic already flowing.
    discovery_time: float
    #: Fault to the first accepted PI-5 event at the FM (``None`` if
    #: the change produced no PI-5 — it always should).
    detection_latency: Optional[float]
    #: Duration of the change-assimilation discovery.
    assimilation_time: float
    packets_injected: int
    packets_delivered: int
    #: Delivered application goodput over the whole run (bytes/s of
    #: payload; 0 for the idle baseline).
    delivered_bytes_per_s: float
    #: Mean source-to-sink delivery latency of application packets.
    mean_delivery_latency: Optional[float]
    database_correct: bool

    def asdict(self) -> dict:
        return {
            "topology": self.topology,
            "family": self.family,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "offered_load": self.offered_load,
            "mapping": self.mapping,
            "arrival": self.arrival,
            "pattern": self.pattern,
            "change": self.change,
            "changed_device": self.changed_device,
            "discovery_time": self.discovery_time,
            "detection_latency": self.detection_latency,
            "assimilation_time": self.assimilation_time,
            "packets_injected": self.packets_injected,
            "packets_delivered": self.packets_delivered,
            "delivered_bytes_per_s": self.delivered_bytes_per_s,
            "mean_delivery_latency": self.mean_delivery_latency,
            "database_correct": self.database_correct,
        }


def run_load_experiment(
    spec: TopologySpec,
    algorithm: str = PARALLEL,
    traffic: Optional[TrafficSpec] = None,
    seed: int = 0,
    manager: str = "full",
    timing: Optional[ProcessingTimeModel] = None,
    params: FabricParams = DEFAULT_PARAMS,
    change: Optional[str] = None,
    tracer=None,
    fm_options: Optional[dict] = None,
) -> LoadResult:
    """The paper's change protocol, with application traffic flowing.

    The control flow — and, critically, the RNG draw order — mirrors
    the plain ``change`` scenario exactly: the victim switch is drawn
    from the same ``random.Random(seed)`` stream before the traffic
    generator (seeded separately, also from ``seed``) touches any
    randomness.  With ``traffic`` absent or at load 0 the run is
    event-for-event identical to ``Scenario(kind="change").run()``.
    """
    change = change or "remove_switch"
    rng = random.Random(seed)
    setup = build_simulation(
        spec, algorithm=algorithm, timing=timing, params=params,
        manager=manager, tracer=tracer, **dict(fm_options or {}),
    )
    candidates = _removable_switches(setup)
    if not candidates:
        raise ValueError(f"{spec.name}: no switch eligible for the change")
    victim = rng.choice(candidates)
    if change == "add_switch":
        setup.fabric.remove_device(victim)

    generator = None
    if traffic is not None and traffic.enabled:
        generator = TrafficGenerator(setup.fabric, traffic, seed=seed)
        generator.attach_sinks(setup.entities)
        generator.start()

    # PI-5 arrival times at the FM, for the detection-latency clock.
    # A listener is a pure callback: it cannot perturb the simulation.
    pi5_times: List[float] = []
    setup.fm.pi5_listeners.append(
        lambda event: pi5_times.append(setup.env.now)
    )

    # Transient period: initial discovery + event-route programming,
    # with the traffic (if any) already contending for the links.
    initial = run_until_ready(setup)

    fault_time = setup.env.now
    pi5_times.clear()
    if change == "remove_switch":
        setup.fabric.remove_device(victim)
    else:
        setup.fabric.restore_device(victim)

    assimilation = run_until_discovery_count(setup, 2)
    setup.env.run(until=setup.fm.ready_event)
    if generator is not None:
        generator.stop()
    if tracer is not None:
        tracer.finalize(setup)

    detection = pi5_times[0] - fault_time if pi5_times else None
    traffic_stats = generator.stats() if generator is not None else {}
    delivered = traffic_stats.get("packets_delivered", 0)
    latency = None
    if delivered:
        latency = (
            traffic_stats.get("latency_ns_total", 0) / delivered / 1e9
        )
    return LoadResult(
        topology=spec.name,
        family=spec.family,
        algorithm=algorithm,
        seed=seed,
        offered_load=traffic.load if traffic is not None else 0.0,
        mapping=mapping_label(params),
        arrival=traffic.arrival if traffic is not None else "poisson",
        pattern=traffic.pattern if traffic is not None else "uniform",
        change=change,
        changed_device=victim,
        discovery_time=initial.discovery_time,
        detection_latency=detection,
        assimilation_time=assimilation.discovery_time,
        packets_injected=traffic_stats.get("packets_injected", 0),
        packets_delivered=delivered,
        delivered_bytes_per_s=traffic_stats.get(
            "delivered_bytes_per_s", 0.0),
        mean_delivery_latency=latency,
        database_correct=database_matches_fabric(setup),
    )


def sweep_load(
    spec: TopologySpec,
    loads: Sequence[float] = DEFAULT_LOADS,
    mappings: Sequence[str] = ("bvc", "mixed"),
    algorithms: Sequence[str] = (PARALLEL,),
    seeds: Iterable[int] = (0,),
    arrival: str = "poisson",
    pattern: str = "uniform",
    base_params: FabricParams = DEFAULT_PARAMS,
    timing: Optional[ProcessingTimeModel] = None,
    workers: int = 1,
    progress: Union[bool, None] = None,
) -> List[LoadResult]:
    """Cross mappings x loads x algorithms x seeds via the executor.

    Results come back in job-submission order (mapping-major, then
    load, then algorithm, then seed) — identical to a serial sweep.
    Always include load 0 in ``loads``: it is the baseline the
    inflation factors in :func:`summarize_load` divide by.
    """
    # Imported late: executor.py imports this module at load time.
    from .executor import run_many
    from .io import spec_to_dict
    from .scenario import Scenario

    spec_doc = spec_to_dict(spec)
    timing_doc = timing.to_dict() if timing is not None else None
    jobs = []
    for mapping in mappings:
        if mapping not in TC_MAPPINGS:
            raise ValueError(
                f"unknown TC mapping {mapping!r} "
                f"(expected one of {tuple(TC_MAPPINGS)})"
            )
        params_doc = replace(
            base_params, tc_vc_map=TC_MAPPINGS[mapping]
        ).to_dict()
        for load in loads:
            traffic_doc = None
            if load > 0:
                traffic_doc = TrafficSpec(
                    load=load, arrival=arrival, pattern=pattern,
                ).to_dict()
            for algorithm in algorithms:
                for seed in seeds:
                    jobs.append(Scenario(
                        kind="load", topology=spec_doc,
                        algorithm=algorithm, seed=seed,
                        timing=timing_doc, params=params_doc,
                        traffic=traffic_doc,
                    ).job())
    report = run_many(jobs, workers=workers, progress=progress)
    report.raise_if_failed()
    return list(report.results)


def summarize_load(results: Sequence[LoadResult]) -> List[dict]:
    """Inflation vs the idle baseline per (mapping, algorithm, load).

    Each row's ``discovery_inflation`` / ``detection_inflation`` is
    the mean over that bucket divided by the same (mapping, algorithm)
    bucket at load 0 (``None`` when no baseline was swept).
    """
    groups: Dict[Tuple[str, str, float], List[LoadResult]] = {}
    for result in results:
        groups.setdefault(
            (result.mapping, result.algorithm, result.offered_load), []
        ).append(result)

    def mean(values: List[Optional[float]]) -> Optional[float]:
        present = [v for v in values if v is not None]
        return sum(present) / len(present) if present else None

    baselines: Dict[Tuple[str, str], Tuple] = {}
    for (mapping, algorithm, load), bucket in groups.items():
        if load == 0:
            baselines[(mapping, algorithm)] = (
                mean([r.discovery_time for r in bucket]),
                mean([r.detection_latency for r in bucket]),
            )

    rows = []
    for (mapping, algorithm, load) in sorted(groups):
        bucket = groups[(mapping, algorithm, load)]
        t_disc = mean([r.discovery_time for r in bucket])
        t_detect = mean([r.detection_latency for r in bucket])
        base = baselines.get((mapping, algorithm))

        def inflate(value, baseline):
            if value is None or not baseline:
                return None
            return value / baseline

        rows.append({
            "mapping": mapping,
            "algorithm": algorithm,
            "offered_load": load,
            "runs": len(bucket),
            "mean_discovery_time": t_disc,
            "discovery_inflation": (
                inflate(t_disc, base[0]) if base else None
            ),
            "mean_detection_latency": t_detect,
            "detection_inflation": (
                inflate(t_detect, base[1]) if base else None
            ),
            "mean_delivered_bytes_per_s": mean(
                [r.delivered_bytes_per_s for r in bucket]
            ),
            "all_correct": all(r.database_correct for r in bucket),
        })
    return rows


def _fmt(value, precision=3, suffix="") -> str:
    if value is None:
        return "-"
    return f"{value:.{precision}g}{suffix}"


def render_load(rows: Sequence[dict], title: str = "") -> str:
    """ASCII table of :func:`summarize_load` rows."""
    headers = ("mapping", "algorithm", "load", "runs", "mean t_disc",
               "t_disc infl", "mean t_detect", "t_detect infl",
               "goodput B/s", "correct")
    table = render_table(headers, [
        (
            row["mapping"], row["algorithm"],
            f"{row['offered_load']:.0%}", row["runs"],
            _fmt(row["mean_discovery_time"], 4),
            _fmt(row["discovery_inflation"], 3, "x"),
            _fmt(row["mean_detection_latency"], 4),
            _fmt(row["detection_inflation"], 3, "x"),
            _fmt(row["mean_delivered_bytes_per_s"], 4),
            row["all_correct"],
        )
        for row in rows
    ])
    return f"{title}\n{table}" if title else table
