"""The unified Scenario API: one typed description per experiment run.

Every experiment entry point in this repository answers the same
question — *run one described simulation and measure it* — but they
historically grew separate signatures (``run_change_experiment``,
``reliability_job``, ``churn_job``...).  :class:`Scenario` is the one
typed description they all share now:

* a **topology** (a Table 1 name/alias, or a portable spec document),
* the **fabric parameters** (including the link error model),
* the **manager flavour** and **discovery algorithm**,
* the **fault plan** (change kind, churn schedule), and
* the **seed** every bit of per-run randomness derives from.

``Scenario.run()`` executes it; ``Scenario.job()`` turns it into a
spawn-safe :class:`~repro.experiments.executor.Job` for the parallel
executor (which routes *all* job kinds back through
:func:`run_scenario`, so a sweep and a single run share one code
path).  ``to_dict``/``from_dict`` round-trip losslessly and reject
unknown keys, so an archived sweep configuration cannot silently drop
a misspelled error-model field.

The legacy shim entry points (``run_change_experiment``,
``reliability_job``, ``churn_job``) have been removed; everything
routes through here now.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Any, Optional, Union

from ..fabric.params import DEFAULT_PARAMS, FabricParams
from ..manager.timing import ALGORITHMS, PARALLEL, ProcessingTimeModel
from ..topology.spec import TopologySpec
from .runner import (
    MANAGER_KINDS,
    ExperimentResult,
    _removable_switches,
    build_simulation,
    database_matches_fabric,
    run_until_discovery_count,
    run_until_ready,
)

#: Recognised scenario kinds.
KINDS = ("discover", "change", "reliability", "churn", "failover",
         "load")

#: Change kinds of the ``"change"`` scenario.
CHANGE_KINDS = ("remove_switch", "add_switch")

_SCHEMA = "repro/scenario/v1"

#: Algorithm keys accepted beside the three full-discovery ones
#: (``partial`` only labels stats; the manager field selects it).
_ALGORITHM_KEYS = tuple(ALGORITHMS)


def _normalize_document(value):
    """Deep copy of a JSON-ish document with tuples lowered to lists.

    Stored scenario documents must already be in JSON normal form so
    ``Scenario.from_dict(json.loads(json.dumps(s.to_dict()))) == s``
    holds for every field — a spec document hand-built with tuple
    links must compare equal to its archived round trip.  The deep
    copy also severs every reference to caller-owned containers, so
    neither mutating the input afterwards nor mutating a rendered
    document can corrupt a frozen scenario.
    """
    if isinstance(value, dict):
        return {key: _normalize_document(v) for key, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize_document(v) for v in value]
    return value


@dataclass(frozen=True)
class Scenario:
    """A complete, portable description of one experiment run.

    Attributes
    ----------
    kind:
        ``"discover"`` (one full initial discovery — Figs. 4/7/8),
        ``"change"`` (the Fig. 6/9 change-assimilation protocol),
        ``"reliability"`` (discovery under the link error model),
        ``"churn"`` (mid-discovery fault soak), ``"failover"`` (kill
        the FM, measure takeover), or ``"load"`` (the change protocol
        with application traffic flowing — discovery under load).
    topology:
        A Table 1 topology name or alias (``"4x4 mesh"``, ``mesh16``)
        or a :func:`~repro.experiments.io.spec_to_dict` document.
    algorithm:
        Discovery algorithm key.
    manager:
        FM flavour: ``"full"`` or ``"partial"``.
    seed:
        The per-run seed; every bit of randomness (victim choice,
        link-error streams, fault schedule, guard sampling) derives
        from it.
    change:
        Change kind for ``kind="change"`` (default ``remove_switch``).
    timing / params:
        Optional :meth:`ProcessingTimeModel.to_dict` /
        :meth:`FabricParams.to_dict` documents (model objects are
        accepted and normalized).
    max_retries:
        Per-request retry budget (reliability runs default to the
        reliability module's higher budget).
    faults / mean_interval / verify_sample / max_discovery_restarts /
    restart_backoff:
        Churn fault plan and hardening knobs (``None`` = the churn
        module's defaults).
    mode / heartbeat_interval / miss_threshold / restart_primary:
        Failover plan for ``kind="failover"``: takeover mode (``None``
        = ``"warm"``), standby heartbeat tuning, and whether the dead
        primary is resurrected afterwards (the fencing duel).  The
        ``faults``/``mean_interval`` knobs double as the pre-kill
        churn schedule.
    traffic:
        A :meth:`~repro.workloads.traffic.TrafficSpec.to_dict`
        document (or a ``TrafficSpec`` instance, normalized on
        construction) describing the application workload for
        ``kind="load"``.  ``None`` means idle — a load scenario with
        no traffic runs the plain change protocol bit-identically.
    fm_options:
        Extra keyword arguments for the FM constructor (ablation
        switches such as ``arrival_clears_timeout``).
    """

    kind: str = "discover"
    topology: Union[str, dict] = "4x4 mesh"
    algorithm: str = PARALLEL
    manager: str = "full"
    seed: int = 0
    change: Optional[str] = None
    timing: Optional[dict] = None
    params: Optional[dict] = None
    max_retries: Optional[int] = None
    faults: Optional[int] = None
    mean_interval: Optional[float] = None
    verify_sample: Optional[int] = None
    max_discovery_restarts: Optional[int] = None
    restart_backoff: Optional[float] = None
    mode: Optional[str] = None
    heartbeat_interval: Optional[float] = None
    miss_threshold: Optional[int] = None
    restart_primary: Optional[bool] = None
    traffic: Optional[dict] = None
    fm_options: Optional[dict] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r} "
                f"(expected one of {KINDS})"
            )
        if self.manager not in MANAGER_KINDS:
            raise ValueError(
                f"unknown manager kind {self.manager!r} "
                f"(expected one of {MANAGER_KINDS})"
            )
        if self.algorithm not in _ALGORITHM_KEYS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r} "
                f"(expected one of {_ALGORITHM_KEYS})"
            )
        if self.change is not None and self.change not in CHANGE_KINDS:
            raise ValueError(
                f"unknown change kind {self.change!r} "
                f"(expected one of {CHANGE_KINDS})"
            )
        if self.mode is not None:
            from ..manager.failover import MODES
            if self.mode not in MODES:
                raise ValueError(
                    f"unknown takeover mode {self.mode!r} "
                    f"(expected one of {MODES})"
                )
        if (self.heartbeat_interval is not None
                and self.heartbeat_interval <= 0):
            raise ValueError("heartbeat interval must be positive")
        if self.miss_threshold is not None and self.miss_threshold < 1:
            raise ValueError("miss threshold must be at least 1")
        # Normalize model objects to their portable documents, and
        # validate documents eagerly — a bad field should fail at
        # description time, not inside a sweep worker.
        params = self.params
        if isinstance(params, FabricParams):
            params = params.to_dict()
        elif params is not None:
            FabricParams.from_dict(params)  # strict: raises on unknown
        timing = self.timing
        if isinstance(timing, ProcessingTimeModel):
            timing = timing.to_dict()
        elif timing is not None:
            ProcessingTimeModel.from_dict(timing)  # strict, like params
        traffic = self.traffic
        if traffic is not None:
            from ..workloads.traffic import TrafficSpec
            if isinstance(traffic, TrafficSpec):
                traffic = traffic.to_dict()
            else:
                TrafficSpec.from_dict(traffic)  # strict, like params
        # Store every document field in JSON normal form (deep-copied,
        # tuples lowered to lists) so serialization round-trips are
        # exact and no stored container aliases caller state.
        for name, value in (("params", params), ("timing", timing),
                            ("traffic", traffic),
                            ("topology", self.topology),
                            ("fm_options", self.fm_options)):
            if isinstance(value, dict) or value is not getattr(self, name):
                object.__setattr__(self, name, _normalize_document(value))

    # -- materialization -----------------------------------------------------
    def spec(self) -> TopologySpec:
        """Build the topology this scenario names or embeds."""
        if isinstance(self.topology, dict):
            from .io import spec_from_dict
            return spec_from_dict(self.topology)
        from ..topology.registry import resolve_topology
        return resolve_topology(self.topology)

    def fabric_params(self) -> FabricParams:
        if self.params is None:
            return DEFAULT_PARAMS
        return FabricParams.from_dict(self.params)

    def timing_model(self) -> Optional[ProcessingTimeModel]:
        if self.timing is None:
            return None
        return ProcessingTimeModel.from_dict(self.timing)

    def traffic_spec(self):
        """The embedded :class:`TrafficSpec`, or ``None`` when idle."""
        if self.traffic is None:
            return None
        from ..workloads.traffic import TrafficSpec
        return TrafficSpec.from_dict(self.traffic)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-ready rendering (every field, always).

        Document fields are deep-copied, so mutating the returned
        document (or anything nested in it) never touches the frozen
        scenario.
        """
        document = {"schema": _SCHEMA}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, dict):
                value = _normalize_document(value)
            document[spec_field.name] = value
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "Scenario":
        """Rebuild from :meth:`to_dict` output; unknown keys raise."""
        kwargs = dict(document)
        schema = kwargs.pop("schema", _SCHEMA)
        if schema != _SCHEMA:
            raise ValueError(
                f"expected schema {_SCHEMA!r}, got {schema!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise ValueError(
                f"unknown Scenario fields: {', '.join(unknown)}"
            )
        return cls(**kwargs)

    # -- execution -----------------------------------------------------------
    def run(self, tracer=None):
        """Execute this scenario (see :func:`run_scenario`)."""
        return run_scenario(self, tracer=tracer)

    def job(self, tag: Any = None):
        """Spawn-safe executor job for this scenario."""
        from .executor import (
            CHANGE,
            CHURN,
            FAILOVER,
            INITIAL,
            LOAD,
            RELIABILITY,
            Job,
        )
        from .io import spec_to_dict
        kind = {
            "discover": INITIAL,
            "change": CHANGE,
            "reliability": RELIABILITY,
            "churn": CHURN,
            "failover": FAILOVER,
            "load": LOAD,
        }[self.kind]
        spec_doc = (
            _normalize_document(self.topology)
            if isinstance(self.topology, dict)
            else spec_to_dict(self.spec())
        )
        options = None
        if self.kind in ("churn", "failover"):
            options = {"manager": self.manager}
        return Job(
            kind=kind, spec=spec_doc, algorithm=self.algorithm,
            seed=self.seed, change=self.change, timing=self.timing,
            params=self.params, max_retries=self.max_retries,
            options=options, scenario=self.to_dict(), tag=tag,
        )

    @classmethod
    def from_job(cls, job) -> "Scenario":
        """A scenario equivalent to an executor :class:`Job`.

        Jobs built by :meth:`job` carry their scenario verbatim;
        legacy jobs (from ``change_job`` and friends) are mapped field
        by field, preserving the historical defaults exactly.
        """
        if job.scenario is not None:
            return cls.from_dict(job.scenario)
        from .executor import CHANGE, CHURN, FAILOVER, INITIAL, RELIABILITY
        options = dict(job.options or {})
        common = dict(
            topology=dict(job.spec), algorithm=job.algorithm,
            seed=job.seed, timing=job.timing,
        )
        if job.kind == INITIAL:
            return cls(kind="discover",
                       manager=options.get("manager", "full"), **common)
        if job.kind == CHANGE:
            return cls(kind="change",
                       change=job.change or "remove_switch",
                       manager=options.get("manager", "full"), **common)
        if job.kind == RELIABILITY:
            return cls(kind="reliability", params=job.params,
                       max_retries=job.max_retries, **common)
        if job.kind == CHURN:
            return cls(
                kind="churn",
                manager=options.get("manager", "full"),
                faults=options.get("faults"),
                mean_interval=options.get("mean_interval"),
                verify_sample=options.get("verify_sample"),
                max_discovery_restarts=options.get(
                    "max_discovery_restarts"),
                restart_backoff=options.get("restart_backoff"),
                **common,
            )
        if job.kind == FAILOVER:
            return cls(
                kind="failover",
                manager=options.get("manager", "partial"),
                faults=options.get("faults"),
                mean_interval=options.get("mean_interval"),
                mode=options.get("mode"),
                heartbeat_interval=options.get("heartbeat_interval"),
                miss_threshold=options.get("miss_threshold"),
                restart_primary=options.get("restart_primary"),
                **common,
            )
        raise ValueError(f"unknown job kind {job.kind!r}")


# -- the four canonical run bodies --------------------------------------------

def _run_discover(scenario: Scenario, tracer=None):
    """One full initial discovery (the Figs. 4/7/8 measurement)."""
    setup = build_simulation(
        scenario.spec(), algorithm=scenario.algorithm,
        timing=scenario.timing_model(), params=scenario.fabric_params(),
        manager=scenario.manager, auto_start=False, tracer=tracer,
        **dict(scenario.fm_options or {}),
    )
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    # Attach the measured mean FM processing time for Fig. 4, and the
    # ground-truth database check (the CLI's exit code).
    stats.mean_fm_time = setup.fm.mean_processing_time()
    stats.database_correct = database_matches_fabric(setup)
    if tracer is not None:
        tracer.finalize(setup)
    return stats


def _run_change(scenario: Scenario, tracer=None) -> ExperimentResult:
    """The paper's protocol: settle, change, measure rediscovery."""
    change = scenario.change or "remove_switch"
    spec = scenario.spec()
    rng = random.Random(scenario.seed)
    setup = build_simulation(
        spec, algorithm=scenario.algorithm,
        timing=scenario.timing_model(), params=scenario.fabric_params(),
        manager=scenario.manager, tracer=tracer,
        **dict(scenario.fm_options or {}),
    )
    candidates = _removable_switches(setup)
    if not candidates:
        raise ValueError(f"{spec.name}: no switch eligible for the change")
    victim = rng.choice(candidates)

    if change == "add_switch":
        # Keep the victim out of the initial topology.
        setup.fabric.remove_device(victim)

    # Transient period: initial discovery + event-route programming.
    initial = run_until_ready(setup)

    # The programmed change.
    if change == "remove_switch":
        setup.fabric.remove_device(victim)
    else:
        setup.fabric.restore_device(victim)

    # PI-5 detection triggers the change assimilation; wait for it.
    assimilation = run_until_discovery_count(setup, 2)
    # Let the event-route reprogramming finish too.
    setup.env.run(until=setup.fm.ready_event)

    active = len(setup.fabric.reachable_devices(setup.fm.endpoint.name))
    if tracer is not None:
        tracer.finalize(setup)
    return ExperimentResult(
        topology=spec.name,
        family=spec.family,
        algorithm=scenario.algorithm,
        seed=scenario.seed,
        change=change,
        changed_device=victim,
        total_devices=spec.total_devices,
        active_devices=active,
        initial=initial,
        assimilation=assimilation,
        database_correct=database_matches_fabric(setup),
    )


def _run_reliability(scenario: Scenario, tracer=None):
    from .reliability import (
        RELIABILITY_MAX_RETRIES,
        run_reliability_experiment,
    )
    retries = (RELIABILITY_MAX_RETRIES if scenario.max_retries is None
               else scenario.max_retries)
    return run_reliability_experiment(
        scenario.spec(), scenario.algorithm,
        params=scenario.fabric_params(), seed=scenario.seed,
        timing=scenario.timing_model(), max_retries=retries,
        manager=scenario.manager, tracer=tracer,
        fm_options=scenario.fm_options,
    )


def _run_churn(scenario: Scenario, tracer=None):
    from .churn import run_churn_experiment
    kwargs = {}
    for name in ("faults", "mean_interval", "verify_sample",
                 "max_discovery_restarts", "restart_backoff"):
        value = getattr(scenario, name)
        if value is not None:
            kwargs[name] = value
    return run_churn_experiment(
        scenario.spec(), algorithm=scenario.algorithm,
        seed=scenario.seed, manager=scenario.manager,
        timing=scenario.timing_model(), params=scenario.fabric_params(),
        tracer=tracer, fm_options=scenario.fm_options, **kwargs,
    )


def _run_failover(scenario: Scenario, tracer=None):
    from .failover import run_failover_experiment
    kwargs = {}
    for name in ("faults", "mean_interval", "heartbeat_interval",
                 "miss_threshold"):
        value = getattr(scenario, name)
        if value is not None:
            kwargs[name] = value
    return run_failover_experiment(
        scenario.spec(), algorithm=scenario.algorithm,
        seed=scenario.seed,
        mode=scenario.mode or "warm",
        restart_primary=bool(scenario.restart_primary),
        manager=scenario.manager,
        timing=scenario.timing_model(), params=scenario.fabric_params(),
        tracer=tracer, fm_options=scenario.fm_options, **kwargs,
    )


def _run_load(scenario: Scenario, tracer=None):
    from .load import run_load_experiment
    return run_load_experiment(
        scenario.spec(), algorithm=scenario.algorithm,
        traffic=scenario.traffic_spec(), seed=scenario.seed,
        manager=scenario.manager, timing=scenario.timing_model(),
        params=scenario.fabric_params(), change=scenario.change,
        tracer=tracer, fm_options=scenario.fm_options,
    )


_RUNNERS = {
    "discover": _run_discover,
    "change": _run_change,
    "reliability": _run_reliability,
    "churn": _run_churn,
    "failover": _run_failover,
    "load": _run_load,
}


def run_scenario(scenario: Scenario, tracer=None):
    """Execute one scenario; returns its kind's result object.

    ``tracer`` is an optional :class:`repro.obs.session.TraceSession`;
    it is installed before the simulation starts and finalized when
    the run ends.  Tracing never perturbs the simulation, so a traced
    run's measurements are bit-identical to an untraced one.
    """
    return _RUNNERS[scenario.kind](scenario, tracer=tracer)
