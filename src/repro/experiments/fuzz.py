"""Scenario fuzzing lab: imagine scenarios, find failures, shrink them.

The paper validates discovery on the handful of Table 1 topologies;
the differential-testing engine built across the previous PRs — a
frozen, serializable :class:`~repro.experiments.scenario.Scenario` and
ground-truth oracles (``database_matches_fabric`` and the
:class:`~repro.manager.consistency.TopologyAuditor`) — lets this
module close the loop and *generate* validation scenarios instead:

* :func:`sample_scenario` seed-deterministically samples a scenario
  per ``(seed, index)`` across topology family (Table 1 aliases and
  embedded :func:`~repro.topology.irregular.make_irregular` specs) x
  manager x algorithm x change/fault plan x link-error rates x
  timing perturbations;
* :func:`run_fuzz` fans the sampled scenarios out through the
  process-parallel executor and classifies every outcome: a raised
  exception (:class:`~repro.manager.fm.DiscoveryAborted`, timeouts),
  a database that does not match the reachable ground truth, or a
  dirty consistency audit are failures;
* each failure is handed to
  :func:`~repro.experiments.shrink.shrink_scenario`, which reduces it
  to a minimal scenario still failing for the same reason;
* minimal reproducers are written as canonical JSON into a regression
  corpus (``tests/corpus/`` in this repository) that
  :func:`replay_corpus` — and a tier-1 test — replays forever after.

Everything derives from the master seed: the same ``(seed, runs)``
produce the same scenarios, the same failures, and byte-identical
corpus files regardless of ``--jobs``.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..manager.timing import ALGORITHMS, ProcessingTimeModel
from ..topology.irregular import make_irregular
from .scenario import CHANGE_KINDS, KINDS, Scenario
from .shrink import DEFAULT_MAX_ATTEMPTS, shrink_scenario

PathLike = Union[str, Path]

#: Schema tag of one corpus entry file.
CORPUS_SCHEMA = "repro/fuzz-corpus/v1"

#: Table 1 aliases the sampler draws from — the small half of the
#: suite, so a 50-run budget stays interactive.
FUZZ_TOPOLOGIES = ("mesh9", "torus9", "mesh16", "fattree4-2",
                   "fattree8-2")

#: Sampled irregular-topology shape: switches, extra links, ports.
IRREGULAR_SWITCHES = (3, 8)
IRREGULAR_EXTRA_LINKS = (0, 3)
IRREGULAR_PORTS = 8

#: Sampled generator-family shapes (drawn as parseable spec names, so
#: corpus entries stay human-readable strings).
DRAGONFLY_ROUTERS = (2, 4)       # K: routers per group
DRAGONFLY_GROUPS = (2, 6)        # M: groups
DRAGONFLY_ENDPOINTS = (1, 1, 2)  # E: endpoints per router (weighted)
FATTREE2_ENDPOINTS = (8, 12, 16, 24)
FATTREE2_PORTS = (8, 12)

#: Timing-perturbation pools (the Figs. 8/9 axes).
FM_FACTORS = (0.5, 1.0, 2.0, 4.0)
DEVICE_FACTORS = (0.2, 1.0, 2.0)

#: Link-error pools for ``reliability`` scenarios.
BIT_ERROR_RATES = (1e-5, 5e-5, 1e-4)
PACKET_LOSS_RATES = (1e-4, 1e-3)
DUPLICATE_RATES = (1e-4, 1e-3)
ERROR_BURST_LENGTHS = (1.0, 2.0, 4.0)

#: Churn fault-plan pools.
CHURN_FAULTS = (2, 3, 4, 6)
CHURN_MEAN_INTERVALS = (1e-3, 2e-3, 5e-3)
VERIFY_SAMPLES = (1, 3)

#: Failover plan pools (FM-kill scenarios).
FAILOVER_FAULTS = (0, 2, 3)
FAILOVER_HEARTBEATS = (0.5e-3, 1e-3, 2e-3)
FAILOVER_MISS_THRESHOLDS = (2, 3)

#: Traffic pools for ``load`` scenarios.  Packet sizes stay well under
#: the receive-buffer credit capacity (a wire packet must fit the far
#: side's whole input buffer or ``send`` rejects it).
LOAD_LEVELS = (0.3, 0.6, 0.9)
LOAD_PACKET_BYTES = (64, 256, 512)


# -- sampling -----------------------------------------------------------------

def sample_scenario(seed: int, index: int,
                    inject: Optional[dict] = None) -> Scenario:
    """The ``index``-th scenario of the fuzzing run seeded ``seed``.

    Purely deterministic: the per-run RNG derives from integer
    arithmetic on ``(seed, index)`` (never from hashing, which
    ``PYTHONHASHSEED`` would perturb across worker processes).
    ``inject`` forces extra FM constructor options into every sampled
    scenario — the lab's hook for deliberately breaking the system
    under test to prove the find/shrink loop works.
    """
    rng = random.Random(1_000_003 * seed + index)
    kind = rng.choice(KINDS)
    family_draw = rng.random()
    if family_draw < 0.4:
        num_switches = rng.randint(*IRREGULAR_SWITCHES)
        extra_links = rng.randint(*IRREGULAR_EXTRA_LINKS)
        topology_seed = rng.randrange(1 << 16)
        from .io import spec_to_dict
        topology: Union[str, dict] = spec_to_dict(make_irregular(
            num_switches, extra_links=extra_links,
            switch_ports=IRREGULAR_PORTS, seed=topology_seed,
        ))
    elif family_draw < 0.55:
        # Generator families: small Dragonfly / two-layer fat-tree
        # specs drawn as names (resolve_topology parses them back).
        from ..topology import dragonfly_name, fat_tree2_name
        if rng.random() < 0.5:
            topology = dragonfly_name(
                rng.randint(*DRAGONFLY_ROUTERS),
                rng.randint(*DRAGONFLY_GROUPS),
                rng.choice(DRAGONFLY_ENDPOINTS),
            )
        else:
            topology = fat_tree2_name(
                rng.choice(FATTREE2_ENDPOINTS),
                switch_ports=rng.choice(FATTREE2_PORTS),
            )
    else:
        topology = rng.choice(FUZZ_TOPOLOGIES)
    kwargs: dict = {
        "kind": kind,
        "topology": topology,
        "algorithm": rng.choice(ALGORITHMS),
        # Weight toward the paper's full-rediscovery manager.
        "manager": rng.choice(("full", "full", "partial")),
        "seed": rng.randrange(1 << 16),
    }
    if kind == "change":
        kwargs["change"] = rng.choice(CHANGE_KINDS)
    if kind == "reliability":
        params = {"bit_error_rate": rng.choice(BIT_ERROR_RATES)}
        if rng.random() < 0.3:
            params["packet_loss_rate"] = rng.choice(PACKET_LOSS_RATES)
        if rng.random() < 0.3:
            params["duplicate_rate"] = rng.choice(DUPLICATE_RATES)
        if rng.random() < 0.3:
            params["error_burst_length"] = rng.choice(
                ERROR_BURST_LENGTHS
            )
        kwargs["params"] = params
    if kind == "churn":
        kwargs["faults"] = rng.choice(CHURN_FAULTS)
        kwargs["mean_interval"] = rng.choice(CHURN_MEAN_INTERVALS)
        if rng.random() < 0.25:
            kwargs["verify_sample"] = rng.choice(VERIFY_SAMPLES)
    if kind == "load":
        from ..workloads.traffic import ARRIVALS, PATTERNS, TrafficSpec
        from .load import TC_MAPPINGS
        kwargs["traffic"] = TrafficSpec(
            load=rng.choice(LOAD_LEVELS),
            packet_bytes=rng.choice(LOAD_PACKET_BYTES),
            arrival=rng.choice(ARRIVALS),
            pattern=rng.choice(PATTERNS),
        ).to_dict()
        if rng.random() < 0.5:
            # Half the draws force management onto the application VC,
            # fuzzing discovery without the strict-priority bypass.
            kwargs["params"] = {
                "tc_vc_map": list(TC_MAPPINGS["mixed"]),
            }
    if kind == "failover":
        # Warm takeover leans on the partial manager's repair bursts;
        # keep a cold/full tail so both promotion paths stay fuzzed.
        kwargs["manager"] = rng.choice(("partial", "partial", "full"))
        kwargs["mode"] = rng.choice(("warm", "warm", "cold"))
        kwargs["faults"] = rng.choice(FAILOVER_FAULTS)
        kwargs["mean_interval"] = rng.choice(CHURN_MEAN_INTERVALS)
        kwargs["heartbeat_interval"] = rng.choice(FAILOVER_HEARTBEATS)
        if rng.random() < 0.5:
            kwargs["miss_threshold"] = rng.choice(
                FAILOVER_MISS_THRESHOLDS
            )
        if rng.random() < 0.25:
            # The dueling-managers case: resurrect the old primary and
            # demand the ownership fencing demote it.
            kwargs["restart_primary"] = True
    if rng.random() < 0.35:
        kwargs["timing"] = ProcessingTimeModel(
            fm_factor=rng.choice(FM_FACTORS),
            device_factor=rng.choice(DEVICE_FACTORS),
        )
    if inject:
        kwargs["fm_options"] = dict(inject)
    return Scenario(**kwargs)


# -- the oracle ---------------------------------------------------------------

def classify_result(scenario: Scenario, result) -> Optional[Tuple[str, str]]:
    """``(reason, detail)`` when a *completed* run is still a failure.

    Churn runs carry the full oracle verdict (bounded-restart abort,
    graph convergence, and the consistency audit); every other kind
    carries the ground-truth database comparison.
    """
    if scenario.kind == "churn":
        if result.aborted_runs:
            return ("aborted",
                    f"{result.aborted_runs} run(s) exhausted the "
                    f"restart budget")
        if not result.converged:
            return ("not_converged",
                    "database does not match reachable ground truth")
        if not result.audit_ok:
            return ("audit_dirty",
                    f"{result.audit_differences} auditor difference(s)")
        return None
    if scenario.kind == "failover":
        if not result.converged:
            return ("not_converged",
                    "post-takeover database does not match reachable "
                    "ground truth")
        if not result.audit_ok:
            return ("audit_dirty",
                    f"{result.audit_differences} auditor difference(s) "
                    f"after takeover")
        if result.old_primary_demoted is False:
            return ("split_brain",
                    "resurrected old primary did not demote itself")
        return None
    if not result.database_correct:
        return ("database_incorrect",
                "database does not match reachable ground truth")
    return None


def evaluate_scenario(scenario: Scenario) -> Optional[Tuple[str, str]]:
    """Run one scenario in-process; ``None`` = pass, else the failure.

    This is the shrinker's evaluator: exceptions become
    ``error:<ExceptionName>`` reasons, so a shrink can preserve "this
    scenario raises DiscoveryAborted" as faithfully as "this scenario
    converges to a wrong database".
    """
    try:
        result = scenario.run()
    except Exception as exc:
        return f"error:{type(exc).__name__}", str(exc)
    return classify_result(scenario, result)


def _classify_error(message: str) -> Tuple[str, str]:
    """Map an executor ``RunFailure.error`` string to a reason."""
    name, _, detail = message.partition(": ")
    return f"error:{name}", detail or message


# -- failures and reports -----------------------------------------------------

@dataclass
class FuzzFailure:
    """One failing sampled scenario (plus its shrunk reproducer)."""

    index: int
    scenario: Scenario
    reason: str
    detail: str
    shrunk: Optional[Scenario] = None
    shrink_attempts: int = 0
    shrink_steps: int = 0

    @property
    def minimal(self) -> Scenario:
        """The scenario to archive: shrunk when available."""
        return self.shrunk if self.shrunk is not None else self.scenario

    def describe(self) -> str:
        topology = self.minimal.topology
        name = topology["name"] if isinstance(topology, dict) else topology
        return (f"run[{self.index}] {self.minimal.kind} on {name}: "
                f"{self.reason} ({self.detail})")


@dataclass
class FuzzReport:
    """Everything one fuzzing run produced."""

    seed: int
    runs: int
    scenarios: List[Scenario]
    failures: List[FuzzFailure]
    corpus_paths: List[Path] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.runs} scenario(s), seed {self.seed}, "
            f"{len(self.failures)} failure(s) in {self.wall_time:.2f} s"
        ]
        lines += [f"  {failure.describe()}" for failure in self.failures]
        if self.corpus_paths:
            lines += [f"  corpus: {path}" for path in self.corpus_paths]
        return "\n".join(lines)


def run_fuzz(
    runs: int,
    seed: int = 0,
    workers: int = 1,
    shrink: bool = True,
    corpus_dir: Optional[PathLike] = None,
    inject: Optional[dict] = None,
    max_shrink_attempts: int = DEFAULT_MAX_ATTEMPTS,
    progress: Union[bool, None] = None,
) -> FuzzReport:
    """Sample ``runs`` scenarios, execute them, shrink every failure.

    The sweep fans out over the process-parallel executor
    (``workers``); shrinking runs serially in-process so the greedy
    search is deterministic.  With ``corpus_dir`` set, each failure's
    minimal scenario is written there as canonical JSON (stable bytes
    for a stable failure).
    """
    from .executor import run_many
    started = time.perf_counter()
    scenarios = [sample_scenario(seed, i, inject=inject)
                 for i in range(runs)]
    report = run_many(
        [scenario.job(tag=i) for i, scenario in enumerate(scenarios)],
        workers=workers, progress=progress,
    )
    errors: Dict[int, Tuple[str, str]] = {
        failure.index: _classify_error(failure.error)
        for failure in report.failures
    }
    failures: List[FuzzFailure] = []
    for index, scenario in enumerate(scenarios):
        if index in errors:
            reason, detail = errors[index]
        else:
            verdict = classify_result(scenario, report.results[index])
            if verdict is None:
                continue
            reason, detail = verdict
        failures.append(FuzzFailure(index=index, scenario=scenario,
                                    reason=reason, detail=detail))
    if shrink:
        for failure in failures:
            result = shrink_scenario(
                failure.scenario, failure.reason, failure.detail,
                evaluate_scenario, max_attempts=max_shrink_attempts,
            )
            failure.shrunk = result.scenario
            failure.detail = result.detail
            failure.shrink_attempts = result.attempts
            failure.shrink_steps = result.steps
    corpus_paths: List[Path] = []
    if corpus_dir is not None and failures:
        corpus_paths = write_corpus(failures, corpus_dir)
    return FuzzReport(
        seed=seed, runs=runs, scenarios=scenarios, failures=failures,
        corpus_paths=corpus_paths,
        wall_time=time.perf_counter() - started,
    )


# -- the regression corpus ----------------------------------------------------

def corpus_filename(scenario: Scenario) -> str:
    """Deterministic name for a corpus entry: kind + content digest."""
    canonical = json.dumps(scenario.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
    return f"{scenario.kind}-{digest}.json"


def corpus_entry(scenario: Scenario, reason: str, detail: str) -> dict:
    """The JSON document one corpus file holds."""
    return {
        "schema": CORPUS_SCHEMA,
        "reason": reason,
        "detail": detail,
        "scenario": scenario.to_dict(),
    }


def render_corpus_entry(document: dict) -> str:
    """Canonical file bytes for a corpus document (sorted, indented)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_corpus(failures: Sequence[FuzzFailure],
                 directory: PathLike) -> List[Path]:
    """Write each failure's minimal scenario into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for failure in failures:
        document = corpus_entry(failure.minimal, failure.reason,
                                failure.detail)
        path = directory / corpus_filename(failure.minimal)
        path.write_text(render_corpus_entry(document))
        paths.append(path)
    return sorted(set(paths))


def load_corpus_entry(path: PathLike) -> Tuple[dict, Scenario]:
    """Read and validate one corpus file; returns ``(document,
    scenario)``.  Malformed entries raise :class:`ValueError`."""
    path = Path(path)
    document = json.loads(path.read_text())
    if document.get("schema") != CORPUS_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {CORPUS_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    if "scenario" not in document:
        raise ValueError(f"{path}: corpus entry has no scenario")
    return document, Scenario.from_dict(document["scenario"])


def iter_corpus(directory: PathLike) -> List[Path]:
    """The corpus files under ``directory``, sorted by name."""
    return sorted(Path(directory).glob("*.json"))


@dataclass
class ReplayOutcome:
    """One corpus entry, replayed."""

    path: Path
    scenario: Scenario
    #: ``None`` when the replay passed (converged + clean audit).
    reason: Optional[str]
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.reason is None


def replay_corpus(directory: PathLike, workers: int = 1,
                  progress: Union[bool, None] = None,
                  ) -> List[ReplayOutcome]:
    """Replay every corpus entry under ``directory``.

    The checked-in corpus holds minimal reproducers of *fixed* bugs
    plus seeded coverage scenarios, so a clean tree replays every
    entry to a pass: converged, correct database, clean audit.  A
    regression flips an outcome's ``reason`` back on.
    """
    from .executor import run_many
    paths = iter_corpus(directory)
    entries = [load_corpus_entry(path) for path in paths]
    scenarios = [scenario for _, scenario in entries]
    report = run_many(
        [scenario.job(tag=str(path))
         for path, (_, scenario) in zip(paths, entries)],
        workers=workers, progress=progress,
    )
    errors = {failure.index: _classify_error(failure.error)
              for failure in report.failures}
    outcomes = []
    for index, (path, scenario) in enumerate(zip(paths, scenarios)):
        if index in errors:
            reason, detail = errors[index]
        else:
            verdict = classify_result(scenario, report.results[index])
            reason, detail = verdict if verdict else (None, "")
        outcomes.append(ReplayOutcome(path=path, scenario=scenario,
                                      reason=reason, detail=detail))
    return outcomes
