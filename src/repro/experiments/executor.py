"""Process-parallel execution of independent experiment runs.

The paper's evaluation is a large sweep of independent ``(topology,
algorithm, seed, change)`` simulations.  Every run owns its own
:class:`~repro.sim.core.Environment`, so the sweep is embarrassingly
parallel.  This module fans runs out over a :mod:`multiprocessing`
pool while keeping the results element-for-element identical to a
serial sweep:

* jobs are *descriptions* (topology spec dict, algorithm name, seed,
  change kind, timing-model dict) — spawn-safe, no live simulator
  objects cross the process boundary;
* each run derives all randomness from its own job seed, so worker
  scheduling cannot perturb outcomes;
* results are reordered back into job-submission order;
* a failing run is captured as a :class:`RunFailure` carrying the
  originating job instead of poisoning the whole sweep;
* ``workers=1`` (or a platform without a usable start method) degrades
  to plain in-process execution.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, Union

from ..manager.timing import ProcessingTimeModel
from ..topology.spec import TopologySpec
from .io import spec_to_dict

#: Job kinds.
CHANGE = "change"
INITIAL = "initial"
RELIABILITY = "reliability"
CHURN = "churn"
FAILOVER = "failover"
LOAD = "load"

#: Start methods tried for the worker pool, cheapest first.
_START_METHODS = ("fork", "spawn", "forkserver")


# -- job descriptions ---------------------------------------------------------

@dataclass(frozen=True)
class Job:
    """A spawn-safe description of one experiment run.

    Attributes
    ----------
    kind:
        ``"change"`` (the Fig. 6/9 change-assimilation protocol) or
        ``"initial"`` (a no-change discovery of the full fabric, as in
        Figs. 4, 7(a), and 8).
    spec:
        The topology as a :func:`~repro.experiments.io.spec_to_dict`
        document.
    algorithm:
        Discovery algorithm key.
    seed:
        Per-run random seed (selects the changed switch).
    change:
        ``"remove_switch"`` / ``"add_switch"`` for ``kind="change"``.
    timing:
        Optional :meth:`ProcessingTimeModel.to_dict` document.
    params:
        Optional :meth:`FabricParams.to_dict` document (the
        ``"reliability"`` kind carries its link-error configuration
        here).
    max_retries:
        Optional per-request retry budget override.
    options:
        Optional kind-specific keyword arguments (plain picklable
        dict; the ``"churn"`` kind carries its fault schedule and
        manager selection here).
    scenario:
        Optional :meth:`repro.experiments.scenario.Scenario.to_dict`
        document.  When present it is the authoritative description
        (the other fields exist for progress lines); legacy jobs leave
        it ``None`` and are mapped field by field.
    tag:
        Opaque picklable caller bookkeeping, carried through untouched.
    """

    kind: str
    spec: dict
    algorithm: str
    seed: int = 0
    change: Optional[str] = None
    timing: Optional[dict] = None
    params: Optional[dict] = None
    max_retries: Optional[int] = None
    options: Optional[dict] = None
    scenario: Optional[dict] = None
    tag: Any = None

    def describe(self) -> str:
        """Short human-readable identity for progress/error lines."""
        parts = [self.spec.get("name", "?"), self.algorithm]
        if self.kind == CHANGE:
            parts.append(f"seed={self.seed}")
            if self.change:
                parts.append(self.change)
        elif self.kind == RELIABILITY:
            ber = (self.params or {}).get("bit_error_rate", 0.0)
            parts.append(f"ber={ber:g}")
            parts.append(f"seed={self.seed}")
        elif self.kind == CHURN:
            manager = (self.options or {}).get("manager", "full")
            parts.append(f"manager={manager}")
            parts.append(f"seed={self.seed}")
        elif self.kind == FAILOVER:
            mode = (self.scenario or {}).get("mode") or "warm"
            parts.append(f"mode={mode}")
            parts.append(f"seed={self.seed}")
        elif self.kind == LOAD:
            traffic = (self.scenario or {}).get("traffic") or {}
            parts.append(f"load={traffic.get('load', 0):g}")
            mapping = (self.params or {}).get("tc_vc_map")
            if mapping is not None and len(set(mapping)) == 1:
                parts.append("mapping=mixed")
            parts.append(f"seed={self.seed}")
        return " ".join(parts)


def _spec_document(spec: Union[TopologySpec, dict]) -> dict:
    if isinstance(spec, TopologySpec):
        return spec_to_dict(spec)
    return dict(spec)


def _timing_document(
    timing: Union[ProcessingTimeModel, dict, None]
) -> Optional[dict]:
    if timing is None:
        return None
    if isinstance(timing, ProcessingTimeModel):
        return timing.to_dict()
    return dict(timing)


def change_job(
    spec: Union[TopologySpec, dict],
    algorithm: str,
    seed: int = 0,
    change: str = "remove_switch",
    timing: Union[ProcessingTimeModel, dict, None] = None,
    manager: str = "full",
    tag: Any = None,
) -> Job:
    """Describe one change-assimilation run (Fig. 6/9 protocol)."""
    options = {"manager": manager} if manager != "full" else None
    return Job(kind=CHANGE, spec=_spec_document(spec), algorithm=algorithm,
               seed=seed, change=change, timing=_timing_document(timing),
               options=options, tag=tag)


def initial_job(
    spec: Union[TopologySpec, dict],
    algorithm: str,
    timing: Union[ProcessingTimeModel, dict, None] = None,
    manager: str = "full",
    tag: Any = None,
) -> Job:
    """Describe one full-fabric initial discovery (Figs. 4/7/8)."""
    options = {"manager": manager} if manager != "full" else None
    return Job(kind=INITIAL, spec=_spec_document(spec), algorithm=algorithm,
               timing=_timing_document(timing), options=options, tag=tag)


# -- outcomes -----------------------------------------------------------------

@dataclass
class RunFailure:
    """A run that raised, with enough context to reproduce it."""

    job: Job
    index: int
    error: str
    traceback: str

    def __str__(self):
        return f"job[{self.index}] {self.job.describe()}: {self.error}"


class SweepError(RuntimeError):
    """One or more runs of a sweep failed."""

    def __init__(self, failures: Sequence[RunFailure]):
        self.failures = list(failures)
        lines = [f"{len(self.failures)} run(s) failed:"]
        lines += [f"  {failure}" for failure in self.failures]
        super().__init__("\n".join(lines))


@dataclass
class SweepReport:
    """Everything :func:`run_many` measured about a sweep.

    ``results`` is aligned with the submitted job list (``None`` where
    the run failed); ``run_time`` is the summed per-run wall time — the
    serial-execution estimate the speedup is computed against.
    """

    jobs: List[Job]
    results: List[Any]
    failures: List[RunFailure] = field(default_factory=list)
    workers: int = 1
    wall_time: float = 0.0
    run_time: float = 0.0

    @property
    def speedup(self) -> float:
        """Estimated speedup versus running the same jobs serially."""
        if self.wall_time <= 0:
            return 1.0
        return self.run_time / self.wall_time

    def raise_if_failed(self) -> "SweepReport":
        if self.failures:
            raise SweepError(self.failures)
        return self

    def summary(self) -> str:
        return (
            f"{len(self.jobs)} runs ({len(self.failures)} failed) on "
            f"{self.workers} worker(s) in {self.wall_time:.2f} s wall "
            f"(serial estimate {self.run_time:.2f} s, "
            f"speedup {self.speedup:.2f}x)"
        )


# -- worker side --------------------------------------------------------------

def _execute_job(job: Job):
    """Run one described experiment (in the worker process).

    Every job kind — legacy or scenario-carrying — routes through
    :func:`repro.experiments.scenario.run_scenario`, so a sweep run
    and a direct ``Scenario.run()`` share one code path.
    """
    # Imported late: scenario.py imports this module lazily too.
    from .scenario import Scenario
    return Scenario.from_job(job).run()


def _run_indexed(indexed):
    """Pool entry point: never raises, so one bad run cannot kill the
    sweep; failures travel back as picklable strings."""
    index, job = indexed
    started = time.perf_counter()
    try:
        result = _execute_job(job)
        return index, result, None, time.perf_counter() - started
    except Exception as exc:
        failure = RunFailure(
            job=job, index=index,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )
        return index, None, failure, time.perf_counter() - started


# -- pool management ----------------------------------------------------------

def _pool_context():
    """A usable multiprocessing context, or ``None`` to run in-process."""
    for method in _START_METHODS:
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return None


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    return f"{seconds // 60}:{seconds % 60:02d}"


def _progress_printer(total: int, stream) -> Callable:
    started = time.perf_counter()

    def emit(done: int, job: Job, failure: Optional[RunFailure],
             duration: float) -> None:
        elapsed = time.perf_counter() - started
        eta = elapsed / done * (total - done)
        status = "FAIL" if failure else "ok"
        print(
            f"[{done}/{total}] {job.describe()}: {status} "
            f"({duration:.2f} s)  elapsed {elapsed:.1f} s  "
            f"eta {_format_eta(eta)}",
            file=stream,
        )

    return emit


# -- the executor -------------------------------------------------------------

def run_many(
    jobs: Iterable[Job],
    workers: int = 1,
    progress: Union[bool, Callable, None] = None,
    stream=None,
) -> SweepReport:
    """Execute independent experiment runs, possibly in parallel.

    Parameters
    ----------
    jobs:
        Job descriptions (see :func:`change_job` / :func:`initial_job`).
    workers:
        Worker processes.  ``1`` runs in-process (no pool); higher
        values fan out over a :mod:`multiprocessing` pool, degrading to
        in-process execution if no start method is available.  Clamped
        to the number of jobs.
    progress:
        ``True`` — print per-run progress/ETA lines and a final
        wall-clock summary to ``stream``; a callable — invoked as
        ``progress(done, job, failure, duration)`` per finished run;
        ``False`` — silent; ``None`` (default) — auto: report only
        when ``stream`` is an interactive terminal and there is more
        than one job.
    stream:
        Where progress reporting goes (default ``sys.stderr``).

    Returns
    -------
    SweepReport
        Results in job-submission order — identical, element for
        element, to a ``workers=1`` run of the same jobs.
    """
    jobs = list(jobs)
    stream = stream if stream is not None else sys.stderr
    if progress is None:
        progress = len(jobs) > 1 and bool(
            getattr(stream, "isatty", lambda: False)()
        )
    emit: Optional[Callable] = None
    if progress is True:
        emit = _progress_printer(len(jobs), stream)
    elif callable(progress):
        emit = progress

    workers = max(1, min(int(workers), len(jobs) or 1))
    context = _pool_context() if workers > 1 else None
    if context is None:
        workers = 1

    started = time.perf_counter()
    results: List[Any] = [None] * len(jobs)
    failures: List[RunFailure] = []
    run_time = 0.0
    done = 0

    def consume(outcome) -> None:
        nonlocal run_time, done
        index, result, failure, duration = outcome
        run_time += duration
        done += 1
        if failure is None:
            results[index] = result
        else:
            failures.append(failure)
        if emit is not None:
            emit(done, jobs[index], failure, duration)

    if workers == 1:
        for indexed in enumerate(jobs):
            consume(_run_indexed(indexed))
    else:
        pool = context.Pool(processes=workers)
        try:
            for outcome in pool.imap_unordered(
                _run_indexed, list(enumerate(jobs))
            ):
                consume(outcome)
            pool.close()
        except BaseException:
            pool.terminate()
            raise
        finally:
            pool.join()

    failures.sort(key=lambda failure: failure.index)
    report = SweepReport(
        jobs=jobs, results=results, failures=failures, workers=workers,
        wall_time=time.perf_counter() - started, run_time=run_time,
    )
    if progress is True:
        print(report.summary(), file=stream)
    return report


def run_sweep(
    jobs: Iterable[Job],
    workers: int = 1,
    progress: Union[bool, Callable, None] = None,
) -> List[Any]:
    """`run_many` + `raise_if_failed`: the common sweep shape."""
    return run_many(jobs, workers=workers,
                    progress=progress).raise_if_failed().results
