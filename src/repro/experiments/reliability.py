"""Reliability sweep: discovery under lossy links.

The paper's evaluation assumes a perfect channel.  With the link error
model (:class:`repro.fabric.phy.LinkErrorModel`) and the retrying
transaction engine (:mod:`repro.protocols.transaction`) in place, the
simulator can answer a question the paper could not ask: **which
discovery implementation degrades most gracefully when management
packets are corrupted or lost in flight?**

One run = one full initial discovery (plus event-route programming) of
a topology at a given bit error rate, measuring the discovery time,
the recovery work (retries, timeouts, stale completions, duplicate
requests served), the channel damage (CRC drops, outright losses), and
whether the final topology database still matches the fabric.  The
sweep crosses loss rates with the three algorithms and fans out over
the process-parallel executor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..fabric.params import DEFAULT_PARAMS, FabricParams
from ..manager.timing import ALGORITHMS, ProcessingTimeModel
from ..topology.spec import TopologySpec
from .report import render_table
from .runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)

#: Bit error rates swept by default: perfect channel, then two lossy
#: points roughly at "a retry now and then" and "every few packets".
DEFAULT_BIT_ERROR_RATES: Tuple[float, ...] = (0.0, 1e-5, 5e-5, 1e-4)

#: Retries per request used for reliability runs.  Deliberately higher
#: than the FM default (3): at the highest swept loss rates a 4-hop
#: round trip fails a few times in ten, and the experiment studies
#: degradation, not abandonment.
RELIABILITY_MAX_RETRIES = 8


@dataclass
class ReliabilityResult:
    """Outcome of one lossy-channel discovery run."""

    topology: str
    family: str
    algorithm: str
    seed: int
    bit_error_rate: float
    packet_loss_rate: float
    duplicate_rate: float
    discovery_time: float
    devices_found: int
    requests_sent: int
    retries: int
    timeouts: int
    stale_completions: int
    #: Responder-side duplicate-suppression hits (cached completions
    #: resent without re-executing the config-space access).
    duplicate_requests: int
    #: Packets dropped at receiving ports because corruption made the
    #: header-CRC/PCRC check fail.
    crc_drops: int
    #: Packets lost outright on a link (framing never detected).
    lost_packets: int
    #: Link-layer replays injected by the duplicate error mode.
    replayed_packets: int
    database_correct: bool

    def asdict(self) -> dict:
        return {
            "topology": self.topology,
            "family": self.family,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "bit_error_rate": self.bit_error_rate,
            "packet_loss_rate": self.packet_loss_rate,
            "duplicate_rate": self.duplicate_rate,
            "discovery_time": self.discovery_time,
            "devices_found": self.devices_found,
            "requests_sent": self.requests_sent,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "stale_completions": self.stale_completions,
            "duplicate_requests": self.duplicate_requests,
            "crc_drops": self.crc_drops,
            "lost_packets": self.lost_packets,
            "replayed_packets": self.replayed_packets,
            "database_correct": self.database_correct,
        }


def run_reliability_experiment(
    spec: TopologySpec,
    algorithm: str,
    params: FabricParams = DEFAULT_PARAMS,
    seed: int = 0,
    timing: Optional[ProcessingTimeModel] = None,
    max_retries: int = RELIABILITY_MAX_RETRIES,
    manager: str = "full",
    tracer=None,
    fm_options: Optional[dict] = None,
) -> ReliabilityResult:
    """One full discovery of ``spec`` under ``params``'s error model.

    ``seed`` feeds the per-link RNG streams (``error_seed``), so two
    runs with the same arguments are bit-for-bit identical regardless
    of which sweep worker executes them.  ``fm_options`` are extra
    keyword arguments for the FM constructor (ablation switches).
    """
    params = replace(params, error_seed=seed)
    setup = build_simulation(
        spec, algorithm=algorithm, timing=timing, params=params,
        max_retries=max_retries, manager=manager, tracer=tracer,
        **dict(fm_options or {}),
    )
    stats = run_until_ready(setup)
    if tracer is not None:
        tracer.finalize(setup)
    crc_drops = lost = replays = duplicates = 0
    for device in setup.fabric.devices.values():
        for port in device.ports:
            crc_drops += port.stats["rx_crc_dropped"]
            lost += port.stats["rx_lost"]
            replays += port.stats["tx_replays"]
    for entity in setup.entities.values():
        duplicates += entity.stats["duplicate_requests"]
    return ReliabilityResult(
        topology=spec.name,
        family=spec.family,
        algorithm=algorithm,
        seed=seed,
        bit_error_rate=params.bit_error_rate,
        packet_loss_rate=params.packet_loss_rate,
        duplicate_rate=params.duplicate_rate,
        discovery_time=stats.discovery_time,
        devices_found=stats.devices_found,
        requests_sent=stats.requests_sent,
        retries=stats.retries,
        timeouts=stats.timeouts,
        stale_completions=stats.stale_completions,
        duplicate_requests=duplicates,
        crc_drops=crc_drops,
        lost_packets=lost,
        replayed_packets=replays,
        database_correct=database_matches_fabric(setup),
    )


def sweep_reliability(
    spec: TopologySpec,
    bit_error_rates: Sequence[float] = DEFAULT_BIT_ERROR_RATES,
    algorithms: Sequence[str] = ALGORITHMS,
    seeds: Iterable[int] = (0,),
    base_params: FabricParams = DEFAULT_PARAMS,
    timing: Optional[ProcessingTimeModel] = None,
    max_retries: int = RELIABILITY_MAX_RETRIES,
    workers: int = 1,
    progress: Union[bool, None] = None,
) -> List[ReliabilityResult]:
    """Cross loss rates x algorithms x seeds through the executor.

    Results come back in job-submission order (rate-major, then
    algorithm, then seed) — identical to a serial sweep.
    """
    # Imported late: executor.py imports this module at load time.
    from .executor import run_many
    from .io import spec_to_dict
    from .scenario import Scenario

    spec_doc = spec_to_dict(spec)
    timing_doc = timing.to_dict() if timing is not None else None
    jobs = [
        Scenario(
            kind="reliability", topology=spec_doc, algorithm=algorithm,
            seed=seed, timing=timing_doc,
            params=replace(base_params, bit_error_rate=rate).to_dict(),
            max_retries=max_retries,
        ).job()
        for rate in bit_error_rates
        for algorithm in algorithms
        for seed in seeds
    ]
    report = run_many(jobs, workers=workers, progress=progress)
    report.raise_if_failed()
    return list(report.results)


def summarize_reliability(
    results: Sequence[ReliabilityResult],
) -> List[dict]:
    """Mean discovery time / recovery work per (algorithm, loss rate).

    Rows are ordered by algorithm, then loss rate ascending, so a
    glance down the column shows how each implementation degrades.
    """
    groups: Dict[Tuple[str, float], List[ReliabilityResult]] = {}
    for result in results:
        groups.setdefault(
            (result.algorithm, result.bit_error_rate), []
        ).append(result)
    rows = []
    for (algorithm, rate) in sorted(groups):
        bucket = groups[(algorithm, rate)]
        n = len(bucket)
        rows.append({
            "algorithm": algorithm,
            "bit_error_rate": rate,
            "runs": n,
            "mean_discovery_time": sum(
                r.discovery_time for r in bucket
            ) / n,
            "mean_retries": sum(r.retries for r in bucket) / n,
            "mean_timeouts": sum(r.timeouts for r in bucket) / n,
            "mean_crc_drops": sum(r.crc_drops for r in bucket) / n,
            "all_correct": all(r.database_correct for r in bucket),
        })
    return rows


def render_reliability(rows: Sequence[dict], title: str = "") -> str:
    """ASCII table of :func:`summarize_reliability` rows."""
    headers = ("algorithm", "BER", "runs", "mean t_disc", "retries",
               "timeouts", "CRC drops", "correct")
    table = render_table(headers, [
        (
            row["algorithm"], row["bit_error_rate"], row["runs"],
            row["mean_discovery_time"], row["mean_retries"],
            row["mean_timeouts"], row["mean_crc_drops"],
            row["all_correct"],
        )
        for row in rows
    ])
    return f"{title}\n{table}" if title else table
