"""Source-route construction, path computation, multicast tables."""

from .tables import MulticastForwardingTable, MulticastTableError

from .turnpool import (
    Hop,
    TurnPool,
    TurnPoolError,
    backward_egress,
    build_turn_pool,
    encode_turn,
    forward_egress,
    read_backward_turn,
    read_forward_turn,
    turn_width,
    walk_forward,
)

__all__ = [
    "Hop",
    "MulticastForwardingTable",
    "MulticastTableError",
    "TurnPool",
    "TurnPoolError",
    "backward_egress",
    "build_turn_pool",
    "encode_turn",
    "forward_egress",
    "read_backward_turn",
    "read_forward_turn",
    "turn_width",
    "walk_forward",
]
