"""Path computation: shortest source routes over a topology.

"The information gathered by [discovery] is used to build a set of
paths between fabric endpoints" (paper, abstract).  This module builds
turn-pool source routes both from the FM's discovered database (the
production path) and from a live fabric's ground truth (used by tests
and by the background-traffic workload).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from .turnpool import Hop, TurnPool, build_turn_pool


class PathError(RuntimeError):
    """Raised when no route exists or wiring info is missing."""


# -- routes over the FM database ------------------------------------------

def _db_link_ports(db, dsn_a: int, dsn_b: int) -> Tuple[int, int]:
    """Ports wiring two adjacent devices in a topology database.

    Returns ``(port_on_a, port_on_b)``; picks the lowest-numbered port
    when redundant links exist (deterministic).
    """
    record_a = db.device(dsn_a)
    for index in sorted(record_a.ports):
        port = record_a.ports[index]
        if port.neighbor_dsn == dsn_b and port.up:
            far = port.neighbor_port
            if far is None:
                record_b = db.device(dsn_b)
                for j in sorted(record_b.ports):
                    if record_b.ports[j].neighbor_dsn == dsn_a:
                        far = j
                        break
            if far is None:
                raise PathError(
                    f"far-side port of {dsn_a:#x}->{dsn_b:#x} unknown"
                )
            return index, far
    raise PathError(f"no up link between {dsn_a:#x} and {dsn_b:#x}")


def db_route(db, src_dsn: int, dst_dsn: int) -> Tuple[TurnPool, int]:
    """Shortest route ``src -> dst`` over a discovered database.

    Returns ``(turn_pool, out_port_at_src)``.
    """
    if src_dsn == dst_dsn:
        return build_turn_pool([]), 0
    graph = db.graph()
    try:
        node_path = nx.shortest_path(graph, src_dsn, dst_dsn)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise PathError(
            f"no path from {src_dsn:#x} to {dst_dsn:#x}"
        ) from None
    return _path_to_route(db, node_path)


def _path_to_route(db, node_path: List[int]) -> Tuple[TurnPool, int]:
    out_port, _ = _db_link_ports(db, node_path[0], node_path[1])
    hops: List[Hop] = []
    in_port = None
    for k in range(1, len(node_path) - 1):
        _, in_port = _db_link_ports(db, node_path[k - 1], node_path[k])
        egress, _ = _db_link_ports(db, node_path[k], node_path[k + 1])
        record = db.device(node_path[k])
        if not record.is_switch:
            raise PathError(
                f"path traverses endpoint {node_path[k]:#x}"
            )
        hops.append(Hop(record.nports, in_port, egress))
    return build_turn_pool(hops), out_port


def db_endpoint_routes(db, src_dsn: int) -> Dict[int, Tuple[TurnPool, int]]:
    """Routes from ``src_dsn`` to every other endpoint in the database."""
    routes: Dict[int, Tuple[TurnPool, int]] = {}
    for record in db.endpoints():
        if record.dsn == src_dsn:
            continue
        routes[record.dsn] = db_route(db, src_dsn, record.dsn)
    return routes


# -- routes over fabric ground truth ----------------------------------------

def fabric_route(fabric, src: str, dst: str) -> Tuple[TurnPool, int]:
    """Shortest route between two devices of a live fabric.

    Uses the ground-truth graph (tests, traffic generation, failover
    bootstrap).  Returns ``(turn_pool, out_port_at_src)``.
    """
    if src == dst:
        return build_turn_pool([]), 0
    graph = fabric.graph(active_only=True)
    try:
        node_path = nx.shortest_path(graph, src, dst)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise PathError(f"no path from {src!r} to {dst!r}") from None

    def link_ports(a: str, b: str) -> Tuple[int, int]:
        ports = graph.edges[a, b]["ports"]
        return ports[a], ports[b]

    out_port, _ = link_ports(node_path[0], node_path[1])
    hops: List[Hop] = []
    for k in range(1, len(node_path) - 1):
        _, in_port = link_ports(node_path[k - 1], node_path[k])
        egress, _ = link_ports(node_path[k], node_path[k + 1])
        device = fabric.device(node_path[k])
        if device.kind != "switch":
            raise PathError(f"path traverses endpoint {node_path[k]!r}")
        hops.append(Hop(device.nports, in_port, egress))
    return build_turn_pool(hops), out_port


def fabric_endpoint_routes(fabric, src: str) -> Dict[str, Tuple[TurnPool, int]]:
    """Ground-truth routes from endpoint ``src`` to all other endpoints."""
    routes: Dict[str, Tuple[TurnPool, int]] = {}
    for endpoint in fabric.endpoints():
        if endpoint.name == src or not endpoint.active:
            continue
        try:
            routes[endpoint.name] = fabric_route(fabric, src, endpoint.name)
        except PathError:
            continue  # unreachable after a change
    return routes
