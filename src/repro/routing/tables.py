"""Multicast forwarding tables.

"Multicast packets require looking up into a specific forwarding
table" (paper, section 2).  For multicast packets (PI-0) the route
header's turn-pool field carries the multicast group id instead of a
source route; each switch looks the group up in its forwarding table
and replicates the packet to every listed port except the ingress.

Tables are programmed by the fabric manager through the multicast
capability (:mod:`repro.capability.multicast`) after it has computed a
distribution tree for the group (:mod:`repro.manager.multicast`).
Groups absent from a switch's table fall back to the management
entity's software flood path — which is exactly what the election
protocol uses before any FM exists.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

#: Multicast group ids are 16 bits in this model.
MAX_GROUP = 0xFFFF


class MulticastTableError(ValueError):
    """Raised on malformed group/port arguments."""


class MulticastForwardingTable:
    """Per-switch mapping of multicast group -> egress port set."""

    def __init__(self, nports: int):
        if nports < 1:
            raise MulticastTableError("table needs at least one port")
        self.nports = nports
        self._groups: Dict[int, Set[int]] = {}

    def _check_group(self, group: int) -> None:
        if not 0 <= group <= MAX_GROUP:
            raise MulticastTableError(f"group {group} outside 16 bits")

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.nports:
            raise MulticastTableError(
                f"port {port} outside switch with {self.nports} ports"
            )

    # -- programming ------------------------------------------------------
    def add_port(self, group: int, port: int) -> None:
        """Include ``port`` in the group's replication set."""
        self._check_group(group)
        self._check_port(port)
        self._groups.setdefault(group, set()).add(port)

    def remove_port(self, group: int, port: int) -> None:
        """Remove ``port`` from the group (idempotent)."""
        self._check_group(group)
        self._check_port(port)
        members = self._groups.get(group)
        if members is not None:
            members.discard(port)
            if not members:
                del self._groups[group]

    def clear_group(self, group: int) -> None:
        """Forget the group entirely."""
        self._check_group(group)
        self._groups.pop(group, None)

    def set_ports(self, group: int, ports: Iterable[int]) -> None:
        """Replace the group's port set."""
        self._check_group(group)
        ports = set(ports)
        for port in ports:
            self._check_port(port)
        if ports:
            self._groups[group] = ports
        else:
            self._groups.pop(group, None)

    # -- lookup --------------------------------------------------------------
    def __contains__(self, group: int) -> bool:
        return group in self._groups

    def ports_for(self, group: int) -> FrozenSet[int]:
        """Replication set for ``group`` (empty if unprogrammed)."""
        return frozenset(self._groups.get(group, ()))

    def egress_ports(self, group: int, ingress: int) -> List[int]:
        """Ports a packet entering at ``ingress`` is replicated to."""
        return sorted(self.ports_for(group) - {ingress})

    def groups(self) -> List[int]:
        return sorted(self._groups)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<McastTable {len(self._groups)} groups>"
