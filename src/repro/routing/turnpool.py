"""Turn-pool source routing.

ASI unicast packets carry their entire route in the header: the *turn
pool* is a packed sequence of per-switch turn values, the *turn
pointer* tracks the traversal position, and the *direction* bit lets a
completion retrace the request's route without any path computation at
the responder (paper, section 2).

Semantics implemented here (matching the specification's relative-port
addressing; see :mod:`repro.fabric.header` for the single documented
widening of the pool):

* A switch with ``N`` ports consumes turns of width
  ``w = ceil(log2(N))`` bits.
* The pool is packed so the **first** hop's turn occupies the **top**
  bits; a forward packet starts with ``turn_pointer`` equal to the
  total number of turn bits and consumes downward.  A forward packet
  whose pointer is 0 has reached its destination device — this is how
  PI-4 packets terminate *at a switch*.
* Forward egress: ``out = (in + 1 + turn) mod N``.
* Backward (direction=1) packets consume upward from pointer 0 using
  ``out = (in - 1 - turn) mod N``; they terminate at endpoints (which
  never forward).  Together the two rules make routes exactly
  reversible: the same turn value maps ``in -> out`` forward and
  ``out -> in`` backward.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

from .._limits import TURN_POOL_BITS


class TurnPoolError(ValueError):
    """Raised when a route cannot be encoded or followed."""


def turn_width(nports: int) -> int:
    """Bits needed for a turn value at a device with ``nports`` ports."""
    if nports < 2:
        raise TurnPoolError(f"cannot route through a {nports}-port device")
    return max(1, (nports - 1).bit_length())


def encode_turn(in_port: int, out_port: int, nports: int) -> int:
    """Turn value that routes ``in_port`` -> ``out_port`` (forward)."""
    _check_port(in_port, nports)
    _check_port(out_port, nports)
    if in_port == out_port:
        raise TurnPoolError("a packet cannot exit its ingress port")
    return (out_port - in_port - 1) % nports


def forward_egress(in_port: int, turn: int, nports: int) -> int:
    """Egress port of a forward packet entering at ``in_port``."""
    _check_port(in_port, nports)
    return (in_port + 1 + turn) % nports


def backward_egress(in_port: int, turn: int, nports: int) -> int:
    """Egress port of a backward packet entering at ``in_port``."""
    _check_port(in_port, nports)
    return (in_port - 1 - turn) % nports


def _check_port(port: int, nports: int) -> None:
    if not 0 <= port < nports:
        raise TurnPoolError(f"port {port} outside device with {nports} ports")


@dataclass(frozen=True, slots=True)
class Hop:
    """One switch traversal: enter ``in_port``, leave ``out_port``."""

    nports: int
    in_port: int
    out_port: int


@lru_cache(maxsize=None)
def intern_hop(nports: int, in_port: int, out_port: int) -> Hop:
    """A shared :class:`Hop` instance.

    Routes across a large fabric repeat the same few turns at every
    switch (a 128-port switch has at most ``128 * 127`` distinct hops),
    so route tables built from interned hops share their elements
    instead of holding millions of equal-but-distinct objects.
    """
    return Hop(nports, in_port, out_port)


class TurnPool:
    """A built source route: packed pool plus its total bit count."""

    __slots__ = ("pool", "bits")

    def __init__(self, pool: int, bits: int):
        if bits < 0 or bits > TURN_POOL_BITS:
            raise TurnPoolError(
                f"route needs {bits} turn bits; pool holds {TURN_POOL_BITS}"
            )
        if not 0 <= pool < (1 << TURN_POOL_BITS):
            raise TurnPoolError("pool value outside pool width")
        self.pool = pool
        self.bits = bits

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TurnPool)
            and self.pool == other.pool
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.pool, self.bits))

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"TurnPool(pool={self.pool:#x}, bits={self.bits})"


def build_turn_pool(hops: Sequence[Hop]) -> TurnPool:
    """Pack a hop sequence into a turn pool.

    The first hop's turn lands in the top bits so that a forward
    traversal (pointer counting down from ``bits``) consumes hops in
    path order.  An empty hop list is the self-route (pointer 0).

    Results are memoized per hop sequence: the fabric manager packs the
    route to a device on every management packet it sends there.
    """
    return _pack_hops(tuple(hops))


@lru_cache(maxsize=65536)
def _pack_hops(hops: Tuple[Hop, ...]) -> TurnPool:
    total_bits = sum(turn_width(h.nports) for h in hops)
    if total_bits > TURN_POOL_BITS:
        raise TurnPoolError(
            f"route of {len(hops)} hops needs {total_bits} turn bits; "
            f"pool holds {TURN_POOL_BITS}"
        )
    pool = 0
    remaining = total_bits
    for hop in hops:
        width = turn_width(hop.nports)
        turn = encode_turn(hop.in_port, hop.out_port, hop.nports)
        remaining -= width
        pool |= turn << remaining
    return TurnPool(pool, total_bits)


def read_forward_turn(pool: int, pointer: int, nports: int) -> Tuple[int, int]:
    """Extract the next forward turn.

    Returns ``(turn, new_pointer)``; raises if the pool is exhausted.
    """
    width = turn_width(nports)
    if pointer < width:
        raise TurnPoolError(
            f"forward pointer {pointer} has fewer than {width} bits left"
        )
    new_pointer = pointer - width
    turn = (pool >> new_pointer) & ((1 << width) - 1)
    return turn, new_pointer


def read_backward_turn(pool: int, pointer: int, nports: int) -> Tuple[int, int]:
    """Extract the next backward turn.

    Returns ``(turn, new_pointer)``; raises if the pointer would move
    past the top of the pool.
    """
    width = turn_width(nports)
    if pointer + width > TURN_POOL_BITS:
        raise TurnPoolError(
            f"backward pointer {pointer} + width {width} exceeds pool"
        )
    turn = (pool >> pointer) & ((1 << width) - 1)
    return turn, pointer + width


def walk_forward(pool: TurnPool,
                 hops: Sequence[Tuple[int, int]]) -> List[int]:
    """Follow a pool through ``hops`` of ``(nports, in_port)`` pairs.

    Debug/verification helper: returns the egress port chosen at each
    hop and checks the pool is exactly exhausted.
    """
    pointer = pool.bits
    egresses = []
    for nports, in_port in hops:
        turn, pointer = read_forward_turn(pool.pool, pointer, nports)
        egresses.append(forward_egress(in_port, turn, nports))
    if pointer != 0:
        raise TurnPoolError(f"{pointer} turn bits left over after walk")
    return egresses
