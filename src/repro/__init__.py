"""repro — a reproduction of "Implementing the Advanced Switching
Fabric Discovery Process" (Robles-Gomez, Bermudez, Casado, Quiles).

The package contains a from-scratch discrete-event simulator of an
Advanced Switching Interconnect (ASI) fabric — links, virtual channels,
credit-based flow control, cut-through switches, turn-pool source
routing, device configuration spaces, and the PI-4/PI-5 management
protocols — plus the fabric-management layer the paper studies: three
discovery implementations (Serial Packet, Serial Device, Parallel),
PI-5-driven change assimilation, FM election and failover, path
distribution, and the paper's future-work extensions (partial and
collaborative discovery).

Quick start::

    from repro import (
        PARALLEL, build_simulation, make_mesh, run_until_ready,
    )

    setup = build_simulation(make_mesh(3, 3), algorithm=PARALLEL,
                             auto_start=False)
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    print(stats.discovery_time, "seconds,", stats.devices_found, "devices")
"""

from .experiments import (
    ExperimentResult,
    Job,
    RunFailure,
    SweepError,
    SweepReport,
    build_simulation,
    change_job,
    database_matches_fabric,
    initial_job,
    run_many,
    run_sweep,
    run_until_discovery_count,
    run_until_ready,
)
from .fabric import Fabric, FabricParams, PacketTracer
from .manager import (
    ALGORITHMS,
    PARALLEL,
    SERIAL_DEVICE,
    SERIAL_PACKET,
    CollaborativeDiscovery,
    DiscoveryStats,
    Election,
    FabricManager,
    PartialAssimilationManager,
    PathDistributor,
    ProcessingTimeModel,
    StandbyManager,
)
from .protocols import ManagementEntity
from .sim import Environment
from .topology import (
    TABLE1_NAMES,
    TopologySpec,
    make_fattree,
    make_irregular,
    make_mesh,
    make_torus,
    table1_suite,
    table1_topology,
)
from .workloads.base import Workload, WorkloadSet
from .workloads.faults import FaultInjector
from .workloads.traffic import TrafficGenerator, TrafficSpec

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "CollaborativeDiscovery",
    "DiscoveryStats",
    "Election",
    "Environment",
    "ExperimentResult",
    "Fabric",
    "FabricManager",
    "FaultInjector",
    "FabricParams",
    "Job",
    "ManagementEntity",
    "PARALLEL",
    "PacketTracer",
    "PartialAssimilationManager",
    "PathDistributor",
    "ProcessingTimeModel",
    "RunFailure",
    "SERIAL_DEVICE",
    "SERIAL_PACKET",
    "StandbyManager",
    "SweepError",
    "SweepReport",
    "TABLE1_NAMES",
    "TopologySpec",
    "TrafficGenerator",
    "TrafficSpec",
    "Workload",
    "WorkloadSet",
    "build_simulation",
    "change_job",
    "database_matches_fabric",
    "initial_job",
    "make_fattree",
    "make_irregular",
    "make_mesh",
    "make_torus",
    "run_many",
    "run_sweep",
    "run_until_discovery_count",
    "run_until_ready",
    "table1_suite",
    "table1_topology",
]
