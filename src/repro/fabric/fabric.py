"""The fabric container: devices, links, power-up, and hot changes.

A :class:`Fabric` owns every simulated device and link.  It provides
the ground-truth topology (as a :mod:`networkx` graph) that tests and
experiments compare discovery results against, and the hot add/remove
operations that trigger the topological changes the paper studies.
"""

from __future__ import annotations

import random
from itertools import count
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..sim.core import Environment
from .device import Device
from .endpoint import Endpoint
from .params import DEFAULT_PARAMS, FabricParams
from .phy import Link, LinkError
from .switch import Switch


class FabricError(RuntimeError):
    """Raised on invalid fabric construction or modification."""


class Fabric:
    """A collection of ASI devices connected by x1 links."""

    def __init__(self, env: Environment,
                 params: FabricParams = DEFAULT_PARAMS):
        self.env = env
        self.params = params
        self.devices: Dict[str, Device] = {}
        self.links: List[Link] = []
        self._dsn_counter = count(0x0100_0000)
        self._by_dsn: Dict[int, Device] = {}

    # -- construction ------------------------------------------------------
    def _register(self, device: Device) -> Device:
        if device.name in self.devices:
            raise FabricError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device
        self._by_dsn[device.dsn] = device
        return device

    def add_switch(self, name: str, nports: Optional[int] = None) -> Switch:
        """Create a switch (default port count from the parameters)."""
        nports = self.params.switch_ports if nports is None else nports
        return self._register(
            Switch(self.env, name, next(self._dsn_counter), nports,
                   self.params)
        )

    def add_endpoint(self, name: str, nports: Optional[int] = None,
                     fm_capable: bool = True,
                     fm_priority: int = 0) -> Endpoint:
        """Create an endpoint."""
        nports = self.params.endpoint_ports if nports is None else nports
        return self._register(
            Endpoint(self.env, name, next(self._dsn_counter), nports,
                     self.params, fm_capable=fm_capable,
                     fm_priority=fm_priority)
        )

    def connect(self, a: str, a_port: int, b: str, b_port: int) -> Link:
        """Wire port ``a_port`` of device ``a`` to ``b_port`` of ``b``."""
        dev_a, dev_b = self.device(a), self.device(b)
        if dev_a is dev_b:
            raise FabricError(f"cannot connect {a!r} to itself")
        link = Link(self.env, self.params,
                    name=f"{a}.p{a_port}<->{b}.p{b_port}")
        try:
            link.attach(dev_a.ports[a_port], dev_b.ports[b_port])
        except IndexError:
            raise FabricError(
                f"port index out of range connecting {a!r} and {b!r}"
            ) from None
        self.links.append(link)
        return link

    def power_up(self, stagger: Optional[float] = None,
                 seed: int = 0, first: Optional[str] = None) -> None:
        """Activate every device and train every link.

        With ``stagger`` set, devices power on at uniformly random
        times within ``[0, stagger]`` seconds — the paper's "transient
        period in which fabric devices are activated".  Each link
        trains as soon as both of its endpoints are alive.  ``first``
        names a device (typically the FM host) to power on at time 0
        so management can observe the bring-up.
        """
        if stagger is None:
            for device in self.devices.values():
                device.power_on()
            for link in self.links:
                link.bring_up()
            return
        if stagger <= 0:
            raise FabricError("stagger must be positive")
        rng = random.Random(seed)

        def activate(device):
            def fire(_event=None):
                device.power_on()
                for port in device.ports:
                    if port.link is not None:
                        port.link.bring_up()

            return fire

        for device in self.devices.values():
            delay = 0.0 if device.name == first else rng.uniform(0, stagger)
            if delay == 0.0:
                activate(device)()
            else:
                timer = self.env.timeout(delay)
                timer.callbacks.append(activate(device))

    # -- lookup ------------------------------------------------------------
    def device(self, name: str) -> Device:
        try:
            return self.devices[name]
        except KeyError:
            raise FabricError(f"no device named {name!r}") from None

    def device_by_dsn(self, dsn: int) -> Device:
        try:
            return self._by_dsn[dsn]
        except KeyError:
            raise FabricError(f"no device with DSN {dsn:#x}") from None

    def switches(self) -> List[Switch]:
        return [d for d in self.devices.values() if isinstance(d, Switch)]

    def endpoints(self) -> List[Endpoint]:
        return [d for d in self.devices.values() if isinstance(d, Endpoint)]

    def link_between(self, a: str, b: str) -> Optional[Link]:
        """The first link directly connecting devices ``a`` and ``b``."""
        for link in self.links:
            names = {
                link.a_port.device.name,
                link.b_port.device.name,
            }
            if names == {a, b}:
                return link
        return None

    # -- ground truth ---------------------------------------------------------
    def graph(self, active_only: bool = True) -> nx.Graph:
        """The physical topology as a networkx graph.

        Nodes are device names with ``kind``/``dsn`` attributes; edges
        carry the port numbers at each end.  With ``active_only`` the
        graph contains only active devices and up links — the topology
        a correct discovery must find.
        """
        g = nx.Graph()
        for device in self.devices.values():
            if active_only and not device.active:
                continue
            g.add_node(
                device.name,
                kind=device.kind,
                dsn=device.dsn,
                nports=device.nports,
            )
        for link in self.links:
            if active_only and not link.up:
                continue
            pa, pb = link.a_port, link.b_port
            if pa.device.name not in g or pb.device.name not in g:
                continue
            g.add_edge(
                pa.device.name,
                pb.device.name,
                ports={
                    pa.device.name: pa.index,
                    pb.device.name: pb.index,
                },
            )
        return g

    def reachable_devices(self, origin: str) -> List[str]:
        """Active devices reachable from ``origin`` over up links."""
        g = self.graph(active_only=True)
        if origin not in g:
            return []
        return sorted(nx.node_connected_component(g, origin))

    # -- hot changes (availability features, paper section 2) -----------------
    def remove_device(self, name: str) -> Device:
        """Hot-remove a device: power it off and fail its links.

        Neighbours observe port-down transitions, which their
        management entities report to the FM via PI-5.
        """
        device = self.device(name)
        if not device.active:
            raise FabricError(f"{name!r} is already inactive")
        device.power_off()
        for port in device.ports:
            if port.link is not None and port.link.up:
                port.link.take_down()
        return device

    def restore_device(self, name: str) -> Device:
        """Hot-add a previously removed device back into the fabric."""
        device = self.device(name)
        if device.active:
            raise FabricError(f"{name!r} is already active")
        device.power_on()
        for port in device.ports:
            if port.link is not None:
                port.link.bring_up()
        return device

    def fail_link(self, a: str, b: str) -> Link:
        """Fail the link between two directly connected devices."""
        link = self.link_between(a, b)
        if link is None:
            raise FabricError(f"no link between {a!r} and {b!r}")
        link.take_down()
        return link

    def restore_link(self, a: str, b: str) -> Link:
        """Retrain a previously failed link."""
        link = self.link_between(a, b)
        if link is None:
            raise FabricError(f"no link between {a!r} and {b!r}")
        link.bring_up()
        return link

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<Fabric {len(self.switches())} switches, "
            f"{len(self.endpoints())} endpoints, {len(self.links)} links>"
        )
