"""CRC generators used by the modeled ASI packet formats.

ASI protects the routing header with a header CRC and the payload with
an end-to-end PCRC (inherited from PCI Express).  We model them with a
table-driven CRC-8 (poly 0x07, as in ATM HEC) for the header and the
standard reflected CRC-32 (poly 0x04C11DB7) for payloads.
"""

from __future__ import annotations

from typing import List

_CRC8_POLY = 0x07
_CRC32_POLY_REFLECTED = 0xEDB88320


def _build_crc8_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ _CRC8_POLY) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
        table.append(crc)
    return table


def _build_crc32_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC32_POLY_REFLECTED
            else:
                crc >>= 1
        table.append(crc)
    return table


_CRC8_TABLE = _build_crc8_table()
_CRC32_TABLE = _build_crc32_table()


def crc8(data: bytes, initial: int = 0x00) -> int:
    """CRC-8/ATM over ``data``; returns an 8-bit value."""
    crc = initial & 0xFF
    for byte in data:
        crc = _CRC8_TABLE[crc ^ byte]
    return crc


def crc32(data: bytes) -> int:
    """Reflected CRC-32 (IEEE 802.3) over ``data``; 32-bit value."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = _CRC32_TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF
