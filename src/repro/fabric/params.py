"""Configuration parameters of the modeled ASI fabric.

All timing values are seconds; all sizes are bytes unless stated
otherwise.  Defaults follow the paper's simulation model: x1 ASI links
(2.5 Gbps raw, 2.0 Gbps effective after 8b/10b encoding), 16-port
multiplexed virtual cut-through switches, and 1-port endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import List, Tuple


@dataclass(frozen=True)
class FabricParams:
    """Immutable bundle of fabric-wide hardware parameters."""

    #: Raw signaling rate of an x1 link in bits per second.
    raw_bit_rate: float = 2.5e9
    #: 8b/10b encoding efficiency: effective data rate multiplier.
    encoding_efficiency: float = 0.8
    #: Wire propagation delay per link (chip-to-chip / backplane).
    propagation_delay: float = 5e-9
    #: Switch routing-decision latency per hop (virtual cut-through:
    #: applied once the header has been received).
    routing_latency: float = 40e-9
    #: Link-layer framing overhead added to every packet (start/end
    #: symbols, sequence number, LCRC), PCI Express style.
    framing_overhead: int = 8
    #: End-to-end payload CRC appended when a payload is present.
    pcrc_bytes: int = 4
    #: Size of one flow-control credit unit.
    credit_unit: int = 64
    #: Receive-buffer capacity per virtual channel, in credit units.
    rx_buffer_credits: int = 16
    #: Number of virtual channels implemented at every port.
    vc_count: int = 2
    #: Virtual-channel types per VC index ("bvc", "ovc", or "mvc").
    #: Empty tuple = all BVCs (the default; management packets rely on
    #: BVC bypass queues for their priority).  Used by the ablation
    #: benches to study what the VC design buys.
    vc_types: Tuple[str, ...] = ()
    #: TC -> VC mapping table (indexed by the 3-bit traffic class).
    #: Default: application classes 0-3 on VC0, management classes on
    #: VC1, which the arbiter serves with strict priority — this is how
    #: the paper justifies that application traffic scarcely affects
    #: discovery time.
    tc_vc_map: Tuple[int, ...] = (0, 0, 0, 0, 1, 1, 1, 1)
    #: Maximum payload size (bytes).
    max_payload: int = 2048
    #: Ports on a fabric switch (the paper's model uses 16).
    switch_ports: int = 16
    #: Ports on a fabric endpoint (the paper's model uses 1; spec max 4).
    endpoint_ports: int = 1
    #: Per-bit probability that a bit of a packet is corrupted on the
    #: wire (BER).  Corrupted packets fail the header-CRC/PCRC check at
    #: the receiving port and are dropped (the discovery protocol's
    #: transaction engine retries them).  0 = the paper's perfect
    #: channel; the lossy path is completely skipped in that case.
    bit_error_rate: float = 0.0
    #: Per-packet probability that the packet vanishes entirely (framing
    #: never detected; no CRC check even runs).
    packet_loss_rate: float = 0.0
    #: Per-packet probability that the link layer delivers a second copy
    #: (replay), exercising duplicate suppression at the responder.
    duplicate_rate: float = 0.0
    #: Mean number of bit errors per corruption event (geometric burst;
    #: 1.0 = independent single-bit errors).
    error_burst_length: float = 1.0
    #: Seed for the per-link error-model RNG streams.  Every link
    #: derives its own deterministic stream from this seed and its
    #: name, so runs are reproducible regardless of worker scheduling.
    error_seed: int = 0

    def __post_init__(self):
        if not self.tc_vc_map or len(self.tc_vc_map) != 8:
            raise ValueError("tc_vc_map must have 8 entries")
        if any(vc < 0 or vc >= self.vc_count for vc in self.tc_vc_map):
            raise ValueError("tc_vc_map references an unimplemented VC")
        if self.vc_count < 1:
            raise ValueError("need at least one virtual channel")
        if self.rx_buffer_credits < 1:
            raise ValueError("need at least one receive credit")
        if self.vc_types:
            if len(self.vc_types) != self.vc_count:
                raise ValueError(
                    "vc_types must name a type per virtual channel"
                )
            bad = [t for t in self.vc_types if t not in ("bvc", "ovc", "mvc")]
            if bad:
                raise ValueError(f"unknown VC types: {bad}")
        for name in ("bit_error_rate", "packet_loss_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name}={rate} outside [0, 1)")
        if self.error_burst_length < 1.0:
            raise ValueError("error_burst_length must be at least 1")

    @property
    def lossy(self) -> bool:
        """Whether any link-error mode is enabled (the unreliable path
        is bypassed entirely when this is False)."""
        return (
            self.bit_error_rate > 0.0
            or self.packet_loss_rate > 0.0
            or self.duplicate_rate > 0.0
        )

    def to_dict(self) -> dict:
        """JSON/pickle-ready rendering (for spawn-safe job descriptions)."""
        return {
            field_name: list(value) if isinstance(value, tuple) else value
            for field_name, value in (
                (f.name, getattr(self, f.name)) for f in fields(self)
            )
        }

    @classmethod
    def from_dict(cls, document: dict) -> "FabricParams":
        """Rebuild parameters from :meth:`to_dict` output.

        Unknown keys raise :class:`ValueError` — a misspelled
        error-model field silently reverting to the perfect channel
        would invalidate a whole sweep.
        """
        kwargs = dict(document)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise ValueError(
                f"unknown FabricParams fields: {', '.join(unknown)}"
            )
        for name in ("vc_types", "tc_vc_map"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)

    @property
    def data_rate(self) -> float:
        """Effective data rate in bits per second (after encoding)."""
        return self.raw_bit_rate * self.encoding_efficiency

    def tx_time(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` on an x1 link."""
        return nbytes * 8.0 / self.data_rate

    def vc_for_tc(self, tc: int) -> int:
        """Resolve a traffic class to a virtual channel index."""
        return self.tc_vc_map[tc & 0x7]


#: Traffic class used by fabric-management packets.  Management and
#: notification packets use the highest class, which maps to the
#: strict-priority VC (paper, section 4.1).
MANAGEMENT_TC = 7

#: Traffic class used by the background application-traffic generator.
APPLICATION_TC = 0

DEFAULT_PARAMS = FabricParams()
