"""Credit-based link-level flow control (PCI Express style).

Each transmitting port keeps a :class:`CreditCounter` per virtual
channel mirroring the free space of the receiver's input buffer for
that VC.  Transmission of a packet consumes ``credits_required`` units;
the receiver returns the units once the packet leaves its input buffer
(forwarded by a switch or consumed by an endpoint), and the returned
credits become visible to the sender one propagation delay later.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..sim.core import Environment
from ..sim.events import Event


class CreditError(RuntimeError):
    """Raised on credit-accounting violations (over-release, oversized)."""


class CreditCounter:
    """Available credit units for one (link direction, VC) pair.

    ``consume(n)`` returns an event that triggers once ``n`` units have
    been reserved; grants are strictly FIFO so a large packet cannot be
    starved by a stream of small ones.
    """

    __slots__ = ("env", "capacity", "available", "_waiters")

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be at least 1 credit")
        self.env = env
        self.capacity = capacity
        self.available = capacity
        self._waiters: Deque[Tuple[int, Event]] = deque()

    def consume(self, units: int) -> Event:
        """Reserve ``units`` credits; event triggers when granted."""
        if units < 1:
            raise ValueError("must consume at least one credit")
        if units > self.capacity:
            raise CreditError(
                f"packet needs {units} credits but receive buffer only "
                f"holds {self.capacity}; increase rx_buffer_credits or "
                f"lower max_payload"
            )
        event = Event(self.env)
        if not self._waiters and units <= self.available:
            # Fast path (the overwhelmingly common case in a healthy
            # fabric): grant immediately.  The event is returned already
            # *processed* — nobody can have registered a callback on a
            # brand-new event, so scheduling it onto the heap would only
            # burn an event slot to run an empty callback list.
            self.available -= units
            event.callbacks = None
            event._value = units
        else:
            self._waiters.append((units, event))
            self._grant()
        return event

    def release(self, units: int) -> None:
        """Return ``units`` credits (receiver freed buffer space)."""
        if units < 0:
            raise ValueError("cannot release a negative credit count")
        if self.available + units > self.capacity:
            raise CreditError(
                f"credit over-release: {self.available}+{units} exceeds "
                f"capacity {self.capacity}"
            )
        self.available += units
        self._grant()

    def _grant(self) -> None:
        while self._waiters and self._waiters[0][0] <= self.available:
            units, event = self._waiters.popleft()
            self.available -= units
            event.succeed(units)

    def reset(self) -> None:
        """Resynchronize to full capacity, abandoning queued grants.

        Used on link down/retrain: in-flight packets are lost, so the
        mirror returns to the receiver's empty-buffer state and waiting
        grant events are dropped without triggering (their packets were
        flushed from the VC queues by the same transition).
        """
        self.available = self.capacity
        self._waiters.clear()

    @property
    def in_use(self) -> int:
        """Credits currently held by in-flight packets."""
        return self.capacity - self.available

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<CreditCounter {self.available}/{self.capacity} "
            f"waiters={len(self._waiters)}>"
        )
