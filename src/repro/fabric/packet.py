"""ASI packets: a route header plus an encapsulated protocol payload.

The PI (Protocol Interface) field of the route header identifies the
payload protocol.  This module defines the PI numbers used by the
reproduction (matching the specification where the paper names them)
and the :class:`Packet` object that travels through the simulated
fabric.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Optional

from .crc import crc32
from .header import HEADER_BYTES, HeaderError, RouteHeader

# -- Protocol Interface numbers ---------------------------------------------
#: Multicast / path-building protocol (PI-0).
PI_MULTICAST = 0
#: Device configuration and control protocol (PI-4): the read/write
#: requests and completions the discovery process is built from.
PI_DEVICE_MANAGEMENT = 4
#: Event reporting protocol (PI-5): port state change notifications.
PI_EVENT = 5
#: Generic encapsulated application data (used by the background
#: traffic workload; real ASI assigns encapsulation PIs from 8 up).
PI_APPLICATION = 8

_packet_ids = count()


class PacketError(ValueError):
    """Raised when a packet cannot be decoded from bytes."""


@dataclass
class Packet:
    """A packet in flight through the simulated fabric.

    The first two fields are "on the wire"; the rest is simulation
    bookkeeping that a real packet would not carry.
    """

    header: RouteHeader
    payload: bytes = b""
    #: Unique id for tracing and for matching requests to completions.
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Name of the originating device.
    src: str = ""
    #: Simulation time the packet was injected.
    created_at: float = 0.0
    #: Free-form per-packet annotations (e.g. decoded PI-4 message).
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Hop counter maintained by switches (diagnostics only).
    hops: int = 0
    #: Memoized wire size / credit footprint.  A packet's payload is
    #: immutable once in flight, but every port on the path asks for
    #: these (send, arbitration pick, receive), so the answers are
    #: cached per parameter set.  The payload length is part of the
    #: cache key so a rebuilt packet can never serve a stale size.
    _size_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )
    _credit_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def size_bytes(self, framing_overhead: int = 8, pcrc_bytes: int = 4) -> int:
        """Total wire size: framing + route header + payload + PCRC."""
        length = len(self.payload)
        cache = self._size_cache
        if (
            cache is not None
            and cache[0] == framing_overhead
            and cache[1] == pcrc_bytes
            and cache[2] == length
        ):
            return cache[3]
        size = framing_overhead + HEADER_BYTES + length + (
            pcrc_bytes if length else 0
        )
        self._size_cache = (framing_overhead, pcrc_bytes, length, size)
        return size

    def credit_units(self, credit_unit: int = 64,
                     framing_overhead: int = 8, pcrc_bytes: int = 4) -> int:
        """Number of flow-control credits the packet occupies."""
        size = self.size_bytes(framing_overhead, pcrc_bytes)
        cache = self._credit_cache
        if cache is not None and cache[0] == credit_unit and cache[1] == size:
            return cache[2]
        # Integer ceiling division; exact, unlike float math.ceil.
        units = -(-size // credit_unit)
        if units < 1:
            units = 1
        self._credit_cache = (credit_unit, size, units)
        return units

    def pcrc(self) -> int:
        """End-to-end CRC over the payload."""
        return crc32(self.payload)

    # -- wire format --------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize header + payload (+ PCRC when present) to bytes.

        The simulator moves :class:`Packet` objects directly for speed,
        but the wire format is fully defined: this is what a conformance
        capture of the modeled fabric would contain (minus link-layer
        framing, which carries no protocol content).
        """
        body = self.header.pack() + self.payload
        if self.payload:
            body += struct.pack(">I", self.pcrc())
        return body

    @classmethod
    def from_bytes(cls, data: bytes, check_crc: bool = True) -> "Packet":
        """Decode a packet, verifying header CRC and payload PCRC."""
        header = RouteHeader.unpack(data, check_crc=check_crc)
        rest = data[HEADER_BYTES:]
        if rest:
            if len(rest) < 4:
                raise PacketError("payload present but PCRC truncated")
            payload, (stored,) = rest[:-4], struct.unpack(">I", rest[-4:])
            if check_crc:
                computed = crc32(payload)
                if computed != stored:
                    raise PacketError(
                        f"PCRC mismatch: stored {stored:#010x}, computed "
                        f"{computed:#010x}"
                    )
        else:
            payload = b""
        return cls(header=header, payload=payload)

    @property
    def pi(self) -> int:
        return self.header.pi

    @property
    def is_management(self) -> bool:
        """True for PI-4 / PI-5 fabric-management packets."""
        return self.header.pi in (PI_DEVICE_MANAGEMENT, PI_EVENT)

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.pkt_id} pi={self.header.pi} "
            f"tc={self.header.tc} d={self.header.direction} "
            f"len={len(self.payload)} from {self.src!r}>"
        )


def make_management_header(
    turn_pool: int,
    turn_pointer: int,
    pi: int,
    tc: int = 7,
    direction: int = 0,
) -> RouteHeader:
    """Build a route header for a management packet.

    Management packets use the highest traffic class and set the
    type-specific bypass bit so they may overtake application traffic
    in BVC bypass queues (the property the paper leans on when arguing
    application traffic scarcely affects discovery time).
    """
    return RouteHeader(
        pi=pi,
        tc=tc,
        direction=direction,
        oo=0,
        ts=1,
        turn_pointer=turn_pointer,
        turn_pool=turn_pool,
    )
