"""Packet tracing: structured per-hop event capture.

OPNET-style debugging support: attach a :class:`PacketTracer` to a
fabric and every injection, transmission, reception, forwarding
decision, drop, and delivery is recorded as a :class:`TraceEvent`.
Filters keep the volume down (by PI, by device), a ring buffer bounds
memory, and helpers reconstruct the path a given packet took — which
is how several of this repository's own routing tests assert that
packets really travel the route their turn pool encodes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Set

from .fabric import Fabric
from .packet import Packet

#: Event kinds, in rough lifecycle order.  ``enqueue`` marks a packet
#: entering a port's transmit queue (before arbitration); ``tx`` the
#: moment it actually goes on the wire.
KINDS = ("inject", "enqueue", "tx", "rx", "forward", "drop", "deliver")


@dataclass(frozen=True)
class TraceEvent:
    """One observed packet event."""

    time: float
    kind: str
    device: str
    port: Optional[int]
    packet_id: int
    pi: int
    detail: str = ""

    def render(self) -> str:
        port = "" if self.port is None else f".p{self.port}"
        detail = f"  {self.detail}" if self.detail else ""
        return (
            f"{self.time * 1e6:12.3f}us  {self.kind:<8s} "
            f"pkt#{self.packet_id:<6d} pi={self.pi:<3d} "
            f"{self.device}{port}{detail}"
        )


class PacketTracer:
    """Collects trace events from an attached fabric.

    Parameters
    ----------
    limit:
        Ring-buffer capacity; the oldest events fall off.
    pi_filter:
        If given, only packets with these PI values are recorded.
    device_filter:
        If given, only events at these device names are recorded.
    """

    def __init__(self, limit: int = 100_000,
                 pi_filter: Optional[Iterable[int]] = None,
                 device_filter: Optional[Iterable[str]] = None):
        if limit < 1:
            raise ValueError("tracer needs room for at least one event")
        self.events: Deque[TraceEvent] = deque(maxlen=limit)
        self.pi_filter: Optional[Set[int]] = (
            set(pi_filter) if pi_filter is not None else None
        )
        self.device_filter: Optional[Set[str]] = (
            set(device_filter) if device_filter is not None else None
        )
        self.dropped_by_filter = 0

    # -- hook (called from the fabric hot paths) -----------------------------
    def __call__(self, kind: str, device, port_index: Optional[int],
                 packet: Packet, detail: str = "") -> None:
        if self.pi_filter is not None and packet.header.pi not in self.pi_filter:
            self.dropped_by_filter += 1
            return
        name = device.name
        if self.device_filter is not None and name not in self.device_filter:
            self.dropped_by_filter += 1
            return
        self.events.append(
            TraceEvent(
                time=device.env.now,
                kind=kind,
                device=name,
                port=port_index,
                packet_id=packet.pkt_id,
                pi=packet.header.pi,
                detail=detail,
            )
        )

    # -- attachment -----------------------------------------------------------
    def attach(self, fabric: Fabric) -> "PacketTracer":
        """Install this tracer on every device of ``fabric``."""
        for device in fabric.devices.values():
            device.trace_hook = self
        return self

    @staticmethod
    def detach(fabric: Fabric) -> None:
        """Remove any tracer from ``fabric``."""
        for device in fabric.devices.values():
            device.trace_hook = None

    # -- queries -----------------------------------------------------------------
    def events_for(self, packet_id: int) -> List[TraceEvent]:
        """All recorded events of one packet, in time order."""
        return [e for e in self.events if e.packet_id == packet_id]

    def path_of(self, packet_id: int) -> List[str]:
        """Devices a packet visited (inject/rx/deliver events)."""
        path: List[str] = []
        for event in self.events_for(packet_id):
            if event.kind in ("inject", "rx", "deliver"):
                if not path or path[-1] != event.device:
                    path.append(event.device)
        return path

    def counts(self) -> dict:
        """Events recorded per kind."""
        result = {kind: 0 for kind in KINDS}
        for event in self.events:
            result[event.kind] = result.get(event.kind, 0) + 1
        return result

    def render(self, last: Optional[int] = None) -> str:
        """The trace (or its last ``last`` events) as text."""
        events = list(self.events)
        if last is not None:
            events = events[-last:]
        return "\n".join(event.render() for event in events)

    def __len__(self) -> int:
        return len(self.events)
