"""Physical links: x1 serial lanes connecting two device ports.

A link carries packets in both directions independently.  Each
direction is serialized by the owning :class:`~repro.fabric.port.Port`;
the link contributes the wire propagation delay and the up/down state
that the discovery process ultimately probes.

Cut-through timing: the head of a packet arrives at the far side after
``tx_time(header) + propagation_delay``; the tail follows after the
rest of the serialization time.  Switches act on the head (virtual
cut-through), endpoints wait for the tail (full reception).
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Environment
from .header import HEADER_BYTES
from .params import FabricParams


class LinkError(RuntimeError):
    """Raised on invalid link wiring or use."""


class Link:
    """A bidirectional x1 serial link between two ports.

    Links are created by :meth:`repro.fabric.fabric.Fabric.connect`,
    which also attaches the two ports.
    """

    def __init__(self, env: Environment, params: FabricParams,
                 name: str = ""):
        self.env = env
        self.params = params
        self.name = name
        self.a_port = None  # type: Optional[object]
        self.b_port = None  # type: Optional[object]
        self.up = False
        #: Incremented on every down transition; in-flight deliveries
        #: from a previous epoch are dropped on arrival.
        self.epoch = 0

    # -- wiring -----------------------------------------------------------
    def attach(self, a_port, b_port) -> None:
        """Connect the two endpoints of the link."""
        if self.a_port is not None or self.b_port is not None:
            raise LinkError(f"link {self.name!r} already attached")
        if a_port is b_port:
            raise LinkError("cannot attach a link to one port twice")
        self.a_port = a_port
        self.b_port = b_port
        a_port.attach_link(self)
        b_port.attach_link(self)

    def other(self, port):
        """The port at the far end of the link from ``port``."""
        if port is self.a_port:
            return self.b_port
        if port is self.b_port:
            return self.a_port
        raise LinkError(f"{port!r} is not attached to link {self.name!r}")

    # -- timing -------------------------------------------------------------
    def tx_time(self, nbytes: int) -> float:
        """Serialization time of a packet of ``nbytes``."""
        return self.params.tx_time(nbytes)

    def head_latency(self) -> float:
        """Time from transmission start until the header has arrived."""
        return (
            self.params.tx_time(self.params.framing_overhead + HEADER_BYTES)
            + self.params.propagation_delay
        )

    # -- state ---------------------------------------------------------------
    def take_down(self) -> None:
        """Fail the link; both ports observe a port-state change."""
        if not self.up:
            return
        self.up = False
        self.epoch += 1
        for port in (self.a_port, self.b_port):
            if port is not None:
                port.on_link_state(False)

    def bring_up(self) -> None:
        """Restore the link (both attached devices must be active)."""
        if self.up:
            return
        if self.a_port is None or self.b_port is None:
            raise LinkError(f"link {self.name!r} is not attached")
        if not (self.a_port.device.active and self.b_port.device.active):
            return  # stays down until both ends are alive
        self.up = True
        for port in (self.a_port, self.b_port):
            port.on_link_state(True)

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"<Link {self.name!r} {state}>"
