"""Physical links: x1 serial lanes connecting two device ports.

A link carries packets in both directions independently.  Each
direction is serialized by the owning :class:`~repro.fabric.port.Port`;
the link contributes the wire propagation delay and the up/down state
that the discovery process ultimately probes.

Cut-through timing: the head of a packet arrives at the far side after
``tx_time(header) + propagation_delay``; the tail follows after the
rest of the serialization time.  Switches act on the head (virtual
cut-through), endpoints wait for the tail (full reception).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..sim.core import Environment
from .crc import crc32
from .header import HEADER_BYTES
from .params import FabricParams


class LinkError(RuntimeError):
    """Raised on invalid link wiring or use."""


#: Delivery verdicts produced by :meth:`LinkErrorModel.classify`.
DELIVER_OK = 0
DELIVER_LOST = 1
DELIVER_CORRUPT = 2


class LinkErrorModel:
    """Seeded, deterministic per-link channel error process.

    Converts a bit error rate into a per-packet corruption probability
    (``1 - (1 - BER)^bits``), layered under an independent whole-packet
    loss probability and an optional link-layer duplication (replay)
    probability.  Corruption is realized by actually flipping bits in
    the packet's wire serialization, so the receive side exercises the
    real header-CRC/PCRC machinery instead of a synthetic drop flag.

    Each link owns one model whose RNG stream is derived from the
    fabric-wide ``error_seed`` and the link's name (via CRC-32, not
    ``hash()``, which is salted per process) — runs are bit-for-bit
    reproducible across processes and sweep workers.  A link with all
    rates at zero gets no model at all (``Link.error_model is None``),
    so the perfect-channel fast path draws no random numbers and
    schedules no extra events.
    """

    __slots__ = ("rng", "bit_error_rate", "packet_loss_rate",
                 "duplicate_rate", "burst_length", "_corrupt_cache",
                 "corrupted", "lost", "duplicated")

    def __init__(self, bit_error_rate: float, packet_loss_rate: float,
                 duplicate_rate: float, burst_length: float, seed: int):
        self.rng = random.Random(seed)
        self.bit_error_rate = bit_error_rate
        self.packet_loss_rate = packet_loss_rate
        self.duplicate_rate = duplicate_rate
        self.burst_length = burst_length
        #: Packet sizes repeat heavily (requests, completions, events),
        #: so the per-size corruption probability is memoized.
        self._corrupt_cache: Dict[int, float] = {}
        self.corrupted = 0
        self.lost = 0
        self.duplicated = 0

    @classmethod
    def for_link(cls, params: FabricParams,
                 name: str) -> Optional["LinkErrorModel"]:
        """Build the model for a named link, or None on a perfect channel."""
        if not params.lossy:
            return None
        seed = (params.error_seed << 32) ^ crc32(name.encode("utf-8"))
        return cls(
            bit_error_rate=params.bit_error_rate,
            packet_loss_rate=params.packet_loss_rate,
            duplicate_rate=params.duplicate_rate,
            burst_length=params.error_burst_length,
            seed=seed,
        )

    def corrupt_probability(self, size_bytes: int) -> float:
        """Per-packet corruption probability for a wire size."""
        cached = self._corrupt_cache.get(size_bytes)
        if cached is None:
            cached = 1.0 - (1.0 - self.bit_error_rate) ** (8 * size_bytes)
            self._corrupt_cache[size_bytes] = cached
        return cached

    def classify(self, size_bytes: int) -> int:
        """Fate of one delivered packet (single uniform draw).

        The draw is partitioned: whole-packet loss first (the framing
        never locks, nothing arrives), then BER-driven corruption.
        """
        draw = self.rng.random()
        if draw < self.packet_loss_rate:
            self.lost += 1
            return DELIVER_LOST
        if self.bit_error_rate > 0.0:
            if draw < self.packet_loss_rate + self.corrupt_probability(
                size_bytes
            ) * (1.0 - self.packet_loss_rate):
                self.corrupted += 1
                return DELIVER_CORRUPT
        return DELIVER_OK

    def duplicate(self) -> bool:
        """Whether the link layer replays this transmission.

        Only called (and only draws) when ``duplicate_rate > 0``, so
        enabling BER alone leaves the RNG stream identical to a
        BER-only configuration.
        """
        if self.rng.random() < self.duplicate_rate:
            self.duplicated += 1
            return True
        return False

    def corrupt_bytes(self, data: bytes) -> Tuple[bytes, int]:
        """Flip a burst of bits in ``data``; returns (corrupted, flips).

        The burst length is geometric with the configured mean, the
        classic model for correlated symbol errors on serial lanes.
        """
        rng = self.rng
        flips = 1
        if self.burst_length > 1.0:
            carry_on = 1.0 - 1.0 / self.burst_length
            while rng.random() < carry_on:
                flips += 1
        corrupted = bytearray(data)
        nbits = 8 * len(corrupted)
        for _ in range(flips):
            bit = rng.randrange(nbits)
            corrupted[bit >> 3] ^= 1 << (bit & 0x7)
        return bytes(corrupted), flips

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<LinkErrorModel ber={self.bit_error_rate:g} "
            f"loss={self.packet_loss_rate:g} dup={self.duplicate_rate:g} "
            f"corrupted={self.corrupted} lost={self.lost}>"
        )


class Link:
    """A bidirectional x1 serial link between two ports.

    Links are created by :meth:`repro.fabric.fabric.Fabric.connect`,
    which also attaches the two ports.
    """

    def __init__(self, env: Environment, params: FabricParams,
                 name: str = ""):
        self.env = env
        self.params = params
        self.name = name
        self.a_port = None  # type: Optional[object]
        self.b_port = None  # type: Optional[object]
        self.up = False
        #: Incremented on every down transition; in-flight deliveries
        #: from a previous epoch are dropped on arrival.
        self.epoch = 0
        #: Channel error process, or None on a perfect channel (the
        #: default).  The model survives link flaps: retraining does
        #: not reset the error stream.
        self.error_model = LinkErrorModel.for_link(params, name)

    # -- wiring -----------------------------------------------------------
    def attach(self, a_port, b_port) -> None:
        """Connect the two endpoints of the link."""
        if self.a_port is not None or self.b_port is not None:
            raise LinkError(f"link {self.name!r} already attached")
        if a_port is b_port:
            raise LinkError("cannot attach a link to one port twice")
        self.a_port = a_port
        self.b_port = b_port
        a_port.attach_link(self)
        b_port.attach_link(self)

    def other(self, port):
        """The port at the far end of the link from ``port``."""
        if port is self.a_port:
            return self.b_port
        if port is self.b_port:
            return self.a_port
        raise LinkError(f"{port!r} is not attached to link {self.name!r}")

    # -- timing -------------------------------------------------------------
    def tx_time(self, nbytes: int) -> float:
        """Serialization time of a packet of ``nbytes``."""
        return self.params.tx_time(nbytes)

    def head_latency(self) -> float:
        """Time from transmission start until the header has arrived."""
        return (
            self.params.tx_time(self.params.framing_overhead + HEADER_BYTES)
            + self.params.propagation_delay
        )

    # -- state ---------------------------------------------------------------
    def take_down(self) -> None:
        """Fail the link; both ports observe a port-state change."""
        if not self.up:
            return
        self.up = False
        self.epoch += 1
        for port in (self.a_port, self.b_port):
            if port is not None:
                port.on_link_state(False)

    def bring_up(self) -> None:
        """Restore the link (both attached devices must be active)."""
        if self.up:
            return
        if self.a_port is None or self.b_port is None:
            raise LinkError(f"link {self.name!r} is not attached")
        if not (self.a_port.device.active and self.b_port.device.active):
            return  # stays down until both ends are alive
        self.up = True
        for port in (self.a_port, self.b_port):
            port.on_link_state(True)

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"<Link {self.name!r} {state}>"
