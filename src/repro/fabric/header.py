"""The ASI route header, modeled on Fig. 1 of the paper.

Every ASI packet starts with a routing header carrying:

* **PI** — the protocol interface of the encapsulated payload (PI-4 is
  the device configuration/control protocol, PI-5 event notification);
* **TC** — traffic class, mapped to a virtual channel at each port;
* **Turn Pool / Turn Pointer / D** — the source route (see
  :mod:`repro.routing.turnpool`);
* **OO / TS** — ordered-only / type-specific bits controlling whether a
  packet may use a BVC bypass queue;
* **Credits Required** — size of the packet in credit units, used by
  link-level flow control;
* a header CRC.

Modeled deviations from the real Advanced Switching header (documented
here and in DESIGN.md): the real header is 2 dwords with a 31-bit turn
pool, which caps source routes at 31 turn bits — too short for the
paper's largest topologies (an 8x8 mesh corner-to-corner path needs
14 x 4 = 56 bits through 16-port switches).  We widen the pool to 64
bits (header becomes 4 dwords) and give the turn pointer 7 bits.  All
other semantics follow the specification.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from .._limits import TURN_POOL_BITS
from .crc import crc8

#: Serialized size of the route header in bytes.
HEADER_BYTES = 16

_STRUCT = struct.Struct(">IIQ")  # dword0, dword1, 64-bit pool


class HeaderError(ValueError):
    """Raised when a header fails validation or CRC check."""


@dataclass
class RouteHeader:
    """A decoded ASI route header.

    Attributes
    ----------
    pi:
        Protocol interface of the payload (0-255).
    tc:
        Traffic class (0-7).
    direction:
        0 = forward route (turn pointer counts down to 0),
        1 = backward route (turn pointer counts up).
    oo:
        Ordered-only bit; 1 forbids use of a BVC bypass queue.
    ts:
        Type-specific bypass hint; management packets set ``ts=1`` so
        they can overtake application traffic in BVC bypass queues.
    credits_required:
        Packet size in credit units (0-31), filled by the sender.
    turn_pointer:
        Current position in the turn pool (0-``TURN_POOL_BITS``).
    turn_pool:
        The packed source route.
    fecn / perr:
        Congestion-notification and poisoned bits (modeled, unused by
        the discovery study but kept for header fidelity).
    """

    pi: int = 0
    tc: int = 0
    direction: int = 0
    oo: int = 0
    ts: int = 0
    credits_required: int = 0
    turn_pointer: int = 0
    turn_pool: int = 0
    fecn: int = 0
    perr: int = 0

    def __post_init__(self):
        self.validate()

    def __setattr__(self, name, value):
        # Dirty bit for the pack()/CRC memo: any field mutation (the
        # switches rewrite ``turn_pointer`` at every hop) invalidates
        # the cached serialization.
        object.__setattr__(self, name, value)
        if name != "_packed":
            object.__setattr__(self, "_packed", None)

    def validate(self) -> None:
        """Check every field is within its bit width."""
        checks = [
            ("pi", self.pi, 0xFF),
            ("tc", self.tc, 0x7),
            ("direction", self.direction, 0x1),
            ("oo", self.oo, 0x1),
            ("ts", self.ts, 0x1),
            ("credits_required", self.credits_required, 0x1F),
            ("turn_pointer", self.turn_pointer, 0x7F),
            ("fecn", self.fecn, 0x1),
            ("perr", self.perr, 0x1),
        ]
        for name, value, mask in checks:
            if not 0 <= value <= mask:
                raise HeaderError(f"{name}={value} outside [0, {mask}]")
        if self.turn_pointer > TURN_POOL_BITS:
            raise HeaderError(
                f"turn_pointer={self.turn_pointer} exceeds pool width"
            )
        if not 0 <= self.turn_pool < (1 << TURN_POOL_BITS):
            raise HeaderError("turn_pool outside 64-bit range")

    # -- serialization -----------------------------------------------------
    def _pack_words(self, hcrc: int) -> bytes:
        dword0 = (
            (self.pi << 24)
            | (self.tc << 21)
            | (self.direction << 20)
            | (self.oo << 19)
            | (self.ts << 18)
            | (self.turn_pointer << 11)
            | (0 << 8)  # reserved
            | hcrc
        )
        dword1 = (
            (self.credits_required << 27)
            | (self.fecn << 26)
            | (self.perr << 25)
        )
        return _STRUCT.pack(dword0, dword1, self.turn_pool)

    def pack(self) -> bytes:
        """Serialize to ``HEADER_BYTES`` bytes, computing the header CRC.

        The serialization (including the CRC-8) is memoized and
        invalidated by the ``__setattr__`` dirty bit whenever a field
        changes, so repeated packs of an unmodified header are free.
        """
        packed = self._packed
        if packed is None:
            self.validate()
            raw = self._pack_words(hcrc=0)
            packed = self._pack_words(hcrc=crc8(raw))
            object.__setattr__(self, "_packed", packed)
        return packed

    @classmethod
    def unpack(cls, data: bytes, check_crc: bool = True) -> "RouteHeader":
        """Decode a header from bytes, verifying the CRC by default."""
        if len(data) < HEADER_BYTES:
            raise HeaderError(
                f"need {HEADER_BYTES} bytes, got {len(data)}"
            )
        dword0, dword1, pool = _STRUCT.unpack(data[:HEADER_BYTES])
        header = cls(
            pi=(dword0 >> 24) & 0xFF,
            tc=(dword0 >> 21) & 0x7,
            direction=(dword0 >> 20) & 0x1,
            oo=(dword0 >> 19) & 0x1,
            ts=(dword0 >> 18) & 0x1,
            turn_pointer=(dword0 >> 11) & 0x7F,
            credits_required=(dword1 >> 27) & 0x1F,
            fecn=(dword1 >> 26) & 0x1,
            perr=(dword1 >> 25) & 0x1,
            turn_pool=pool,
        )
        if check_crc:
            expected = dword0 & 0xFF
            actual = crc8(header._pack_words(hcrc=0))
            if expected != actual:
                raise HeaderError(
                    f"header CRC mismatch: stored {expected:#04x}, "
                    f"computed {actual:#04x}"
                )
        return header

    # -- helpers -------------------------------------------------------------
    def copy(self, **changes) -> "RouteHeader":
        """Return a copy with ``changes`` applied."""
        return replace(self, **changes)

    def reversed(self) -> "RouteHeader":
        """Header for a completion traveling back along this route.

        Per the specification, a response reuses the request's turn pool
        and traffic class, flips the direction bit, and resets the turn
        pointer to the position the forward traversal finished at (0).
        """
        if self.direction != 0:
            raise HeaderError("can only reverse a forward header")
        return self.copy(direction=1, turn_pointer=0)
