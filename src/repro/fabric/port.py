"""Device ports: per-VC output queues, arbitration, and flow control.

Each port owns the transmit side of its link direction.  A background
process arbitrates among the port's virtual channels (strict priority:
higher VC index first, and within a BVC the bypass queue first),
reserves credits mirroring the far side's input buffer, serializes the
packet on the link, and delivers the head to the remote port.

The receive side accounts input-buffer occupancy and hands packets to
the owning device; when the device releases the packet (forwards or
consumes it), credits flow back to the sender after one propagation
delay.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

from ..sim.core import Environment
from ..sim.events import URGENT
from ..sim.monitor import Counter
from .flow_control import CreditCounter
from .header import HeaderError
from .packet import Packet, PacketError
from .params import FabricParams
from .phy import DELIVER_CORRUPT, DELIVER_OK
from .vc import VCType, VirtualChannel, default_vc_types

#: Key under which a packet carries its pending input-buffer release
#: callbacks (virtual cut-through: the upstream buffer is freed when
#: the packet starts its next transmission or is consumed).
RX_RELEASE_KEY = "_rx_release"


@lru_cache(maxsize=None)
def _vc_details(vc_count: int) -> Tuple[str, ...]:
    """Flyweight trace detail strings, shared by every same-shaped port."""
    return tuple(f"vc={i}" for i in range(vc_count))


class Port:
    """One port of a fabric device.

    The heavyweight per-port structures — VC queues, credit counters,
    input-buffer accounting, the stats counter — are materialized
    lazily on first use: a mega-scale fabric wires hundreds of
    thousands of ports, but discovery traffic transits only the route
    tree, so most ports never pay for them.
    """

    __slots__ = (
        "device", "index", "params", "env", "link", "error_count",
        "_stats", "_tx_vcs", "_credits", "_rx_use", "_tx_busy",
        "_tx_kick_scheduled", "_trace", "_vc_detail", "_credit_unit",
        "_framing", "_pcrc", "_prop", "_byte_time", "_rx_cap",
        "_tc_vc_map", "_pick_order", "_head_latency", "_remote",
        "_error_model",
    )

    def __init__(self, device, index: int, params: FabricParams):
        self.device = device
        self.index = index
        self.params = params
        self.env: Environment = device.env
        self.link = None
        self.error_count = 0
        #: Lazily-built :class:`Counter` (see the ``stats`` property).
        self._stats = None
        #: Per-VC output queues, remote input-buffer mirrors, and the
        #: arbitration order — all ``None`` until this port transmits.
        self._tx_vcs = None
        self._credits = None
        self._pick_order = None
        #: Units currently held in our own input buffer, per VC
        #: (``None`` until this port receives).
        self._rx_use = None
        #: Transmit-engine state (see ``_tx_start``): a serialization
        #: timer is pending / a zero-delay kick is already on the heap.
        self._tx_busy = False
        self._tx_kick_scheduled = False
        #: Mirror of ``device.trace_hook`` (kept in sync by its setter)
        #: so the per-packet paths pay a single attribute load.  Ports
        #: are built before the device finishes initializing, hence the
        #: guarded read.
        self._trace = getattr(device, "_trace_hook", None)
        #: Trace detail strings, interned across ports.
        self._vc_detail = _vc_details(params.vc_count)
        #: ``FabricParams`` is frozen, so its values are hoisted once
        #: here instead of re-read (attribute chain + property calls)
        #: for every packet.
        self._credit_unit = params.credit_unit
        self._framing = params.framing_overhead
        self._pcrc = params.pcrc_bytes
        self._prop = params.propagation_delay
        self._byte_time = 8.0 / params.data_rate
        self._rx_cap = params.rx_buffer_credits
        self._tc_vc_map = params.tc_vc_map
        self._head_latency = 0.0
        self._remote: Optional["Port"] = None
        #: Mirror of the link's channel error model (hoisted at attach;
        #: None on the default perfect channel, which keeps the
        #: per-packet paths free of error-model branches beyond one
        #: ``is None`` test).
        self._error_model = None

    # -- lazy structures -------------------------------------------------
    @property
    def stats(self) -> Counter:
        """Per-port counters, created on first use."""
        stats = self._stats
        if stats is None:
            stats = self._stats = Counter()
        return stats

    @property
    def credits(self):
        """Remote input-buffer mirrors (empty until first transmit)."""
        return self._credits if self._credits is not None else ()

    @property
    def _rx_in_use(self):
        """Per-VC input-buffer occupancy (empty until first receive)."""
        return self._rx_use if self._rx_use is not None else ()

    def _materialize_tx(self) -> None:
        """Build the VC queues, credit mirrors, and arbitration order."""
        params = self.params
        if params.vc_types:
            vc_types = [VCType(t) for t in params.vc_types]
        else:
            vc_types = default_vc_types(params.vc_count)
        self._tx_vcs = [
            VirtualChannel(i, vc_types[i]) for i in range(params.vc_count)
        ]
        self._credits = [
            CreditCounter(self.env, params.rx_buffer_credits)
            for _ in range(params.vc_count)
        ]
        self._pick_order = tuple(
            (vc, self._credits[vc.index]) for vc in reversed(self._tx_vcs)
        )

    # -- identity -------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.device.name}.p{self.index}"

    @property
    def is_up(self) -> bool:
        """Port state as seen by the baseline capability."""
        return (
            self.link is not None
            and self.link.up
            and self.device.active
        )

    def neighbor(self):
        """The port at the far end of the attached link, or None."""
        if self.link is None:
            return None
        return self.link.other(self)

    # -- wiring -----------------------------------------------------------
    def attach_link(self, link) -> None:
        if self.link is not None:
            raise RuntimeError(f"port {self.name} already has a link")
        self.link = link
        self._head_latency = link.head_latency()
        self._remote = link.other(self)
        self._error_model = link.error_model
        # Prime the transmit engine.  The urgent zero-delay kick
        # occupies the scheduling slot the old generator-based loop's
        # Initialize event used, so event ordering is unchanged.
        self._tx_kick_scheduled = True
        self.env.schedule_callback(0.0, self._tx_kick, URGENT)

    def on_link_state(self, up: bool) -> None:
        """Called by the link on up/down transitions."""
        if not up:
            # Lost packets' credits are resynchronized on retrain.
            if self._credits is not None:
                for counter in self._credits:
                    counter.reset()
            if self._rx_use is not None:
                self._rx_use = [0] * self.params.vc_count
            if self._tx_vcs is not None:
                for vc in self._tx_vcs:
                    dropped = len(vc)
                    if dropped:
                        self.stats.incr("tx_dropped_link_down", dropped)
                    for packet in list(vc):
                        # Forwarded packets still hold an input buffer
                        # on another port of this device; free it.
                        self._run_releases(packet)
                    vc.ordered.clear()
                    vc.bypass.clear()
        self._wake()
        self.device.on_port_state_change(self, up)

    # -- transmit side ------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Queue a packet for transmission out of this port.

        Raises
        ------
        CreditError
            If the packet exceeds the far side's entire input buffer —
            it could never be granted credits and would wedge its VC
            queue forever (real links negotiate max payload against
            buffer size at training time).
        """
        units = packet.credit_units(
            self._credit_unit, self._framing, self._pcrc
        )
        if units > self._rx_cap:
            self._run_releases(packet)
            from .flow_control import CreditError

            raise CreditError(
                f"packet of {units} credit units exceeds the "
                f"{self._rx_cap}-unit receive buffer; "
                f"lower max_payload or raise rx_buffer_credits"
            )
        vc_index = self._tc_vc_map[packet.header.tc & 0x7]
        if self.link is None or not self.link.up or not self.device.active:
            self.stats.incr("tx_dropped_no_link")
            self._run_releases(packet)
            return
        if self._tx_vcs is None:
            self._materialize_tx()
        self._tx_vcs[vc_index].push(packet)
        self.stats.incr("tx_queued")
        if self._trace is not None:
            self._trace("enqueue", self.device, self.index, packet,
                        f"vc{vc_index}")
        self._wake()

    def _wake(self) -> None:
        # Kick the transmit engine with a zero-delay callback unless a
        # serialization is in flight (it re-arbitrates when the timer
        # fires) or a kick is already on the heap.
        if not self._tx_busy and not self._tx_kick_scheduled:
            self._tx_kick_scheduled = True
            self.env.schedule_callback(0.0, self._tx_kick)

    def _pick(self):
        """Highest-priority VC whose head packet has credits available."""
        if self._pick_order is None:
            return None  # nothing was ever queued on this port
        for vc, credit in self._pick_order:
            packet = vc.peek()
            if packet is None:
                continue
            units = packet.credit_units(
                self._credit_unit, self._framing, self._pcrc
            )
            if credit.available >= units:
                return vc, packet, units, credit
        return None

    def _tx_kick(self, _event=None) -> None:
        self._tx_kick_scheduled = False
        self._tx_start()

    def _tx_done(self, _event=None) -> None:
        self._tx_busy = False
        self._tx_start()

    def _tx_start(self) -> None:
        """Arbitrate, reserve credits, serialize, deliver (one packet).

        The transmit engine is a callback-driven state machine rather
        than a generator process: per packet it costs one delivery
        callback and one serialization timer, with no process-trampoline
        resume, no wakeup events, and no Timeout construction.  It is
        idle until :meth:`_wake` kicks it; while serializing it is
        *busy* and re-arbitrates from :meth:`_tx_done`.
        """
        link = self.link
        if link is None or not link.up:
            return
        choice = self._pick()
        if choice is None:
            return
        vc, packet, units, credit = choice
        vc.pop()
        grant = credit.consume(units)
        assert grant.triggered, "pick() guaranteed credits"
        header = packet.header
        required = units if units < 31 else 31
        if header.credits_required != required:
            # Skip the store when unchanged: RouteHeader invalidates
            # its pack() memo on every field assignment.
            header.credits_required = required
        # The packet leaves this device's buffer as its first bit
        # hits the wire: release the upstream input buffer now.
        self._run_releases(packet)

        size = packet.size_bytes(self._framing, self._pcrc)
        tx_time = size * self._byte_time
        head = self._head_latency
        prop = self._prop
        epoch = link.epoch
        tail_lag = tx_time - head + prop
        if tail_lag < 0.0:
            tail_lag = 0.0

        stats = self.stats
        stats.incr("tx_packets")
        stats.incr("tx_bytes", size)
        if self._trace is not None:
            self._trace("tx", self.device, self.index, packet,
                        detail=self._vc_detail[vc.index])

        schedule_callback = self.env.schedule_callback
        schedule_callback(
            min(head, tx_time + prop),
            lambda ev, r=self._remote, p=packet, v=vc.index, u=units,
            e=epoch, t=tail_lag, s=size: r._receive(p, v, u, t, e, s),
        )
        busy_time = tx_time
        error_model = self._error_model
        if (
            error_model is not None
            and error_model.duplicate_rate > 0.0
            and error_model.duplicate()
            and credit.available >= units
        ):
            # Link-layer replay: the lane serializes a second copy
            # back-to-back.  The replay consumes its own credits (it
            # really occupies the remote buffer) and is skipped when
            # none are free.
            credit.consume(units)
            replay = self._clone_for_replay(packet)
            stats.incr("tx_replays")
            if self._trace is not None:
                self._trace("tx", self.device, self.index, replay,
                            detail="link replay")
            schedule_callback(
                tx_time + min(head, tx_time + prop),
                lambda ev, r=self._remote, p=replay, v=vc.index, u=units,
                e=epoch, t=tail_lag, s=size: r._receive(p, v, u, t, e, s),
            )
            busy_time += tx_time
        # Keep the lane busy for the full serialization time.
        self._tx_busy = True
        schedule_callback(busy_time, self._tx_done)

    @staticmethod
    def _clone_for_replay(packet: Packet) -> Packet:
        """A wire-identical copy for link-layer duplication.

        The header is copied (switches rewrite the turn pointer in
        place, so the two in-flight copies must not share one) and the
        clone starts with fresh bookkeeping: no buffer-release
        callbacks, its own hop counter.
        """
        replay = Packet(
            header=packet.header.copy(),
            payload=packet.payload,
            src=packet.src,
            created_at=packet.created_at,
            hops=packet.hops,
        )
        replay.meta["replay_of"] = packet.pkt_id
        return replay

    @staticmethod
    def _run_releases(packet: Packet) -> None:
        for release in packet.meta.pop(RX_RELEASE_KEY, []):
            release()

    # -- receive side ---------------------------------------------------------
    def _receive(self, packet: Packet, vc_index: int, units: int,
                 tail_lag: float, epoch: int, size: int) -> None:
        """Head of ``packet`` has arrived from the link.

        ``size`` is the wire size already computed by the transmitter,
        passed through so the receive path does not recompute it.
        """
        if (
            self.link is None
            or not self.link.up
            or self.link.epoch != epoch
            or not self.device.active
        ):
            self.stats.incr("rx_dropped")
            if self._trace is not None:
                self._trace("drop", self.device, self.index, packet,
                            detail="link down / stale epoch")
            return
        if self._error_model is not None and not self._apply_channel_errors(
                packet, vc_index, units, epoch, size):
            return
        if self._rx_use is None:
            self._rx_use = [0] * self.params.vc_count
        self._rx_use[vc_index] += units
        self.stats.incr("rx_packets")
        if self._trace is not None:
            self._trace("rx", self.device, self.index, packet,
                        detail=self._vc_detail[vc_index])
        self.stats.incr("rx_bytes", size)
        packet.meta.setdefault(RX_RELEASE_KEY, []).append(
            lambda: self._release_rx(vc_index, units, epoch)
        )
        self.device.handle_rx(packet, self, vc_index, tail_lag)

    def _apply_channel_errors(self, packet: Packet, vc_index: int,
                              units: int, epoch: int, size: int) -> bool:
        """Subject an arriving packet to the link's error process.

        Returns True if the packet survives.  On loss or CRC failure
        the packet is dropped here (with a ``drop`` trace event and a
        counter) and the consumed credits are returned to the sender —
        the receive buffer was reserved at transmit time, so a silent
        drop would leak flow-control credits.
        """
        error_model = self._error_model
        verdict = error_model.classify(size)
        if verdict == DELIVER_OK:
            return True
        if verdict == DELIVER_CORRUPT:
            # Realize the corruption: flip wire bits and run the real
            # header-CRC/PCRC decode machinery against the result.
            corrupted, flips = error_model.corrupt_bytes(packet.to_bytes())
            try:
                Packet.from_bytes(corrupted)
            except (HeaderError, PacketError):
                self.stats.incr("rx_crc_dropped")
                detail = f"CRC check failed ({flips} flipped bit(s))"
            else:  # pragma: no cover - needs a CRC-32 collision
                self.stats.incr("rx_undetected_errors")
                return True
        else:
            self.stats.incr("rx_lost")
            detail = "packet lost on link"
        if self._trace is not None:
            self._trace("drop", self.device, self.index, packet,
                        detail=detail)
        self.env.schedule_callback(
            self._prop,
            lambda ev, p=self._remote, v=vc_index, u=units, e=epoch:
            p._credit_update(v, u, e),
        )
        return False

    def _release_rx(self, vc_index: int, units: int, epoch: int) -> None:
        """Free input-buffer space and return credits to the sender."""
        if self.link is None or self.link.epoch != epoch:
            return  # buffer already resynchronized by a down transition
        rx_use = self._rx_use
        rx_use[vc_index] = max(0, rx_use[vc_index] - units)
        peer = self._remote
        self.env.schedule_callback(
            self._prop,
            lambda ev, p=peer, v=vc_index, u=units, e=epoch:
            p._credit_update(v, u, e),
        )

    def _credit_update(self, vc_index: int, units: int, epoch: int) -> None:
        if self.link is None or self.link.epoch != epoch or not self.link.up:
            return
        if self._credits is None:
            return  # never transmitted: nothing outstanding to release
        self._credits[vc_index].release(units)
        self._wake()

    # -- introspection ----------------------------------------------------
    def queued_packets(self) -> int:
        """Packets waiting in this port's output queues."""
        if self._tx_vcs is None:
            return 0
        return sum(len(vc) for vc in self._tx_vcs)

    def vc_stats(self) -> list:
        """Read-only per-VC snapshot: queue depths and credit state.

        A pure read of current state — it touches no counters and
        schedules nothing, so calling it cannot perturb a golden run.
        Lazily-materialized state reads as empty/full (the port never
        transmitted, so nothing is queued and no credit is spent).
        """
        count = self.params.vc_count
        if self._tx_vcs is not None:
            types = [vc.vc_type for vc in self._tx_vcs]
        elif self.params.vc_types:
            types = [VCType(t) for t in self.params.vc_types]
        else:
            types = default_vc_types(count)
        rows = []
        for index in range(count):
            vc = self._tx_vcs[index] if self._tx_vcs is not None else None
            credit = (self._credits[index]
                      if self._credits is not None else None)
            rows.append({
                "vc": index,
                "type": types[index].value,
                "tx_queued": 0 if vc is None else len(vc),
                "tx_bypass_queued": 0 if vc is None else len(vc.bypass),
                "credits_available": (
                    self._rx_cap if credit is None else credit.available
                ),
                "credits_capacity": (
                    self._rx_cap if credit is None else credit.capacity
                ),
                "rx_units_in_use": (
                    0 if self._rx_use is None else self._rx_use[index]
                ),
            })
        return rows

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Port {self.name} {'up' if self.is_up else 'down'}>"
