"""Device ports: per-VC output queues, arbitration, and flow control.

Each port owns the transmit side of its link direction.  A background
process arbitrates among the port's virtual channels (strict priority:
higher VC index first, and within a BVC the bypass queue first),
reserves credits mirroring the far side's input buffer, serializes the
packet on the link, and delivers the head to the remote port.

The receive side accounts input-buffer occupancy and hands packets to
the owning device; when the device releases the packet (forwards or
consumes it), credits flow back to the sender after one propagation
delay.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.core import Environment
from ..sim.events import Event
from ..sim.monitor import Counter
from .flow_control import CreditCounter
from .packet import Packet
from .params import FabricParams
from .vc import VCType, VirtualChannel, default_vc_types

#: Key under which a packet carries its pending input-buffer release
#: callbacks (virtual cut-through: the upstream buffer is freed when
#: the packet starts its next transmission or is consumed).
RX_RELEASE_KEY = "_rx_release"


class Port:
    """One port of a fabric device."""

    def __init__(self, device, index: int, params: FabricParams):
        self.device = device
        self.index = index
        self.params = params
        self.env: Environment = device.env
        self.link = None
        self.error_count = 0
        self.stats = Counter()
        if params.vc_types:
            vc_types = [VCType(t) for t in params.vc_types]
        else:
            vc_types = default_vc_types(params.vc_count)
        self._tx_vcs: List[VirtualChannel] = [
            VirtualChannel(i, vc_types[i]) for i in range(params.vc_count)
        ]
        #: Mirrors of the remote input buffer, one per VC (built when a
        #: link is attached).
        self.credits: List[CreditCounter] = []
        #: Units currently held in our own input buffer, per VC.
        self._rx_in_use: List[int] = [0] * params.vc_count
        self._wakeup: Optional[Event] = None
        self._tx_proc = None

    # -- identity -------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.device.name}.p{self.index}"

    @property
    def is_up(self) -> bool:
        """Port state as seen by the baseline capability."""
        return (
            self.link is not None
            and self.link.up
            and self.device.active
        )

    def neighbor(self):
        """The port at the far end of the attached link, or None."""
        if self.link is None:
            return None
        return self.link.other(self)

    # -- wiring -----------------------------------------------------------
    def attach_link(self, link) -> None:
        if self.link is not None:
            raise RuntimeError(f"port {self.name} already has a link")
        self.link = link
        self.credits = [
            CreditCounter(self.env, self.params.rx_buffer_credits)
            for _ in range(self.params.vc_count)
        ]
        if self._tx_proc is None:
            self._tx_proc = self.env.process(
                self._tx_loop(), name=f"tx:{self.name}"
            )

    def on_link_state(self, up: bool) -> None:
        """Called by the link on up/down transitions."""
        if not up:
            # Lost packets' credits are resynchronized on retrain.
            for counter in self.credits:
                counter.available = counter.capacity
                counter._waiters.clear()
            self._rx_in_use = [0] * self.params.vc_count
            for vc in self._tx_vcs:
                dropped = len(vc)
                if dropped:
                    self.stats.incr("tx_dropped_link_down", dropped)
                for packet in list(vc):
                    # Forwarded packets still hold an input buffer on
                    # another port of this device; free it.
                    self._run_releases(packet)
                vc.ordered.clear()
                vc.bypass.clear()
        self._wake()
        self.device.on_port_state_change(self, up)

    # -- transmit side ------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Queue a packet for transmission out of this port.

        Raises
        ------
        CreditError
            If the packet exceeds the far side's entire input buffer —
            it could never be granted credits and would wedge its VC
            queue forever (real links negotiate max payload against
            buffer size at training time).
        """
        units = packet.credit_units(
            self.params.credit_unit,
            self.params.framing_overhead,
            self.params.pcrc_bytes,
        )
        if units > self.params.rx_buffer_credits:
            self._run_releases(packet)
            from .flow_control import CreditError

            raise CreditError(
                f"packet of {units} credit units exceeds the "
                f"{self.params.rx_buffer_credits}-unit receive buffer; "
                f"lower max_payload or raise rx_buffer_credits"
            )
        vc_index = self.params.vc_for_tc(packet.header.tc)
        if self.link is None or not self.link.up or not self.device.active:
            self.stats.incr("tx_dropped_no_link")
            self._run_releases(packet)
            return
        self._tx_vcs[vc_index].push(packet)
        self.stats.incr("tx_queued")
        self._wake()

    def _wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _pick(self):
        """Highest-priority VC whose head packet has credits available."""
        for vc in reversed(self._tx_vcs):
            packet = vc.peek()
            if packet is None:
                continue
            units = packet.credit_units(
                self.params.credit_unit,
                self.params.framing_overhead,
                self.params.pcrc_bytes,
            )
            if self.credits[vc.index].available >= units:
                return vc, packet, units
        return None

    def _tx_loop(self):
        """Arbitrate, reserve credits, serialize, deliver."""
        while True:
            if self.link is None or not self.link.up:
                yield self._sleep()
                continue
            choice = self._pick()
            if choice is None:
                yield self._sleep()
                continue
            vc, packet, units = choice
            vc.pop()
            grant = self.credits[vc.index].consume(units)
            assert grant.triggered, "pick() guaranteed credits"
            packet.header.credits_required = min(units, 31)
            # The packet leaves this device's buffer as its first bit
            # hits the wire: release the upstream input buffer now.
            self._run_releases(packet)

            size = packet.size_bytes(
                self.params.framing_overhead, self.params.pcrc_bytes
            )
            tx_time = self.link.tx_time(size)
            head = self.link.head_latency()
            remote = self.link.other(self)
            epoch = self.link.epoch
            tail_lag = max(0.0, tx_time - head + self.params.propagation_delay)

            self.stats.incr("tx_packets")
            self.stats.incr("tx_bytes", size)
            hook = self.device.trace_hook
            if hook is not None:
                hook("tx", self.device, self.index, packet,
                     detail=f"vc={vc.index}")

            arrival = self.env.timeout(min(head, tx_time + self.params.propagation_delay))
            arrival.callbacks.append(
                lambda ev, r=remote, p=packet, v=vc.index, u=units,
                e=epoch, t=tail_lag: r._receive(p, v, u, t, e)
            )
            # Keep the lane busy for the full serialization time.
            yield self.env.timeout(tx_time)

    def _sleep(self) -> Event:
        self._wakeup = self.env.event()
        return self._wakeup

    @staticmethod
    def _run_releases(packet: Packet) -> None:
        for release in packet.meta.pop(RX_RELEASE_KEY, []):
            release()

    # -- receive side ---------------------------------------------------------
    def _receive(self, packet: Packet, vc_index: int, units: int,
                 tail_lag: float, epoch: int) -> None:
        """Head of ``packet`` has arrived from the link."""
        if (
            self.link is None
            or not self.link.up
            or self.link.epoch != epoch
            or not self.device.active
        ):
            self.stats.incr("rx_dropped")
            hook = self.device.trace_hook
            if hook is not None:
                hook("drop", self.device, self.index, packet,
                     detail="link down / stale epoch")
            return
        self._rx_in_use[vc_index] += units
        self.stats.incr("rx_packets")
        hook = self.device.trace_hook
        if hook is not None:
            hook("rx", self.device, self.index, packet,
                 detail=f"vc={vc_index}")
        self.stats.incr(
            "rx_bytes",
            packet.size_bytes(
                self.params.framing_overhead, self.params.pcrc_bytes
            ),
        )
        packet.meta.setdefault(RX_RELEASE_KEY, []).append(
            lambda: self._release_rx(vc_index, units, epoch)
        )
        self.device.handle_rx(packet, self, vc_index, tail_lag)

    def _release_rx(self, vc_index: int, units: int, epoch: int) -> None:
        """Free input-buffer space and return credits to the sender."""
        if self.link is None or self.link.epoch != epoch:
            return  # buffer already resynchronized by a down transition
        self._rx_in_use[vc_index] = max(0, self._rx_in_use[vc_index] - units)
        peer = self.link.other(self)
        update = self.env.timeout(self.params.propagation_delay)
        update.callbacks.append(
            lambda ev, p=peer, v=vc_index, u=units, e=epoch:
            p._credit_update(v, u, e)
        )

    def _credit_update(self, vc_index: int, units: int, epoch: int) -> None:
        if self.link is None or self.link.epoch != epoch or not self.link.up:
            return
        self.credits[vc_index].release(units)
        self._wake()

    # -- introspection ----------------------------------------------------
    def queued_packets(self) -> int:
        """Packets waiting in this port's output queues."""
        return sum(len(vc) for vc in self._tx_vcs)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Port {self.name} {'up' if self.is_up else 'down'}>"
