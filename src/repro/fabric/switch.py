"""Fabric switch elements: multiplexed virtual cut-through switches.

A switch routes unicast packets by turn pool (forward or backward, see
:mod:`repro.routing.turnpool`) after a fixed routing latency, acting on
the packet head (virtual cut-through).  Packets whose forward turn
pointer has reached zero are addressed *to* the switch itself — that is
how the fabric manager reads a switch's configuration space.  Multicast
packets (PI-0) are delivered to the switch's management entity, which
implements replication (used by the FM election flood).
"""

from __future__ import annotations

from ..capability import DEVICE_TYPE_SWITCH
from ..capability.multicast import MulticastCapability
from ..routing.tables import MulticastForwardingTable
from ..routing.turnpool import (
    TurnPoolError,
    backward_egress,
    forward_egress,
    read_backward_turn,
    read_forward_turn,
)
from .device import Device
from .packet import PI_MULTICAST, Packet
from .port import Port


class Switch(Device):
    """A fabric switch element (the paper's model uses 16 ports)."""

    type_code = DEVICE_TYPE_SWITCH
    kind = "switch"

    __slots__ = ("mcast_table",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Multicast forwarding table (paper, section 2), programmed by
        #: the FM through the multicast capability.
        self.mcast_table = MulticastForwardingTable(self.nports)
        self.config_space.add(MulticastCapability(self.mcast_table))

    def handle_rx(self, packet: Packet, port: Port, vc_index: int,
                  tail_lag: float) -> None:
        if not self.active:
            self.stats.incr("rx_dropped_inactive")
            Port._run_releases(packet)
            return
        if packet.header.pi == PI_MULTICAST:
            # The turn-pool field of a multicast packet carries the
            # group id.  Programmed groups replicate in hardware;
            # unprogrammed groups fall back to the management entity's
            # software flood (used by the election protocol).
            group = packet.header.turn_pool & 0xFFFF
            if group in self.mcast_table:
                self.env.schedule_callback(
                    self.params.routing_latency,
                    lambda ev: self._replicate(packet, port, group),
                )
            else:
                self.consume(packet, port, tail_lag)
            return
        header = packet.header
        if header.direction == 0 and header.turn_pointer == 0:
            # Forward route exhausted: the packet is for this switch.
            self.consume(packet, port, tail_lag)
            return
        self.env.schedule_callback(
            self.params.routing_latency,
            lambda ev: self._route(packet, port),
        )

    def _route(self, packet: Packet, in_port: Port) -> None:
        """Pick the egress port and forward (or drop on route error)."""
        if not self.active:
            self.stats.incr("rx_dropped_inactive")
            Port._run_releases(packet)
            return
        header = packet.header
        nports = self._nports
        try:
            if header.direction == 0:
                turn, new_pointer = read_forward_turn(
                    header.turn_pool, header.turn_pointer, nports
                )
                egress = forward_egress(in_port.index, turn, nports)
            else:
                turn, new_pointer = read_backward_turn(
                    header.turn_pool, header.turn_pointer, nports
                )
                egress = backward_egress(in_port.index, turn, nports)
        except TurnPoolError:
            self.stats.incr("route_errors")
            in_port.error_count += 1
            if self._trace_hook is not None:
                self._trace_hook("drop", self, in_port.index, packet,
                                 detail="turn pool error")
            Port._run_releases(packet)
            return

        out_port = self.ports[egress]
        if not out_port.is_up:
            self.stats.incr("forward_drops")
            out_port.error_count += 1
            if self._trace_hook is not None:
                self._trace_hook("drop", self, egress, packet,
                                 detail="egress port down")
            Port._run_releases(packet)
            return

        header.turn_pointer = new_pointer
        packet.hops += 1
        self.stats.incr("forwarded")
        if self._trace_hook is not None:
            self._trace_hook("forward", self, egress, packet,
                             detail=f"in={in_port.index}")
        out_port.send(packet)

    def _replicate(self, packet: Packet, in_port: Port, group: int) -> None:
        """Hardware multicast: copy to every group port but the ingress."""
        if not self.active:
            self.stats.incr("rx_dropped_inactive")
            Port._run_releases(packet)
            return
        egresses = self.mcast_table.egress_ports(group, in_port.index)
        copies = 0
        for index in egresses:
            out_port = self.ports[index]
            if not out_port.is_up:
                self.stats.incr("forward_drops")
                continue
            clone = Packet(
                header=packet.header.copy(),
                payload=packet.payload,
                src=packet.src,
                created_at=packet.created_at,
                hops=packet.hops + 1,
            )
            out_port.send(clone)
            copies += 1
        self.stats.incr("mcast_replicated", copies)
        Port._run_releases(packet)
