"""Fabric endpoints.

Endpoints terminate every packet that reaches them — they never
forward.  They host protocol entities (and possibly a fabric manager)
and, in this model as in the paper, have a single port.
"""

from __future__ import annotations

from ..capability import DEVICE_TYPE_ENDPOINT, PathTableCapability
from .device import Device
from .packet import Packet
from .port import Port


class Endpoint(Device):
    """A fabric endpoint (1 port in the paper's model; spec allows 4)."""

    type_code = DEVICE_TYPE_ENDPOINT
    kind = "endpoint"

    __slots__ = ("fm_capable", "fm_priority")

    def __init__(self, env, name, dsn, nports, params,
                 fm_capable: bool = True, fm_priority: int = 0):
        super().__init__(env, name, dsn, nports, params)
        #: Whether this endpoint may be elected fabric manager.
        self.fm_capable = fm_capable
        #: Election priority advertised in the baseline capability.
        self.fm_priority = fm_priority
        self.config_space.add(PathTableCapability())

    def handle_rx(self, packet: Packet, port: Port, vc_index: int,
                  tail_lag: float) -> None:
        header = packet.header
        if header.direction == 0 and header.turn_pointer != 0:
            # A forward route should be exhausted on arrival at an
            # endpoint; leftover turn bits indicate a stale or corrupt
            # route.  Count and drop.
            self.stats.incr("header_errors")
            port.error_count += 1
            Port._run_releases(packet)
            return
        self.consume(packet, port, tail_lag)
