"""The simulated Advanced Switching fabric.

Implements the hardware substrate the paper's OPNET model provided:
links, virtual channels, credit flow control, cut-through switches,
endpoints, and the packet formats management protocols ride on.
"""

from .crc import crc8, crc32
from .device import Device
from .endpoint import Endpoint
from .fabric import Fabric, FabricError
from .flow_control import CreditCounter, CreditError
from .header import HEADER_BYTES, TURN_POOL_BITS, HeaderError, RouteHeader
from .packet import (
    PI_APPLICATION,
    PI_DEVICE_MANAGEMENT,
    PI_EVENT,
    PI_MULTICAST,
    Packet,
    make_management_header,
)
from .params import (
    APPLICATION_TC,
    DEFAULT_PARAMS,
    MANAGEMENT_TC,
    FabricParams,
)
from .phy import Link, LinkError
from .port import Port
from .switch import Switch
from .trace import PacketTracer, TraceEvent
from .vc import VCType, VirtualChannel

__all__ = [
    "APPLICATION_TC",
    "CreditCounter",
    "CreditError",
    "DEFAULT_PARAMS",
    "Device",
    "Endpoint",
    "Fabric",
    "FabricError",
    "FabricParams",
    "HEADER_BYTES",
    "HeaderError",
    "Link",
    "LinkError",
    "MANAGEMENT_TC",
    "PI_APPLICATION",
    "PI_DEVICE_MANAGEMENT",
    "PI_EVENT",
    "PI_MULTICAST",
    "Packet",
    "PacketTracer",
    "Port",
    "RouteHeader",
    "Switch",
    "TURN_POOL_BITS",
    "TraceEvent",
    "VCType",
    "VirtualChannel",
    "crc32",
    "crc8",
    "make_management_header",
]
