"""Virtual channels and TC/VC mapping.

The specification defines three VC types (section 2 of the paper):

* **BVC** — unicast bypassable: an ordered queue plus a *bypass* queue.
  Packets marked bypassable (``ts=1`` and ``oo=0`` in the route header)
  enter the bypass queue and may overtake packets in the ordered queue.
* **OVC** — unicast ordered: a single ordered queue.
* **MVC** — multicast: a single ordered queue.

Arbiters serve VCs in strict priority order (higher VC index first in
this model, so the management VC preempts application VCs) and serve a
BVC's bypass queue ahead of its ordered queue.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Deque, Iterator, Optional

from .packet import Packet


class VCType(Enum):
    """The three virtual-channel types of the specification."""

    BVC = "bvc"
    OVC = "ovc"
    MVC = "mvc"


class VirtualChannel:
    """One virtual channel's queue(s) at a port.

    Parameters
    ----------
    index:
        VC number at the port.
    vc_type:
        Queue discipline; only :attr:`VCType.BVC` has a bypass queue.
    """

    __slots__ = ("index", "vc_type", "ordered", "bypass")

    def __init__(self, index: int, vc_type: VCType = VCType.BVC):
        self.index = index
        self.vc_type = vc_type
        self.ordered: Deque[Packet] = deque()
        self.bypass: Deque[Packet] = deque()

    def __len__(self) -> int:
        return len(self.ordered) + len(self.bypass)

    def is_bypassable(self, packet: Packet) -> bool:
        """Whether ``packet`` qualifies for this VC's bypass queue."""
        return (
            self.vc_type is VCType.BVC
            and packet.header.ts == 1
            and packet.header.oo == 0
        )

    def push(self, packet: Packet) -> None:
        """Enqueue a packet into the appropriate queue."""
        if self.is_bypassable(packet):
            self.bypass.append(packet)
        else:
            self.ordered.append(packet)

    def peek(self) -> Optional[Packet]:
        """Next packet that would be dequeued (bypass first)."""
        if self.bypass:
            return self.bypass[0]
        if self.ordered:
            return self.ordered[0]
        return None

    def pop(self) -> Packet:
        """Dequeue the next packet (bypass queue has precedence)."""
        if self.bypass:
            return self.bypass.popleft()
        if self.ordered:
            return self.ordered.popleft()
        raise IndexError("pop from empty virtual channel")

    def __iter__(self) -> Iterator[Packet]:
        yield from self.bypass
        yield from self.ordered

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<VC{self.index} {self.vc_type.value} "
            f"bypass={len(self.bypass)} ordered={len(self.ordered)}>"
        )


def default_vc_types(vc_count: int) -> list:
    """Default VC type assignment: all BVCs.

    The paper's management packets rely on bypass behaviour; modeling
    every unicast VC as a BVC gives management packets their priority
    path while keeping the arbiter uniform.
    """
    return [VCType.BVC] * vc_count
