"""Base class for fabric devices (switches and endpoints).

A device owns its ports, its configuration space, and a *local
handler* slot that the management entity (:mod:`repro.protocols.entity`)
plugs into.  Subclasses decide what to do with a packet whose head has
arrived at a port: switches route it onward, endpoints consume it.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..capability import (
    BaselineCapability,
    ClaimCapability,
    ConfigSpace,
    EventRouteCapability,
)
from ..sim.core import Environment
from ..sim.monitor import Counter
from .packet import Packet
from .params import FabricParams
from .port import Port


class Device:
    """Common behaviour of all fabric devices."""

    #: Baseline-capability device type code (set by subclasses).
    type_code = 0
    kind = "device"

    #: Identity constants rendered into the baseline capability; class
    #: attributes so a mega-scale fabric does not store them per device.
    vendor_id = 0xA51  # "ASI"
    device_id = 0x0001
    capability_version = 0x0100

    __slots__ = (
        "env", "name", "dsn", "params", "active", "stats", "_nports",
        "ports", "config_space", "local_handler", "_trace_hook",
        "port_state_observer",
    )

    def __init__(self, env: Environment, name: str, dsn: int, nports: int,
                 params: FabricParams):
        if nports < 1:
            raise ValueError("a device needs at least one port")
        self.env = env
        self.name = name
        self.dsn = dsn
        self.params = params
        self.active = False
        self.stats = Counter()
        #: Port count, cached for the routing hot path (ports are fixed
        #: at construction).
        self._nports = nports
        self.ports: List[Port] = [Port(self, i, params) for i in range(nports)]

        self.config_space = ConfigSpace()
        self.config_space.add(BaselineCapability(self))
        self.config_space.add(EventRouteCapability())
        self.config_space.add(ClaimCapability())

        #: Callback receiving packets addressed to this device:
        #: ``handler(packet, port)``.  Installed by the management
        #: entity; packets arriving with no handler are counted and
        #: dropped.
        self.local_handler: Optional[Callable[[Packet, Optional[Port]], None]] = None
        #: Optional packet tracer (see :mod:`repro.fabric.trace`);
        #: called as ``hook(kind, device, port_index, packet, detail)``.
        #: Pre-resolved: assigning the property mirrors the hook into
        #: ``_trace_hook`` here and ``_trace`` on every port, so the
        #: per-packet paths pay one attribute load, not a chain.
        self._trace_hook = None
        #: Callback invoked on port state changes:
        #: ``callback(device, port, up)``.  The management entity uses
        #: it to emit PI-5 notifications.
        self.port_state_observer: Optional[Callable] = None

    # -- identity ----------------------------------------------------------
    @property
    def nports(self) -> int:
        return self._nports

    # -- tracing -----------------------------------------------------------
    @property
    def trace_hook(self):
        """The installed packet tracer (None when tracing is off)."""
        return self._trace_hook

    @trace_hook.setter
    def trace_hook(self, hook) -> None:
        self._trace_hook = hook
        for port in self.ports:
            port._trace = hook

    @property
    def max_payload_code(self) -> int:
        """Encoded max payload size for the baseline capability."""
        return max(1, self.params.max_payload.bit_length() - 7)

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "active" if self.active else "inactive"
        return f"<{type(self).__name__} {self.name!r} {state}>"

    # -- lifecycle -----------------------------------------------------------
    def power_on(self) -> None:
        self.active = True

    def power_off(self) -> None:
        self.active = False

    # -- traffic ---------------------------------------------------------------
    def handle_rx(self, packet: Packet, port: Port, vc_index: int,
                  tail_lag: float) -> None:
        """Head of ``packet`` arrived at ``port``; subclass decides."""
        raise NotImplementedError

    def inject(self, packet: Packet, port_index: int = 0) -> None:
        """Send a locally generated packet out of ``port_index``."""
        packet.src = packet.src or self.name
        packet.created_at = self.env.now
        self.stats.incr("injected")
        if self._trace_hook is not None:
            self._trace_hook("inject", self, port_index, packet)
        self.ports[port_index].send(packet)

    def consume(self, packet: Packet, port: Optional[Port],
                tail_lag: float) -> None:
        """Deliver ``packet`` locally once its tail has arrived."""

        def deliver(_event=None):
            if port is not None:
                Port._run_releases(packet)
            if not self.active:
                self.stats.incr("rx_dropped_inactive")
                return
            self.stats.incr("consumed")
            if self._trace_hook is not None:
                self._trace_hook(
                    "deliver", self,
                    port.index if port is not None else None, packet,
                )
            if self.local_handler is not None:
                self.local_handler(packet, port)
            else:
                self.stats.incr("rx_no_handler")

        if tail_lag > 0:
            self.env.schedule_callback(tail_lag, deliver)
        else:
            deliver()

    # -- events ------------------------------------------------------------------
    def on_port_state_change(self, port: Port, up: bool) -> None:
        """A local port changed state (link trained or failed)."""
        self.stats.incr("port_up" if up else "port_down")
        if self.port_state_observer is not None and self.active:
            self.port_state_observer(self, port, up)

    # -- queries -------------------------------------------------------------
    def active_ports(self) -> List[int]:
        """Indices of ports whose links are currently up."""
        return [p.index for p in self.ports if p.is_up]
