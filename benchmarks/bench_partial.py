"""X2 (section 5, future work) — partial (affected-region) discovery.

"Another possibility is to explore only the portion of the network
affected by the change [2], instead of the entire fabric."

The bench hot-removes and hot-adds a switch on grid fabrics and
compares the paper's full-rediscovery assimilation (Parallel) against
the partial manager.  Partial cost should be near-constant in fabric
size for removals, so its advantage grows with the fabric.
"""

from _common import quick, save

from repro.experiments.report import render_table
from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_discovery_count,
    run_until_ready,
)
from repro.manager import PARALLEL, PartialAssimilationManager
from repro.protocols.entity import ManagementEntity
from repro.sim import Environment
from repro.topology import table1_topology


def _full(spec, victim):
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    setup.fm.start_discovery()
    run_until_ready(setup)
    setup.fabric.remove_device(victim)
    stats = run_until_discovery_count(setup, 2)
    return stats


def _partial(spec, victim):
    env = Environment()
    fabric = spec.build(env)
    entities = {n: ManagementEntity(d) for n, d in fabric.devices.items()}
    fm = PartialAssimilationManager(
        fabric.device(spec.fm_host), entities[spec.fm_host],
        auto_start=False,
    )
    fabric.power_up()

    class Setup:
        pass

    setup = Setup()
    setup.env, setup.fabric, setup.fm, setup.spec = env, fabric, fm, spec
    fm.start_discovery()
    run_until_ready(setup)
    fabric.remove_device(victim)
    stats = run_until_discovery_count(setup, 2)
    env.run(until=fm.ready_event)
    assert database_matches_fabric(setup)
    return stats


def _center_switch(spec):
    dim = int(spec.name.split("x")[0])
    return f"sw_{dim // 2}_{dim // 2}"


def _run():
    names = ("4x4 mesh", "6x6 mesh") if quick() else (
        "4x4 mesh", "6x6 mesh", "8x8 mesh", "10x10 torus",
    )
    rows = []
    for name in names:
        spec = table1_topology(name)
        victim = _center_switch(spec)
        full = _full(spec, victim)
        part = _partial(spec, victim)
        rows.append({
            "topology": name,
            "devices": spec.total_devices,
            "full_time": full.discovery_time,
            "partial_time": part.discovery_time,
            "full_packets": full.requests_sent,
            "partial_packets": part.requests_sent,
            "packet_saving": full.requests_sent / max(1, part.requests_sent),
        })
    return rows


def test_partial(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = render_table(
        ["Topology", "Devices", "full t (s)", "partial t (s)",
         "full pkts", "partial pkts", "pkt saving"],
        [[r["topology"], r["devices"], r["full_time"], r["partial_time"],
          r["full_packets"], r["partial_packets"],
          f"{r['packet_saving']:.0f}x"] for r in rows],
    )
    save("partial_x2", "X2. Partial (affected-region) assimilation\n" + text)

    for row in rows:
        assert row["partial_packets"] < row["full_packets"] / 10
        assert row["partial_time"] < row["full_time"]
    # The saving grows with fabric size (partial cost ~ constant).
    assert rows[-1]["packet_saving"] > rows[0]["packet_saving"]
