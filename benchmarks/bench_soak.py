"""Soak comparison: full rediscovery vs partial assimilation under churn.

Sustained topology churn (20 seeded faults on a 6x6 mesh) drives both
managers through back-to-back assimilations.  Reported per manager:
the change count, total management packets spent on assimilation, the
mean time per assimilated change, and the final database correctness.
The partial manager's packet budget should be a small fraction of the
full-rediscovery baseline's at identical fault schedules.
"""

from _common import quick, save

from repro.experiments.report import render_table
from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)
from repro.manager import PARALLEL
from repro.manager.discovery.partial import PartialAssimilationManager
from repro.protocols.entity import ManagementEntity
from repro.sim import Environment
from repro.topology import table1_topology
from repro.workloads.faults import FaultInjector

FAULTS = 20
SEED = 97


class _Setup:
    pass


def _build_partial(spec):
    env = Environment()
    fabric = spec.build(env)
    entities = {
        name: ManagementEntity(device)
        for name, device in fabric.devices.items()
    }
    fm = PartialAssimilationManager(
        fabric.device(spec.fm_host), entities[spec.fm_host],
    )
    fabric.power_up()
    setup = _Setup()
    setup.env, setup.fabric, setup.entities, setup.fm = (
        env, fabric, entities, fm,
    )
    return setup


def _churn(setup, faults):
    protect = setup.fm.endpoint.ports[0].neighbor().device.name
    injector = FaultInjector(setup.fabric, mean_interval=60e-3,
                             protect={protect}, seed=SEED)
    done = injector.run(faults=faults)
    setup.env.run(until=done)
    for _ in range(80):
        fm = setup.fm
        busy = fm.is_discovering or getattr(fm, "is_assimilating", False)
        if not busy:
            break
        setup.env.run(until=setup.env.now + 20e-3)
    setup.env.run(until=setup.env.now + 80e-3)
    return injector


def _soak(kind, spec, faults):
    if kind == "full rediscovery":
        setup = build_simulation(spec, algorithm=PARALLEL)
    else:
        setup = _build_partial(spec)
    run_until_ready(setup)
    injector = _churn(setup, faults)

    changes = [s for s in setup.fm.history if s.trigger == "change"]
    packets = sum(s.total_packets for s in changes)
    mean_time = (
        sum(s.discovery_time for s in changes) / len(changes)
        if changes else 0.0
    )
    return {
        "manager": kind,
        "faults": len(injector.log),
        "assimilations": len(changes),
        "packets": packets,
        "mean_time": mean_time,
        "correct": database_matches_fabric(setup),
    }


def _run():
    spec = table1_topology("4x4 mesh" if quick() else "6x6 mesh")
    faults = 8 if quick() else FAULTS
    return [
        _soak("full rediscovery", spec, faults),
        _soak("partial assimilation", spec, faults),
    ], spec.name


def test_soak(benchmark):
    rows, topology = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = render_table(
        ["manager", "faults", "assimilations", "mgmt packets",
         "mean time (s)", "final db"],
        [[r["manager"], r["faults"], r["assimilations"], r["packets"],
          r["mean_time"], r["correct"]] for r in rows],
    )
    save("soak", f"Soak under churn ({topology}, seed {SEED})\n" + text)

    full, partial = rows
    assert full["correct"] and partial["correct"]
    assert full["faults"] == partial["faults"]  # identical schedules
    assert partial["assimilations"] >= 1
    # Partial spends a small fraction of the baseline's packets.
    assert partial["packets"] < full["packets"] / 3
