"""Fig. 9 — the Fig. 6 study at three processing-factor corners.

(a) FM factor 1, device factor 1 (the defaults of Fig. 6);
(b) FM factor 1, device factor 0.2 (slow devices);
(c) FM factor 4, device factor 0.2 (fast FM, slow devices).

The paper's conclusion: "for faster FM and slower fabric devices, the
difference between the Parallel discovery algorithm and the serial
ones increases, independently of the fabric size."
"""

from collections import defaultdict

from _common import bench_jobs, bench_suite, save, seeds

from repro.experiments.figures import figure9
from repro.manager import PARALLEL, SERIAL_PACKET


def _run():
    return figure9(topologies=bench_suite(), seeds=seeds(),
                   jobs=bench_jobs())


def _mean_ratio(panel):
    """Mean Serial Packet / Parallel time ratio across x values."""
    series = panel["series"]
    sp = defaultdict(list)
    pa = defaultdict(list)
    for x, y in series[SERIAL_PACKET]:
        sp[x].append(y)
    for x, y in series[PARALLEL]:
        pa[x].append(y)
    ratios = []
    for x in sp:
        if x in pa:
            ratios.append(
                (sum(sp[x]) / len(sp[x])) / (sum(pa[x]) / len(pa[x]))
            )
    return sum(ratios) / len(ratios)


def test_fig9(benchmark):
    from repro.experiments.ascii_plot import render_plot

    data, text = benchmark.pedantic(_run, rounds=1, iterations=1)
    plots = "\n\n".join(
        render_plot(
            f"Fig. 9({panel}) as a scatter plot "
            f"(FM={info['fm_factor']}, dev={info['device_factor']})",
            "active nodes", "discovery time (s)", info["series"],
        )
        for panel, info in data.items()
    )
    save("fig9", text + "\n\n" + plots)
    from _common import save_json
    save_json("fig9", data)

    ratio_a = _mean_ratio(data["a"])
    ratio_b = _mean_ratio(data["b"])
    ratio_c = _mean_ratio(data["c"])

    # Every corner keeps Parallel ahead...
    assert ratio_a > 1.0
    # ...slow devices widen the gap...
    assert ratio_b > ratio_a
    # ...and fast FM + slow devices widen it the most.
    assert ratio_c > ratio_b
    # In the paper's Fig. 9(c) regime the serial algorithm is several
    # times slower.
    assert ratio_c > 2.0
