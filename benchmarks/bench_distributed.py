"""X1 (section 5, future work) — collaborative fabric managers.

"One of them is to distribute the entire process through several
collaborative fabric managers, in order to increase parallelization."

The bench runs one and two FMs over grid fabrics and reports the
end-to-end time (exploration + region merge).  The FM's per-packet
processing is the discovery bottleneck, so two claim-partitioned FMs
should approach a 2x speedup on large fabrics, less the merge cost.
"""

from _common import quick, save

from repro.experiments.report import render_table
from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)
from repro.manager import (
    PARALLEL,
    CollaborativeDiscovery,
    FabricManager,
)
from repro.routing.paths import fabric_route
from repro.topology import table1_topology


def _solo(spec):
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    return stats.discovery_time


def _duo(spec):
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    helper_host = sorted(
        ep for ep in spec.endpoints if ep != spec.fm_host
    )[-1]
    helper = FabricManager(
        setup.fabric.device(helper_host), setup.entities[helper_host],
        algorithm=PARALLEL, auto_start=False,
    )
    route = fabric_route(setup.fabric, helper_host, spec.fm_host)
    collab = CollaborativeDiscovery(setup.fm, [(helper, route)])
    stats = setup.env.run(until=collab.run())
    assert database_matches_fabric(setup)
    return stats


def _run():
    names = ("4x4 mesh", "6x6 mesh") if quick() else (
        "4x4 mesh", "6x6 mesh", "8x8 mesh", "10x10 torus",
    )
    rows = []
    for name in names:
        spec = table1_topology(name)
        solo_time = _solo(spec)
        duo = _duo(spec)
        rows.append({
            "topology": name,
            "devices": spec.total_devices,
            "solo": solo_time,
            "duo": duo.total_time,
            "merge": duo.merge_duration,
            "speedup": solo_time / duo.total_time,
        })
    return rows


def test_distributed(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = render_table(
        ["Topology", "Devices", "1 FM (s)", "2 FMs (s)", "merge (s)",
         "speedup"],
        [[r["topology"], r["devices"], r["solo"], r["duo"], r["merge"],
          f"{r['speedup']:.2f}x"] for r in rows],
    )
    save("distributed_x1", "X1. Collaborative discovery\n" + text)

    for row in rows:
        assert row["speedup"] > 1.0, row["topology"]
    # On the largest fabric the speedup approaches the 2-FM ideal.
    assert rows[-1]["speedup"] > 1.4
    # Speedup does not collapse as fabrics grow.
    assert rows[-1]["speedup"] >= rows[0]["speedup"] * 0.9
