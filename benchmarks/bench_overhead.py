"""S1 (section 4.1) — management overhead across the algorithms.

"As the amount of discovery packets employed by the serial and
parallel discovery algorithms is very similar, we do not include these
results here."  In this implementation the exploration work is
identical across the three schedulers, so the request/byte counts are
*exactly* equal — and equal to the closed-form packet model.
"""

from _common import quick, save

from repro.analysis.model import expected_packets
from repro.experiments.figures import overhead_comparison
from repro.topology import table1_topology


def _run():
    names = ("3x3 mesh", "4x4 torus") if quick() else (
        "3x3 mesh", "4x4 torus", "6x6 mesh",
        "4-port 3-tree", "8-port 2-tree",
    )
    return overhead_comparison(
        topologies=[table1_topology(n) for n in names]
    )


def test_overhead(benchmark):
    data, text = benchmark.pedantic(_run, rounds=1, iterations=1)
    save("overhead_s1", text)

    for row in data:
        requests = set(row["requests"].values())
        request_bytes = set(row["bytes"].values())
        assert len(requests) == 1, row["topology"]
        assert len(request_bytes) == 1, row["topology"]
        assert row["expected_requests"] in requests, row["topology"]
