#!/usr/bin/env python
"""Service benchmark: concurrent clients querying a churning fabric.

Starts an in-process fabric service (:func:`repro.service.start_service`)
hosting a fig-6-class topology with the fault injector continuously
disturbing it, then hammers it with N concurrent client threads (each
its own TCP connection) issuing a query mix of ``topology`` /
``status`` / ``path`` / ``metrics`` for a fixed wall-clock window.
Every response is schema-checked; any error response fails the run.

Metrics recorded into ``BENCH_service.json``:

* ``queries_per_s``  — completed requests per wall second across all
  clients (the headline, gateable with ``--require``);
* ``p50_ms`` / ``p99_ms`` — request latency percentiles;
* ``sim_events_per_s`` — kernel events the driver advanced per wall
  second *while* serving (the sim keeps running under load);
* ``faults_injected`` — churn actually applied during the window.

Full mode: 8x8 mesh (the paper's biggest mesh), 8 clients, 10 s.
``--quick``: 4x4 mesh, 4 clients, 2 s — CI smoke, tracked separately
and never compared against the full baseline.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.experiments.bench_report import record_run, render_entry
from repro.service import ServiceError, start_service

REPORT_PATH = Path(__file__).parent.parent / "BENCH_service.json"

HEADLINE = "queries_per_s"

#: The per-client query mix, cycled in order (reads dominate, exactly
#: as a monitoring stack would drive a real control plane).
QUERY_MIX = ("topology", "status", "path", "status", "metrics", "status")


class ClientWorker(threading.Thread):
    """One benchmark client: its own connection, latencies in ``samples``."""

    def __init__(self, host: str, port: int, stop: threading.Event,
                 index: int):
        super().__init__(name=f"bench-client-{index}", daemon=True)
        self.host = host
        self.port = port
        self.stop_event = stop
        self.index = index
        self.samples: list = []
        self.errors: list = []

    def run(self) -> None:
        from repro.service import ServiceClient
        try:
            with ServiceClient(self.host, self.port) as client:
                # Pick two stable endpoints for path queries: churn
                # never removes endpoints, so these DSNs stay valid.
                topo = client.request("topology")
                endpoints = [d["dsn"] for d in topo["devices"]
                             if d["type"] == "endpoint"]
                src = endpoints[0]
                dst = endpoints[(1 + self.index) % len(endpoints)]
                i = 0
                while not self.stop_event.is_set():
                    op = QUERY_MIX[i % len(QUERY_MIX)]
                    i += 1
                    params = ({"src": src, "dst": dst}
                              if op == "path" else {})
                    t0 = time.perf_counter()
                    try:
                        result = client.request(op, **params)
                    except ServiceError as exc:
                        # A path can legitimately vanish mid-churn.
                        if exc.code in ("no-path", "unknown-dsn"):
                            continue
                        self.errors.append(f"{op}: {exc}")
                        return
                    self.samples.append(time.perf_counter() - t0)
                    if "sim_time" not in result and op != "topologies":
                        self.errors.append(f"{op}: missing sim_time")
                        return
        except Exception as exc:
            self.errors.append(f"client {self.index}: "
                               f"{type(exc).__name__}: {exc}")


def run_bench(topology: str, clients: int, duration: float,
              seed: int) -> dict:
    handle = start_service(topology, churn=True, seed=seed)
    try:
        stop = threading.Event()
        workers = [ClientWorker(handle.host, handle.port, stop, i)
                   for i in range(clients)]
        events_before = handle.driver.events_stepped
        t0 = time.perf_counter()
        for worker in workers:
            worker.start()
        time.sleep(duration)
        stop.set()
        for worker in workers:
            worker.join(timeout=30)
        elapsed = time.perf_counter() - t0
        events_after = handle.driver.events_stepped

        errors = [e for w in workers for e in w.errors]
        if errors:
            raise RuntimeError("client errors: " + "; ".join(errors[:5]))
        samples = sorted(s for w in workers for s in w.samples)
        if not samples:
            raise RuntimeError("no queries completed")
        faults = (len(handle.injector.log)
                  if handle.injector is not None else 0)
        return {
            "queries": len(samples),
            "queries_per_s": round(len(samples) / elapsed, 1),
            "p50_ms": round(
                statistics.quantiles(samples, n=100)[49] * 1e3, 3),
            "p99_ms": round(
                statistics.quantiles(samples, n=100)[98] * 1e3, 3),
            "sim_events_per_s": round(
                (events_after - events_before) / elapsed, 1),
            "faults_injected": faults,
        }
    finally:
        handle.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="2s/4-client smoke on mesh16 (CI; "
                             "tracked apart)")
    parser.add_argument("--topology", default=None,
                        help="override the benchmark topology")
    parser.add_argument("--clients", type=int, default=None, metavar="N",
                        help="concurrent client connections "
                             "(default 8, quick 4)")
    parser.add_argument("--duration", type=float, default=None,
                        metavar="SECONDS",
                        help="measurement window (default 10, quick 2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="churn seed (default 0)")
    parser.add_argument("--label", default="current",
                        help="label recorded in BENCH_service.json")
    parser.add_argument("--record-baseline", action="store_true",
                        help="store this run as the trajectory baseline")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and print only; do not touch "
                             "the JSON")
    parser.add_argument("--require", type=float, default=None, metavar="X",
                        help="exit non-zero unless queries_per_s "
                             "speedup vs the baseline is at least X "
                             "(full mode only)")
    args = parser.parse_args(argv)

    topology = args.topology or ("mesh16" if args.quick else "mesh64")
    clients = args.clients or (4 if args.quick else 8)
    duration = args.duration or (2.0 if args.quick else 10.0)

    print(f"service bench ({'quick' if args.quick else 'full'} mode): "
          f"{clients} clients vs churning {topology} for {duration:g}s")
    result = run_bench(topology, clients, duration, args.seed)
    print(f"  queries={result['queries']:,} "
          f"({result['queries_per_s']:,.0f}/s)  "
          f"p50={result['p50_ms']:.2f}ms p99={result['p99_ms']:.2f}ms  "
          f"sim_events/s={result['sim_events_per_s']:,.0f}  "
          f"faults={result['faults_injected']:,}")

    if args.no_write:
        return 0

    metrics = {k: v for k, v in result.items() if k != "queries"}
    units = {
        "queries_per_s": f"completed requests per wall second "
                         f"({clients} clients, churning {topology})",
        "p50_ms": "median request latency (ms)",
        "p99_ms": "99th percentile request latency (ms)",
        "sim_events_per_s": "kernel events advanced per wall second "
                            "while serving",
        "faults_injected": "churn faults applied during the window",
    }
    entry = record_run(
        REPORT_PATH, benchmark="service", label=args.label,
        metrics=metrics, units=units, quick=args.quick,
        as_baseline=args.record_baseline,
    )
    print()
    print(render_entry(entry))
    print(f"[trajectory: {REPORT_PATH}]")

    if args.require is not None and not args.quick:
        speedup = entry.get("speedup_vs_baseline", {}).get(HEADLINE)
        if speedup is None:
            print("no baseline to compare against", file=sys.stderr)
            return 2
        if speedup < args.require:
            print(f"{HEADLINE} speedup {speedup:.2f}x below required "
                  f"{args.require:.2f}x", file=sys.stderr)
            return 1
        print(f"{HEADLINE} speedup {speedup:.2f}x >= required "
              f"{args.require:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
