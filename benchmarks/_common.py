"""Shared helpers for the reproduction benches.

Each bench regenerates one table or figure of the paper, prints the
rendered rows/series, saves them under ``benchmarks/results/``, and
asserts the qualitative shape the paper reports (who wins, by roughly
what factor, where the crossovers fall).

Set ``REPRO_BENCH_QUICK=1`` to run reduced topology suites (useful on
slow machines); the full suites match the paper's Table 1.  Set
``REPRO_BENCH_JOBS=N`` to fan the sweep-shaped benches out over N
worker processes (results are identical to the serial run).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List

from repro.topology import table1_suite, table1_topology
from repro.topology.spec import TopologySpec

RESULTS_DIR = Path(__file__).parent / "results"


def quick() -> bool:
    """Whether the reduced suites were requested."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def bench_jobs() -> int:
    """Worker processes for sweep-shaped benches (``REPRO_BENCH_JOBS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    except ValueError:
        return 1


def bench_suite() -> List[TopologySpec]:
    """The Table 1 suite (or a 5-topology subset in quick mode)."""
    if quick():
        return [
            table1_topology(name)
            for name in ("3x3 mesh", "3x3 torus", "4x4 mesh",
                         "4-port 3-tree", "8-port 2-tree")
        ]
    return table1_suite()


def seeds() -> range:
    """Seeds per (topology, algorithm) pair."""
    return range(1 if quick() else 2)


def save(name: str, text: str) -> None:
    """Persist a rendered artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    print(f"\n[saved to {path}]")


def save_json(name: str, data) -> None:
    """Persist an artifact's raw data for downstream plotting."""
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(data, indent=2, default=str) + "\n")
    print(f"[data saved to {path}]")


def series_dict(series) -> dict:
    """Convert [(x, y), ...] series mapping to {x: y} per name."""
    return {name: dict(points) for name, points in series.items()}
