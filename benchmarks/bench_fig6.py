"""Fig. 6 — discovery time after a topological change.

Full reproduction of the paper's main experiment: for every Table 1
topology and every algorithm, the fabric powers up, the FM gathers the
initial topology and programs event routes, a randomly chosen switch
is hot-removed or hot-added, PI-5 notifications trigger the change
assimilation, and the rediscovery time is measured.

Checks the paper's findings:
* the Parallel time is always the smallest (Fig. 6(a));
* Serial Device beats Serial Packet ("a bit better");
* the improvement is *scalable*: the absolute Serial-vs-Parallel gap
  grows with the fabric size;
* the behaviour "does not depend on the type of topology".
"""

from collections import defaultdict

from _common import bench_jobs, bench_suite, save, seeds

from repro.experiments.figures import figure6
from repro.manager import PARALLEL, SERIAL_DEVICE, SERIAL_PACKET


def _run():
    return figure6(topologies=bench_suite(), seeds=seeds(),
                   jobs=bench_jobs())


def test_fig6(benchmark):
    from _common import series_dict
    from repro.experiments.ascii_plot import render_plot

    data, text = benchmark.pedantic(_run, rounds=1, iterations=1)
    plot = render_plot(
        "Fig. 6(a) as a scatter plot", "active nodes",
        "discovery time (s)", data["per_run"],
    )
    save("fig6", text + "\n\n" + plot)
    from _common import save_json
    save_json("fig6", data)

    runs = data["runs"]
    assert all(r["database_correct"] for r in runs)

    # Group by (topology, seed, change): the three algorithms saw the
    # exact same change, so their times are directly comparable.
    by_case = defaultdict(dict)
    for r in runs:
        by_case[(r["topology"], r["seed"], r["change"])][
            r["algorithm"]] = r

    for case, algos in by_case.items():
        assert algos[PARALLEL]["discovery_time"] \
            < algos[SERIAL_DEVICE]["discovery_time"] \
            < algos[SERIAL_PACKET]["discovery_time"], case

    # Scalability of the improvement: the gap grows with size.
    gaps = {}
    for case, algos in by_case.items():
        size = algos[PARALLEL]["active_devices"]
        gap = (algos[SERIAL_PACKET]["discovery_time"]
               - algos[PARALLEL]["discovery_time"])
        gaps.setdefault(size, []).append(gap)
    sizes = sorted(gaps)
    small = sum(gaps[sizes[0]]) / len(gaps[sizes[0]])
    large = sum(gaps[sizes[-1]]) / len(gaps[sizes[-1]])
    # The gap grows roughly linearly with the fabric size (packet
    # count ~ devices), so expect at least ~60% of proportional growth.
    assert large > 0.6 * (sizes[-1] / sizes[0]) * small

    # Topology-type independence: mesh and torus of the same size give
    # comparable times per algorithm (within 25%).
    mean_by_topo = defaultdict(list)
    for r in runs:
        if r["algorithm"] == PARALLEL:
            mean_by_topo[r["topology"]].append(r["discovery_time"])
    for a, b in [("3x3 mesh", "3x3 torus")]:
        if a in mean_by_topo and b in mean_by_topo:
            ta = sum(mean_by_topo[a]) / len(mean_by_topo[a])
            tb = sum(mean_by_topo[b]) / len(mean_by_topo[b])
            assert abs(ta - tb) / max(ta, tb) < 0.25
