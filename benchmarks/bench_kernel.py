#!/usr/bin/env python
"""Microbenchmark of the event kernel and the packet pipeline.

Four measurements, from the inside out:

* ``events_per_s`` — raw kernel throughput: processes yielding timers,
  nothing else.  Exercises ``Environment.step``/``schedule`` and
  ``Timeout`` construction.
* ``cancel_churn_per_s`` — schedule/cancel pairs against a deep heap of
  pending timers.  Exercises ``Environment.cancel`` (the lazy-tombstone
  path) and tombstone compaction.
* ``relay_packets_per_s`` — packets through an A - sw1 - sw2 - B relay:
  the full port pipeline (arbitration, credits, serialization, two
  routing hops, delivery) with no management logic on top.
* ``fig6_mesh_wall_s`` — wall time of one complete Fig. 6 change
  experiment on a mesh (transient discovery, hot switch removal, PI-5
  detection, rediscovery) — the unit of work every sweep in the paper
  reproduction is made of.  **This is the headline regression metric.**

Results are appended to ``BENCH_kernel.json`` at the repository root
(see :mod:`repro.experiments.bench_report`), with speedups against the
recorded pre-optimization baseline.  ``--quick`` shrinks every workload
for CI smoke runs; quick metrics are tracked separately and never
compared against the full baseline.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.experiments.bench_report import record_run, render_entry
from repro.experiments.scenario import Scenario
from repro.fabric.fabric import Fabric
from repro.fabric.packet import PI_APPLICATION, Packet
from repro.routing.paths import fabric_endpoint_routes
from repro.sim.core import Environment

REPORT_PATH = Path(__file__).parent.parent / "BENCH_kernel.json"

UNITS = {
    "events_per_s": "kernel events processed per second",
    "cancel_churn_per_s": "schedule+cancel pairs per second (deep heap)",
    "relay_packets_per_s": "packets delivered per second (2-switch relay)",
    "fig6_mesh_wall_s": "wall seconds for one Fig. 6 mesh change run",
}


# -- events/sec ---------------------------------------------------------------

def bench_events(n_timers: int, n_procs: int = 50) -> float:
    """Kernel-only throughput: ``n_timers`` total timer events."""
    env = Environment()
    per_proc = n_timers // n_procs

    def ticker(env, delay, k):
        for _ in range(k):
            yield env.timeout(delay)

    for i in range(n_procs):
        env.process(ticker(env, 1e-6 * (i + 1), per_proc))
    t0 = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - t0
    # Each timer is one heap event; process start/finish events are noise.
    return (per_proc * n_procs) / elapsed


# -- cancel churn -------------------------------------------------------------

def bench_cancel_churn(n_pairs: int, backlog: int) -> float:
    """Schedule+cancel pairs against ``backlog`` pending timers.

    With the eager O(n) cancel this is quadratic in the backlog; with
    lazy tombstones each pair is O(log n).
    """
    env = Environment()
    for i in range(backlog):
        env.timeout(1e6 + i)  # far-future backlog, never runs

    def churner(env, k):
        for _ in range(k):
            victim = env.timeout(1e5)
            env.cancel(victim)
            yield env.timeout(1e-6)

    proc = env.process(churner(env, n_pairs))
    t0 = time.perf_counter()
    env.run(until=proc)
    elapsed = time.perf_counter() - t0
    return n_pairs / elapsed


# -- 2-switch relay -----------------------------------------------------------

def build_relay():
    """A - sw1 - sw2 - B, powered up, with a route table for A."""
    env = Environment()
    fabric = Fabric(env)
    fabric.add_endpoint("A")
    fabric.add_endpoint("B")
    fabric.add_switch("sw1")
    fabric.add_switch("sw2")
    fabric.connect("A", 0, "sw1", 0)
    fabric.connect("sw1", 1, "sw2", 0)
    fabric.connect("sw2", 1, "B", 0)
    fabric.power_up()
    return fabric


def bench_relay(n_packets: int, payload_bytes: int = 64) -> float:
    """Packets/second sustained through the two-switch relay."""
    from repro.fabric.header import RouteHeader

    fabric = build_relay()
    env = fabric.env
    pool, out_port = fabric_endpoint_routes(fabric, "A")["B"]
    src = fabric.device("A")
    dst = fabric.device("B")
    delivered = [0]
    dst.local_handler = lambda packet, port: delivered.__setitem__(
        0, delivered[0] + 1
    )
    payload = bytes(payload_bytes)

    def source(env):
        for _ in range(n_packets):
            header = RouteHeader(
                pi=PI_APPLICATION,
                turn_pointer=pool.bits,
                turn_pool=pool.pool,
            )
            src.inject(Packet(header=header, payload=payload),
                       port_index=out_port)
            # Pace at roughly the link rate so queues stay shallow and
            # the bench exercises the event path, not deque growth.
            yield env.timeout(2e-7)

    env.process(source(env))
    t0 = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - t0
    if delivered[0] != n_packets:
        raise AssertionError(
            f"relay lost packets: {delivered[0]}/{n_packets} delivered"
        )
    return n_packets / elapsed


# -- fig-6 mesh run -----------------------------------------------------------

def bench_fig6_mesh(topology: str, repeat: int) -> float:
    """Best-of-``repeat`` wall time of one Fig. 6 change experiment."""
    best = float("inf")
    scenario = Scenario(kind="change", topology=topology,
                        algorithm="parallel", seed=0)
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = scenario.run()
        elapsed = time.perf_counter() - t0
        if not result.database_correct:
            raise AssertionError("fig-6 bench run produced a wrong database")
        best = min(best, elapsed)
    return best


# -- driver -------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced workloads (CI smoke; tracked apart)")
    parser.add_argument("--repeat", type=int, default=None, metavar="N",
                        help="fig-6 repetitions, best-of (default 3; 1 quick)")
    parser.add_argument("--label", default="current",
                        help="label recorded in BENCH_kernel.json")
    parser.add_argument("--record-baseline", action="store_true",
                        help="store this run as the trajectory baseline")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and print only; do not touch the JSON")
    parser.add_argument("--require", type=float, default=None, metavar="X",
                        help="exit non-zero unless the fig-6 speedup vs the "
                             "baseline is at least X (full mode only)")
    args = parser.parse_args(argv)

    if args.quick:
        sizes = dict(events=20_000, pairs=200, backlog=2_000,
                     packets=500, topology="3x3 mesh", repeat=1)
    else:
        sizes = dict(events=200_000, pairs=2_000, backlog=10_000,
                     packets=5_000, topology="6x6 mesh", repeat=3)
    if args.repeat is not None:
        sizes["repeat"] = max(1, args.repeat)

    print(f"kernel bench ({'quick' if args.quick else 'full'} mode)")
    metrics = {}
    metrics["events_per_s"] = round(bench_events(sizes["events"]), 1)
    print(f"  events_per_s         {metrics['events_per_s']:>14,.0f}")
    metrics["cancel_churn_per_s"] = round(
        bench_cancel_churn(sizes["pairs"], sizes["backlog"]), 1
    )
    print(f"  cancel_churn_per_s   {metrics['cancel_churn_per_s']:>14,.0f}")
    metrics["relay_packets_per_s"] = round(bench_relay(sizes["packets"]), 1)
    print(f"  relay_packets_per_s  {metrics['relay_packets_per_s']:>14,.0f}")
    metrics["fig6_mesh_wall_s"] = round(
        bench_fig6_mesh(sizes["topology"], sizes["repeat"]), 6
    )
    print(f"  fig6_mesh_wall_s     {metrics['fig6_mesh_wall_s']:>14.6f}"
          f"  ({sizes['topology']}, best of {sizes['repeat']})")

    if args.no_write:
        return 0

    entry = record_run(
        REPORT_PATH, benchmark="kernel", label=args.label, metrics=metrics,
        units=UNITS, quick=args.quick, as_baseline=args.record_baseline,
    )
    print()
    print(render_entry(entry))
    print(f"[trajectory: {REPORT_PATH}]")

    if args.require is not None and not args.quick:
        speedup = entry.get("speedup_vs_baseline", {}).get("fig6_mesh_wall_s")
        if speedup is None:
            print("no baseline to compare against", file=sys.stderr)
            return 2
        if speedup < args.require:
            print(f"fig-6 speedup {speedup:.2f}x below required "
                  f"{args.require:.2f}x", file=sys.stderr)
            return 1
        print(f"fig-6 speedup {speedup:.2f}x >= required {args.require:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
