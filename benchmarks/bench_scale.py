#!/usr/bin/env python
"""Mega-scale fabric benchmark: build + discovery across generator families.

Each point of the sweep constructs one parameterised topology
(Dragonfly or two-layer fat-tree, see :mod:`repro.topology`), runs a
full parallel discovery to completion, and records:

* ``<point>_build_s``      — wall seconds to generate the spec and
  instantiate the fabric (devices, ports, config spaces, links);
* ``<point>_discover_s``   — wall seconds for the complete discovery
  (the FM ready event: database complete, event routes programmed);
* ``<point>_events_per_s`` — kernel events processed per wall second
  during discovery (the scale-run analogue of the kernel bench's raw
  events metric);
* ``<point>_peak_rss_mb``  — peak resident set of the whole run.

Every point runs in its own spawned child process so peak-RSS numbers
are not polluted by earlier points, and an out-of-memory point cannot
take the sweep down with it.

Results are appended to ``BENCH_scale.json`` at the repository root
(see :mod:`repro.experiments.bench_report`).  ``--quick`` shrinks the
sweep to a few-hundred-device smoke suitable for CI; quick metrics are
tracked separately and never compared against the full baseline.  The
headline metric of the full sweep is the 10,000-device Dragonfly
discovery (``dragonfly_k16m125e4_discover_s``), gateable with
``--require``.
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.experiments.bench_report import record_run, render_entry

REPORT_PATH = Path(__file__).parent.parent / "BENCH_scale.json"

#: Full sweep: one ~1k and one ~10k point per generator family.  The
#: 10k Dragonfly (2000 radix-27 switches, 8000 endpoints) is the
#: acceptance point: exactly 10,000 devices.
FULL_POINTS = (
    "dragonfly-k8m62",      # 496 switches + 496 endpoints = 992 devices
    "dragonfly-k16m125e4",  # 2000 switches + 8000 endpoints = 10000
    "fattree2-1024",        # 1024 endpoints + 32 edge + 32 core = 1088
    "fattree2-8192",        # 8192 endpoints + 128 edge + 64 core = 8384
)

#: CI smoke: a few hundred devices per family, seconds not minutes.
QUICK_POINTS = (
    "dragonfly-k6m13",      # 78 switches + 78 endpoints = 156 devices
    "fattree2-256",         # 256 endpoints + 16 edge + 16 core = 288
)

#: Headline metric gated by ``--require`` (full mode).
HEADLINE = "dragonfly_k16m125e4_discover_s"


def _metric_key(name: str) -> str:
    return name.replace("-", "_")


def _measure_point(name: str, queue) -> None:
    """Child-process body: build, discover, report one sweep point."""
    import resource

    from repro.experiments.runner import build_simulation, run_until_ready
    from repro.topology import resolve_topology

    t0 = time.perf_counter()
    spec = resolve_topology(name)
    setup = build_simulation(spec, algorithm="parallel")
    build_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    stats = run_until_ready(setup)
    discover_s = time.perf_counter() - t1

    devices = len(setup.fabric.devices)
    if stats.devices_found != devices:
        raise AssertionError(
            f"{name}: discovery found {stats.devices_found} of "
            f"{devices} devices"
        )
    events = next(setup.env._eid)  # events scheduled since construction
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    queue.put({
        "devices": devices,
        "build_s": round(build_s, 3),
        "discover_s": round(discover_s, 3),
        "events": events,
        "events_per_s": round(events / discover_s, 1),
        "peak_rss_mb": round(peak_rss_mb, 1),
        "sim_time_ms": round(setup.env.now * 1e3, 3),
    })


def run_point(name: str) -> dict:
    """Measure one sweep point in a fresh spawned interpreter."""
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    proc = ctx.Process(target=_measure_point, args=(name, queue))
    proc.start()
    result = queue.get()  # blocks until the child reports
    proc.join()
    if proc.exitcode != 0:
        raise RuntimeError(f"sweep point {name} exited {proc.exitcode}")
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="few-hundred-device smoke (CI; tracked apart)")
    parser.add_argument("--points", nargs="*", metavar="NAME",
                        help="override the sweep with explicit topology "
                             "names (e.g. dragonfly-k8m17 fattree2-512)")
    parser.add_argument("--label", default="current",
                        help="label recorded in BENCH_scale.json")
    parser.add_argument("--record-baseline", action="store_true",
                        help="store this run as the trajectory baseline")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and print only; do not touch the JSON")
    parser.add_argument("--require", type=float, default=None, metavar="X",
                        help="exit non-zero unless the 10k-Dragonfly "
                             "discovery speedup vs the baseline is at "
                             "least X (full mode only)")
    args = parser.parse_args(argv)

    points = tuple(args.points) if args.points else (
        QUICK_POINTS if args.quick else FULL_POINTS
    )
    print(f"scale bench ({'quick' if args.quick else 'full'} mode, "
          f"{len(points)} points)")

    metrics: dict = {}
    units: dict = {}
    for name in points:
        result = run_point(name)
        key = _metric_key(name)
        metrics[f"{key}_build_s"] = result["build_s"]
        metrics[f"{key}_discover_s"] = result["discover_s"]
        metrics[f"{key}_events_per_s"] = result["events_per_s"]
        metrics[f"{key}_peak_rss_mb"] = result["peak_rss_mb"]
        units[f"{key}_build_s"] = (
            f"wall seconds to build {result['devices']} devices"
        )
        units[f"{key}_discover_s"] = (
            f"wall seconds to discover {result['devices']} devices"
        )
        units[f"{key}_events_per_s"] = "kernel events per wall second"
        units[f"{key}_peak_rss_mb"] = "peak resident set (MiB)"
        print(f"  {name:<22s} devices={result['devices']:>6,} "
              f"build={result['build_s']:>7.2f}s "
              f"discover={result['discover_s']:>7.2f}s "
              f"events/s={result['events_per_s']:>10,.0f} "
              f"rss={result['peak_rss_mb']:>7.1f}MB")

    if args.no_write:
        return 0

    entry = record_run(
        REPORT_PATH, benchmark="scale", label=args.label, metrics=metrics,
        units=units, quick=args.quick, as_baseline=args.record_baseline,
    )
    print()
    print(render_entry(entry))
    print(f"[trajectory: {REPORT_PATH}]")

    if args.require is not None and not args.quick:
        speedup = entry.get("speedup_vs_baseline", {}).get(HEADLINE)
        if speedup is None:
            print("no baseline to compare against", file=sys.stderr)
            return 2
        if speedup < args.require:
            print(f"10k-Dragonfly speedup {speedup:.2f}x below required "
                  f"{args.require:.2f}x", file=sys.stderr)
            return 1
        print(f"10k-Dragonfly speedup {speedup:.2f}x >= required "
              f"{args.require:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
