"""Fig. 7 — processing packets at the FM.

(a) The simulation time at which the FM finishes processing each
discovery packet, for the 3x3 mesh with every device active.  The
paper observes three near-linear series: Serial Packet with the
steepest constant slope (the FM idles through every round trip),
Serial Device with a varying-but-lower slope, Parallel with the
lowest constant slope (pure FM pipeline).

(b) The ideal pipeline periods: serial = T_FM + 2*T_Prop + T_Device,
parallel = T_FM.  The bench checks the measured slopes land on the
closed forms.
"""

import numpy as np
from _common import save

from repro.experiments.figures import figure7
from repro.manager import PARALLEL, SERIAL_DEVICE, SERIAL_PACKET


def _run():
    return figure7()


def _fit(points):
    xs = np.array([n for n, _t in points], dtype=float)
    ys = np.array([t for _n, t in points], dtype=float)
    slope, _ = np.polyfit(xs, ys, 1)
    ss_res = float(((np.polyval(np.polyfit(xs, ys, 1), xs) - ys) ** 2).sum())
    ss_tot = float(((ys - ys.mean()) ** 2).sum())
    return slope, 1 - ss_res / ss_tot


def test_fig7(benchmark):
    from repro.experiments.ascii_plot import render_plot

    data, text = benchmark.pedantic(_run, rounds=1, iterations=1)
    plot = render_plot(
        "Fig. 7(a) as a scatter plot", "packet number",
        "simulation time (s)",
        {name: points[::10] for name, points in data["timelines"].items()},
    )
    save("fig7", text + "\n\n" + plot)
    from _common import save_json
    save_json("fig7", data)

    timelines = data["timelines"]
    fits = {algo: _fit(points) for algo, points in timelines.items()}

    # Constant slopes for the two extreme algorithms (R^2 ~ 1).
    assert fits[SERIAL_PACKET][1] > 0.999
    assert fits[PARALLEL][1] > 0.999
    # Ordering of the slopes.
    assert fits[PARALLEL][0] < fits[SERIAL_DEVICE][0] \
        < fits[SERIAL_PACKET][0]

    # (b): measured slopes match the analytical periods within 5%.
    ideal = data["ideal"]
    serial_period = ideal["serial period  = T_FM + 2*T_Prop + T_Device"]
    parallel_period = ideal["parallel period = T_FM"]
    assert abs(fits[SERIAL_PACKET][0] - serial_period) / serial_period < 0.05
    assert abs(fits[PARALLEL][0] - parallel_period) / parallel_period < 0.05

    # The 3x3 mesh completes in the paper's ~3e-3 s range.
    last_time = timelines[SERIAL_PACKET][-1][1]
    assert 1e-3 < last_time < 10e-3
