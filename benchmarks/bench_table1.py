"""Table 1 — the evaluated topology suite.

Regenerates the paper's Table 1 (topology name, switch count, endpoint
count, total devices) from the topology generators.
"""

from _common import save

from repro.experiments.figures import figure_table1


def test_table1(benchmark):
    rows, text = benchmark.pedantic(figure_table1, rounds=1, iterations=1)
    save("table1", text)

    by_name = {r["topology"]: r for r in rows}
    # Structural expectations: one endpoint per switch on grids, the
    # k-ary n-tree counts on the fat-trees.
    assert by_name["3x3 mesh"] == {
        "topology": "3x3 mesh", "switches": 9, "endpoints": 9,
        "total_devices": 18,
    }
    assert by_name["8x8 torus"]["total_devices"] == 128
    assert by_name["10x10 torus"]["total_devices"] == 200
    assert by_name["4-port 4-tree"]["switches"] == 32
    assert by_name["8-port 2-tree"]["endpoints"] == 16
    assert len(rows) == 13
