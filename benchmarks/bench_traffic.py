"""S2 (section 4.1) — application traffic scarcely affects discovery.

"This traffic scarcely influences on the discovery time.  The reason
is that, in ASI, the management and notification packets have the
higher priority when they are transmitted through the fabric."

The bench sweeps background Poisson load from 0 to 80% of link rate
and measures Parallel discovery time on an 8x8 mesh (4x4 in quick
mode).  Management packets ride the strict-priority VC with the
bypassable bit set, so the discovery time must stay within a few
percent of the unloaded case.
"""

from _common import quick, save

from repro.experiments.report import render_series
from repro.experiments.runner import build_simulation, run_until_ready
from repro.manager import PARALLEL
from repro.topology import table1_topology
from repro.workloads.traffic import TrafficGenerator

LOADS = (0.0, 0.2, 0.4, 0.6, 0.8)


def _measure(spec, load):
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    generator = None
    if load > 0:
        generator = TrafficGenerator(setup.fabric, load=load, seed=11)
        generator.attach_sinks(setup.entities)
        generator.start()
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    injected = generator.counters["packets_injected"] if generator else 0
    return stats.discovery_time, injected


def _run():
    spec = table1_topology("4x4 mesh" if quick() else "8x8 mesh")
    points = []
    injected = []
    for load in LOADS:
        time, n = _measure(spec, load)
        points.append((load, time))
        injected.append((load, n))
    return {"spec": spec.name, "times": points, "injected": injected}


def test_traffic(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = render_series(
        f"S2. Discovery time under background application load "
        f"({data['spec']})",
        "load", "discovery time (s)",
        {
            "Parallel discovery": data["times"],
            "app packets injected": [
                (x, float(n)) for x, n in data["injected"]
            ],
        },
    )
    save("traffic_s2", text)

    times = dict(data["times"])
    idle = times[0.0]
    for load, time in times.items():
        assert time < idle * 1.10, (
            f"load {load:.0%} moved discovery time by "
            f"{(time / idle - 1) * 100:.1f}%"
        )
    # The sweep actually generated meaningful contention.
    assert dict(data["injected"])[0.8] > 1000
