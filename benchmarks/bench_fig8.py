"""Fig. 8 — discovery time under different processing factors (8x8 mesh).

(a) Sweeping the FM processing factor (device factor 1): "as the
processing factor grows up, the discovery time decreases, and the
difference between the serial and parallel implementations increases.
Moreover, the difference between the Serial Packet and Serial Device
algorithms slightly decreases."

(b) Sweeping the device processing factor (FM factor 1): "increasing
the device processing speed only improves the serial discovery
algorithms.  The Parallel algorithm is not affected ... only when
devices are too much slow (factors < 1/3) the discovery time is
affected."
"""

from _common import bench_jobs, quick, save, series_dict

from repro.experiments.figures import figure8
from repro.manager import PARALLEL, SERIAL_DEVICE, SERIAL_PACKET
from repro.topology import table1_topology


def _run():
    spec = table1_topology("4x4 mesh" if quick() else "8x8 mesh")
    return figure8(spec=spec, jobs=bench_jobs())


def test_fig8(benchmark):
    from repro.experiments.ascii_plot import render_plot

    data, text = benchmark.pedantic(_run, rounds=1, iterations=1)
    plots = (
        render_plot("Fig. 8(a) as a scatter plot", "FM factor",
                    "discovery time (s)", data["fm_factor"])
        + "\n\n"
        + render_plot("Fig. 8(b) as a scatter plot", "device factor",
                      "discovery time (s)", data["device_factor"])
    )
    save("fig8", text + "\n\n" + plots)
    from _common import save_json
    save_json("fig8", data)

    fm = series_dict(data["fm_factor"])
    dev = series_dict(data["device_factor"])

    # (a) time decreases monotonically with the FM factor, everywhere.
    for algo, points in fm.items():
        factors = sorted(points)
        times = [points[f] for f in factors]
        assert times == sorted(times, reverse=True), algo

    # (a) relative serial-vs-parallel difference increases with factor.
    low, high = min(fm[PARALLEL]), max(fm[PARALLEL])
    ratio_low = fm[SERIAL_PACKET][low] / fm[PARALLEL][low]
    ratio_high = fm[SERIAL_PACKET][high] / fm[PARALLEL][high]
    assert ratio_high > ratio_low

    # (a) The Serial Packet vs Serial Device gap (absolute) shrinks
    # slightly: both floor toward their round-trip-bound components.
    sd_low = fm[SERIAL_PACKET][low] - fm[SERIAL_DEVICE][low]
    sd_high = fm[SERIAL_PACKET][high] - fm[SERIAL_DEVICE][high]
    assert sd_high < sd_low

    # (b) serial algorithms improve with faster devices...
    for algo in (SERIAL_PACKET, SERIAL_DEVICE):
        assert dev[algo][0.2] > dev[algo][1.0] * 1.10, algo
    # ...while Parallel is flat for factors >= 1/3...
    flat = [dev[PARALLEL][f] for f in sorted(dev[PARALLEL]) if f >= 1 / 3]
    assert max(flat) < min(flat) * 1.05
    # ...and only very slow devices touch it, and then only mildly:
    # with hundreds of requests outstanding the FM pipeline hides even
    # 20x-slower devices almost completely.  (The paper's knee was at
    # factor < 1/3; this model's sits further out — see EXPERIMENTS.md.)
    assert dev[PARALLEL][0.05] > dev[PARALLEL][1.0]
    assert dev[PARALLEL][0.05] < dev[PARALLEL][1.0] * 1.15
