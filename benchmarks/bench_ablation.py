"""Ablations of the design choices DESIGN.md calls out.

A1 — **virtual-channel priority**: the paper's claim that traffic
"scarcely influences" discovery rests on management packets riding a
strict-priority VC with BVC bypass queues.  With uniform 60% load a
mesh's central links are oversubscribed, so data queues grow without
bound: on a single shared ordered VC (no priority, no bypass)
management requests starve behind them and discovery *cannot
complete*, while the spec's VC design keeps it at the idle time.

A2 — **arrival-clears-timeout semantics**: request timers are cleared
when the completion *reaches* the FM endpoint, not when the FM's
serial loop processes it.  Measuring the FM's own backlog against the
timeout (the naive semantics) melts the Parallel algorithm down in a
retry storm on large fabrics — the failure found and fixed during
development, kept here as a regression demonstration.

A3 — **receive-buffer sizing**: discovery is processing-dominated, so
shrinking the per-VC input buffers from 16 to 2 credits must barely
move the result (robustness of the conclusions to flow-control
parameters).

A4 — **parallel request window**: the unbounded Fig. 3 algorithm vs
bounded outstanding-request state.  Windows down to 4 keep the FM
pipeline saturated (times within ~1%); window 1 degenerates to the
Serial Packet pipeline (paying the full round trip per packet, at the
Parallel implementation's cheaper T_FM).
"""

from _common import quick, save

from repro.experiments.report import render_table
from repro.experiments.runner import (
    build_simulation,
    database_matches_fabric,
    run_until_ready,
)
from repro.fabric import FabricParams
from repro.manager import PARALLEL
from repro.topology import table1_topology
from repro.workloads.traffic import TrafficGenerator

SINGLE_OVC = FabricParams(
    vc_count=1,
    vc_types=("ovc",),
    tc_vc_map=(0,) * 8,
)

TINY_BUFFERS = FabricParams(rx_buffer_credits=2)


def _discover(spec, params=None, load=None, **fm_kwargs):
    kwargs = {"params": params} if params is not None else {}
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False,
                             **kwargs, **fm_kwargs)
    if load:
        generator = TrafficGenerator(setup.fabric, load=load, seed=21)
        generator.attach_sinks(setup.entities)
        generator.start()
    setup.fm.start_discovery()
    stats = run_until_ready(setup)
    return setup, stats


def _run():
    spec = table1_topology("4x4 mesh" if quick() else "6x6 mesh")
    big = table1_topology("4x4 torus" if quick() else "6x6 torus")
    rows = []

    # A1: VC priority under saturating load.
    idle_setup, base_idle = _discover(spec)
    loaded_setup, base_loaded = _discover(spec, load=0.6)
    ovc_setup, ovc_loaded = _discover(spec, params=SINGLE_OVC, load=0.6)
    rows.append(["A1", "2 VCs + bypass, idle", base_idle.discovery_time,
                 base_idle.timeouts,
                 str(database_matches_fabric(idle_setup))])
    rows.append(["A1", "2 VCs + bypass, 60% load",
                 base_loaded.discovery_time, base_loaded.timeouts,
                 str(database_matches_fabric(loaded_setup))])
    rows.append(["A1", "single OVC, 60% load", ovc_loaded.discovery_time,
                 ovc_loaded.timeouts,
                 str(database_matches_fabric(ovc_setup))])

    # A2: timeout semantics.
    setup, good = _discover(big)
    naive_setup, naive = _discover(big, arrival_clears_timeout=False)
    rows.append(["A2", "timeout cleared at arrival", good.discovery_time,
                 good.retries, str(database_matches_fabric(setup))])
    rows.append(["A2", "timeout vs FM backlog (naive)",
                 naive.discovery_time, naive.retries,
                 str(database_matches_fabric(naive_setup))])

    # A3: buffer sizing.
    _s, fat = _discover(spec)
    _s, thin = _discover(spec, params=TINY_BUFFERS)
    rows.append(["A3", "16-credit buffers", fat.discovery_time, 0, "yes"])
    rows.append(["A3", "2-credit buffers", thin.discovery_time, 0, "yes"])

    # A4: bounded outstanding requests.
    window_times = {}
    for window in (None, 16, 4, 1):
        _s, stats = _discover(spec, parallel_window=window)
        window_times[window] = stats.discovery_time
        label = "unbounded" if window is None else f"window={window}"
        rows.append(["A4", f"parallel, {label}", stats.discovery_time,
                     0, "yes"])

    return {
        "rows": rows,
        "a1": (
            base_idle.discovery_time,
            base_loaded.discovery_time,
            database_matches_fabric(loaded_setup),
            ovc_loaded.timeouts,
            database_matches_fabric(ovc_setup),
        ),
        "a2": (good, naive, database_matches_fabric(naive_setup)),
        "a3": (fat.discovery_time, thin.discovery_time),
        "a4": window_times,
    }


def test_ablations(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = render_table(
        ["id", "configuration", "discovery time (s)", "retries",
         "db correct"],
        data["rows"],
    )
    save("ablations", "Design-choice ablations\n" + text)

    idle, loaded, loaded_correct, ovc_timeouts, ovc_correct = data["a1"]
    # The VC design keeps saturating load within 10% of idle and exact.
    assert loaded < idle * 1.10
    assert loaded_correct
    # Without it, management starves behind the saturated data queues:
    # requests time out and the database comes out incomplete.
    assert ovc_timeouts > 0
    assert not ovc_correct

    good, naive, naive_correct = data["a2"]
    assert good.retries == 0
    # The naive semantics trigger spurious retries (and usually an
    # incomplete database) on a fabric this large.
    assert naive.retries > 0 or not naive_correct

    fat, thin = data["a3"]
    assert abs(thin - fat) / fat < 0.05

    windows = data["a4"]
    # Windows >= 4 keep the FM saturated...
    assert windows[4] < windows[None] * 1.02
    # ...while window 1 serializes every round trip.
    assert windows[1] > windows[None] * 1.15
