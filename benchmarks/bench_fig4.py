"""Fig. 4 — average FM time to process a PI-4 packet, per algorithm.

The paper measured these times by profiling a software FM on a 3 GHz
Pentium 4 and fed them to the simulator.  Here the simulator's FM
accumulates its charged busy time; the bench reports the per-packet
mean for each algorithm across network sizes and checks Fig. 4's
shape: Serial Packet > Serial Device > Parallel, mild growth with
size, all in the ~10-25 microsecond band.
"""

from _common import bench_jobs, bench_suite, quick, save, series_dict

from repro.experiments.figures import figure4
from repro.manager import PARALLEL, SERIAL_DEVICE, SERIAL_PACKET
from repro.topology import table1_topology


def _run():
    if quick():
        topologies = [table1_topology(n) for n in ("3x3 mesh", "4x4 mesh")]
    else:
        topologies = [
            table1_topology(n)
            for n in ("3x3 mesh", "4x4 mesh", "6x6 mesh", "8x8 mesh",
                      "10x10 torus")
        ]
    return figure4(topologies=topologies, jobs=bench_jobs())


def test_fig4(benchmark):
    from repro.experiments.ascii_plot import render_plot

    data, text = benchmark.pedantic(_run, rounds=1, iterations=1)
    plot = render_plot(
        "Fig. 4 as a scatter plot", "switches",
        "FM PI-4 processing time (s)", data["series"],
    )
    save("fig4", text + "\n\n" + plot)
    from _common import save_json
    save_json("fig4", data)

    series = series_dict(data["series"])
    sizes = sorted(series[PARALLEL])
    for size in sizes:
        sp = series[SERIAL_PACKET][size]
        sd = series[SERIAL_DEVICE][size]
        pa = series[PARALLEL][size]
        # Fig. 4 ordering at every network size.
        assert sp > sd > pa
        # Fig. 4 magnitude band.
        assert 5e-6 < pa and sp < 30e-6
    # Mild growth with network size, for every algorithm.
    for algo in (SERIAL_PACKET, SERIAL_DEVICE, PARALLEL):
        assert series[algo][sizes[-1]] > series[algo][sizes[0]]
