"""Availability machinery (paper section 2) — election and failover.

Not a numbered figure in the paper, but section 2 defines the
behaviours: "after the fabric is powered up, a distributed process is
triggered in order to select primary and secondary fabric managers...
If the primary FM fails, the secondary one takes over."  This bench
quantifies both over increasing fabric sizes:

* election: flood traffic and whether all endpoints reach consensus;
* failover: detection latency (missed heartbeats) plus the secondary's
  rediscovery time — which is just one more discovery, so it scales
  exactly like Fig. 6.
"""

from _common import quick, save

from repro.experiments.report import render_table
from repro.experiments.runner import build_simulation, run_until_ready
from repro.manager import (
    PARALLEL,
    Election,
    FabricManager,
    StandbyManager,
)
from repro.routing.paths import fabric_route
from repro.topology import table1_topology


def _election(spec):
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    election = Election(setup.entities, seed=5)
    result = setup.env.run(until=election.run())
    flood_packets = sum(
        entity.stats["multicast_sent"]
        for entity in setup.entities.values()
    )
    return result, flood_packets


def _failover(spec):
    setup = build_simulation(spec, algorithm=PARALLEL, auto_start=False)
    setup.fm.start_discovery()
    run_until_ready(setup)

    standby_host = sorted(
        ep for ep in spec.endpoints if ep != spec.fm_host
    )[-1]
    standby_fm = FabricManager(
        setup.fabric.device(standby_host),
        setup.entities[standby_host],
        algorithm=PARALLEL, auto_start=False,
        request_timeout=0.5e-3, max_retries=0,
    )
    standby = StandbyManager(
        standby_fm,
        primary_route=fabric_route(setup.fabric, standby_host,
                                   spec.fm_host),
        heartbeat_interval=2e-3, miss_threshold=3,
    )
    standby.start()
    setup.env.run(until=setup.env.now + 10e-3)

    failed_at = setup.env.now
    setup.fabric.remove_device(setup.fm.endpoint.name)
    report = setup.env.run(until=standby.takeover_event)
    detection = report.detected_at - failed_at
    return detection, report.recovery_time


def _run():
    names = ("3x3 mesh", "4x4 mesh") if quick() else (
        "3x3 mesh", "4x4 mesh", "6x6 mesh", "8x8 mesh",
    )
    rows = []
    for name in names:
        spec = table1_topology(name)
        result, flood = _election(spec)
        detection, recovery = _failover(spec)
        rows.append({
            "topology": name,
            "devices": spec.total_devices,
            "consensus": result.consensus,
            "flood_packets": flood,
            "detection": detection,
            "recovery": recovery,
        })
    return rows


def test_availability(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = render_table(
        ["Topology", "Devices", "Consensus", "Flood pkts",
         "detect fail (s)", "rediscover (s)"],
        [[r["topology"], r["devices"], r["consensus"], r["flood_packets"],
          r["detection"], r["recovery"]] for r in rows],
    )
    save("availability", "Election and failover (paper section 2)\n" + text)

    for row in rows:
        # Every endpoint agrees on primary and secondary.
        assert row["consensus"]
        # Detection is bounded by miss_threshold x heartbeat interval
        # (plus one in-flight heartbeat's timeout).
        assert row["detection"] < 3 * 2e-3 + 2 * 0.5e-3 + 2e-3
        assert row["recovery"] > 0
    # Flood cost grows with fabric size (more candidates, more links).
    assert rows[-1]["flood_packets"] > rows[0]["flood_packets"]
