"""Unit tests for configuration space and capability structures."""

import pytest
from hypothesis import given, strategies as st

from repro.capability import (
    BASELINE_CAP_ID,
    EVENT_ROUTE_CAP_ID,
    PATH_TABLE_CAP_ID,
    ConfigSpace,
    ConfigSpaceError,
    EventRouteCapability,
    PathTableCapability,
    RegisterBlock,
    RegisterError,
    decode_general_info,
    decode_port_status,
    pack_u64,
    port_block_offset,
    unpack_u64,
)
from repro.capability.baseline import (
    DEVICE_TYPE_ENDPOINT,
    DEVICE_TYPE_SWITCH,
    GENERAL_INFO_DWORDS,
)
from repro.fabric import Fabric
from repro.sim import Environment


@pytest.fixture
def fabric():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_endpoint("ep")
    fabric.add_switch("sw")
    fabric.connect("ep", 0, "sw", 0)
    fabric.power_up()
    return fabric


class TestRegisterBlock:
    def test_read_write_roundtrip(self):
        block = RegisterBlock(4)
        block.write(1, [0xDEADBEEF, 0x12345678])
        assert block.read(1, 2) == [0xDEADBEEF, 0x12345678]

    def test_bounds_checked(self):
        block = RegisterBlock(2)
        with pytest.raises(RegisterError):
            block.read(1, 2)
        with pytest.raises(RegisterError):
            block.write(2, [0])
        with pytest.raises(RegisterError):
            block.read(0, 0)

    def test_non_dword_value_rejected(self):
        block = RegisterBlock(1)
        with pytest.raises(RegisterError):
            block.write(0, [1 << 32])

    @given(st.integers(0, (1 << 64) - 1))
    def test_u64_pack_roundtrip(self, value):
        assert unpack_u64(*pack_u64(value)) == value


class TestBaselineCapability:
    def test_general_info_decodes(self, fabric):
        sw = fabric.device("sw")
        dwords = sw.config_space.read(BASELINE_CAP_ID, 0, GENERAL_INFO_DWORDS)
        info = decode_general_info(dwords)
        assert info["type_code"] == DEVICE_TYPE_SWITCH
        assert info["nports"] == 16
        assert info["dsn"] == sw.dsn
        assert info["active"] is True

    def test_endpoint_type_and_fm_flags(self, fabric):
        ep = fabric.device("ep")
        dwords = ep.config_space.read(BASELINE_CAP_ID, 0, GENERAL_INFO_DWORDS)
        info = decode_general_info(dwords)
        assert info["type_code"] == DEVICE_TYPE_ENDPOINT
        assert info["nports"] == 1
        assert info["fm_capable"] is True

    def test_port_status_tracks_link_state(self, fabric):
        sw = fabric.device("sw")
        offset = port_block_offset(0)
        status = decode_port_status(
            sw.config_space.read(BASELINE_CAP_ID, offset, 1)[0]
        )
        assert status["up"] is True
        # Unconnected port reads down.
        status5 = decode_port_status(
            sw.config_space.read(BASELINE_CAP_ID, port_block_offset(5), 1)[0]
        )
        assert status5["up"] is False
        # Fail the link: the same read now shows down.
        fabric.fail_link("ep", "sw")
        status = decode_port_status(
            sw.config_space.read(BASELINE_CAP_ID, offset, 1)[0]
        )
        assert status["up"] is False

    def test_baseline_is_read_only(self, fabric):
        sw = fabric.device("sw")
        with pytest.raises(ConfigSpaceError):
            sw.config_space.write(BASELINE_CAP_ID, 0, [0])

    def test_out_of_range_port_block_rejected(self, fabric):
        ep = fabric.device("ep")  # 1 port -> 8 dwords total
        with pytest.raises(ConfigSpaceError):
            ep.config_space.read(BASELINE_CAP_ID, port_block_offset(2), 1)

    def test_decode_general_info_needs_six_dwords(self):
        with pytest.raises(ValueError):
            decode_general_info([0, 0, 0])


class TestConfigSpace:
    def test_unknown_capability_errors(self, fabric):
        with pytest.raises(ConfigSpaceError, match="no capability"):
            fabric.device("sw").config_space.read(0x7F, 0, 1)

    def test_read_count_limited_to_eight(self, fabric):
        sw = fabric.device("sw")
        with pytest.raises(ConfigSpaceError):
            sw.config_space.read(BASELINE_CAP_ID, 0, 9)
        assert len(sw.config_space.read(BASELINE_CAP_ID, 0, 8)) == 8

    def test_duplicate_capability_rejected(self):
        space = ConfigSpace()
        space.add(EventRouteCapability())
        with pytest.raises(ValueError):
            space.add(EventRouteCapability())

    def test_capability_ids_listed(self, fabric):
        ids = fabric.device("ep").config_space.capability_ids()
        assert BASELINE_CAP_ID in ids
        assert EVENT_ROUTE_CAP_ID in ids
        assert PATH_TABLE_CAP_ID in ids

    def test_empty_write_rejected(self, fabric):
        ep = fabric.device("ep")
        with pytest.raises(ConfigSpaceError):
            ep.config_space.write(EVENT_ROUTE_CAP_ID, 0, [])


class TestEventRouteCapability:
    def test_set_and_get_route(self):
        cap = EventRouteCapability()
        assert cap.get_route() is None
        cap.set_route(turn_pool=0xABCDEF0123, turn_pointer=17, out_port=3)
        assert cap.get_route() == (0xABCDEF0123, 17, 3)

    def test_clear_invalidates(self):
        cap = EventRouteCapability()
        cap.set_route(0x1, 1, 0)
        cap.clear()
        assert cap.get_route() is None

    def test_raw_dword_write_visible_via_typed_read(self):
        cap = EventRouteCapability()
        cap.write(0, [(1 << 31) | (2 << 7) | 5, 0, 0x42])
        assert cap.get_route() == (0x42, 5, 2)


class TestPathTableCapability:
    def test_set_lookup_roundtrip(self):
        table = PathTableCapability(max_entries=4)
        table.set_entry(0, dsn=0xAA, turn_pool=0x123, turn_pointer=8)
        table.set_entry(2, dsn=0xBB, turn_pool=0x456, turn_pointer=12)
        assert table.lookup(0xAA) == (0x123, 8)
        assert table.lookup(0xBB) == (0x456, 12)
        assert table.lookup(0xCC) is None

    def test_entries_lists_only_valid(self):
        table = PathTableCapability(max_entries=4)
        table.set_entry(1, dsn=0x1, turn_pool=0x2, turn_pointer=3)
        assert table.entries() == {0x1: (0x2, 3)}

    def test_clear(self):
        table = PathTableCapability(max_entries=2)
        table.set_entry(0, 1, 2, 3)
        table.clear()
        assert table.entries() == {}

    def test_index_bounds(self):
        table = PathTableCapability(max_entries=2)
        with pytest.raises(RegisterError):
            table.set_entry(2, 1, 2, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            PathTableCapability(max_entries=0)
