"""Tests for the configurable application-traffic workload."""

import random
from dataclasses import replace

import pytest

from repro.experiments.failover import build_failover_pair
from repro.experiments.runner import build_simulation, run_until_ready
from repro.fabric import PI_APPLICATION, Packet, RouteHeader
from repro.fabric.params import DEFAULT_PARAMS
from repro.manager import PARALLEL
from repro.routing.paths import fabric_endpoint_routes
from repro.topology import make_mesh
from repro.workloads import (
    ARRIVALS,
    PATTERNS,
    FaultInjector,
    TrafficGenerator,
    TrafficSpec,
    Workload,
    WorkloadSet,
)


class TestTrafficSpec:
    def test_defaults(self):
        spec = TrafficSpec()
        assert spec.load == 0.5
        assert spec.arrival == "poisson"
        assert spec.pattern == "uniform"
        assert spec.enabled

    def test_idle_spec_is_valid(self):
        spec = TrafficSpec(load=0.0)
        assert not spec.enabled

    @pytest.mark.parametrize("kwargs", [
        {"load": -0.1},
        {"load": 1.5},
        {"packet_bytes": 0},
        {"tc": 8},
        {"tc": -1},
        {"arrival": "diurnal"},
        {"pattern": "tornado"},
        {"burst_length": 0.5},
        {"hotspot_fraction": 0.0},
        {"hotspot_fraction": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrafficSpec(**kwargs)

    def test_round_trip(self):
        spec = TrafficSpec(load=0.7, packet_bytes=128, tc=3,
                           arrival="bursty", pattern="hotspot",
                           burst_length=4.0, hotspot_fraction=0.9)
        doc = spec.to_dict()
        assert doc["schema"] == "repro/traffic/v1"
        assert TrafficSpec.from_dict(doc) == spec

    def test_from_dict_rejects_unknown_fields(self):
        doc = TrafficSpec().to_dict()
        doc["jitter"] = 1
        with pytest.raises(ValueError, match="unknown TrafficSpec"):
            TrafficSpec.from_dict(doc)

    def test_from_dict_rejects_wrong_schema(self):
        doc = TrafficSpec().to_dict()
        doc["schema"] = "repro/traffic/v99"
        with pytest.raises(ValueError, match="schema"):
            TrafficSpec.from_dict(doc)


class TestTrafficGenerator:
    def test_override_kwargs(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.3, packet_bytes=128)
        assert gen.spec.load == 0.3
        assert gen.spec.packet_bytes == 128
        # Overrides are validated through the spec itself.
        with pytest.raises(ValueError):
            TrafficGenerator(setup.fabric, load=1.5)

    def test_traffic_flows_end_to_end(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.3, seed=1)
        gen.attach_sinks(setup.entities)
        gen.start()
        setup.env.run(until=1e-3)
        gen.stop()
        setup.env.run(until=setup.env.now + 1e-4)
        stats = gen.stats()
        assert stats["packets_injected"] > 50
        # Virtually everything injected is delivered (no losses in a
        # healthy fabric; at most the last few packets are in flight).
        assert stats["packets_delivered"] >= stats["packets_injected"] - 10
        assert stats["offered_load"] == 0.3
        assert stats["delivered_bytes_per_s"] > 0

    def test_load_scales_injection_rate(self):
        rates = {}
        for load in (0.2, 0.8):
            setup = build_simulation(make_mesh(2, 2), auto_start=False)
            gen = TrafficGenerator(setup.fabric, load=load, seed=2)
            gen.start()
            setup.env.run(until=1e-3)
            gen.stop()
            rates[load] = gen.counters["packets_injected"]
        assert rates[0.8] > 2.5 * rates[0.2]

    def test_double_start_rejected(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.2)
        gen.start()
        with pytest.raises(RuntimeError):
            gen.start()

    def test_idle_generator_is_a_true_noop(self):
        """load=0 schedules nothing and draws no random numbers, so the
        event stream is bit-identical to a run without a generator."""
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.0, seed=5)
        before = gen.rng.getstate()
        heap_before = setup.env.peek()
        gen.start()
        assert gen.rng.getstate() == before
        assert setup.env.peek() == heap_before
        assert not gen.running
        assert gen.stats().get("packets_injected", 0) == 0
        with pytest.raises(ValueError):
            gen.mean_interarrival

    def test_app_packets_do_not_cost_management_time(self):
        """The entity processes application packets at zero cost."""
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.5, seed=3)
        gen.attach_sinks(setup.entities)
        gen.start()
        setup.env.run(until=0.5e-3)
        delivered = sum(
            e.stats["app_packets"] for e in setup.entities.values()
        )
        assert delivered > 0

    def test_seed_reproducibility(self):
        def run(seed):
            setup = build_simulation(make_mesh(2, 2), auto_start=False)
            gen = TrafficGenerator(setup.fabric, load=0.4, seed=seed)
            gen.attach_sinks(setup.entities)
            gen.start()
            setup.env.run(until=1e-3)
            return dict(gen.counters.asdict())

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestArrivalsAndPatterns:
    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_every_arrival_injects(self, arrival):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.5, arrival=arrival,
                               seed=11)
        gen.start()
        setup.env.run(until=1e-3)
        assert gen.counters["packets_injected"] > 20

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_every_pattern_delivers(self, pattern):
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.3, pattern=pattern,
                               seed=12)
        gen.attach_sinks(setup.entities)
        gen.start()
        setup.env.run(until=1e-3)
        assert gen.counters["packets_delivered"] > 20

    def test_constant_arrival_is_perfectly_paced(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.5, arrival="constant",
                               seed=13)
        gen.start()
        horizon = 1e-3
        setup.env.run(until=horizon)
        sources = len([e for e in setup.fabric.endpoints() if e.active])
        expected = sources * int(horizon / gen.mean_interarrival)
        assert abs(gen.counters["packets_injected"] - expected) <= sources

    def test_permutation_fixes_one_partner_per_source(self):
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.3,
                               pattern="permutation", seed=14)
        gen.start()
        sources = sorted(gen._routes)
        partners = [gen._partners[s] for s in sources]
        # A cycle: every source has a distinct partner, never itself.
        assert len(set(partners)) == len(sources)
        assert all(p != s for s, p in zip(sources, partners))

    def test_hotspot_concentrates_on_one_victim(self):
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.3, pattern="hotspot",
                               hotspot_fraction=0.9, seed=15)
        received = {}
        for name, entity in setup.entities.items():
            def sink(packet, port, name=name):
                received[name] = received.get(name, 0) + 1
            entity.app_handler = sink
        gen.start()
        setup.env.run(until=1e-3)
        assert gen._hotspot is not None
        total = sum(received.values())
        assert received.get(gen._hotspot, 0) > 0.6 * total


class TestWorkloadProtocol:
    def test_traffic_generator_conforms(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.2)
        assert isinstance(gen, Workload)
        assert gen.describe()["workload"] == "traffic"

    def test_fault_injector_conforms(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        injector = FaultInjector(setup.fabric, seed=0, fm=setup.fm)
        assert isinstance(injector, Workload)
        desc = injector.describe()
        assert desc["workload"] == "faults"
        assert desc["fault_budget"] >= 1
        assert "faults_injected" in injector.stats()

    def test_standby_manager_conforms(self):
        setup, standby = build_failover_pair(make_mesh(2, 2))
        assert isinstance(standby, Workload)
        assert standby.describe()["workload"] == "standby"
        assert "heartbeats_sent" in standby.stats()

    def test_workload_set_lifecycle(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        calls = []

        class Probe:
            def __init__(self, name):
                self.name = name

            def start(self):
                calls.append(("start", self.name))

            def stop(self):
                calls.append(("stop", self.name))

            def stats(self):
                return {"name": self.name}

            def describe(self):
                return {"workload": self.name}

        workloads = WorkloadSet()
        workloads.add(Probe("a"))
        workloads.add(Probe("b"))
        assert len(workloads) == 2
        assert isinstance(workloads, Workload)
        workloads.start()
        workloads.stop()
        # Started in insertion order, stopped in reverse.
        assert calls == [("start", "a"), ("start", "b"),
                         ("stop", "b"), ("stop", "a")]
        assert set(workloads.stats()) == {"a[0]", "b[1]"}
        traffic = TrafficGenerator(setup.fabric, load=0.2)
        workloads.add(traffic)
        assert "traffic[2]" in workloads.describe()


def _delivery_order(tc_vc_map):
    """Queue app packets then one TC-7 packet; return delivery TC order."""
    params = replace(DEFAULT_PARAMS, tc_vc_map=tc_vc_map)
    setup = build_simulation(make_mesh(2, 2), params=params,
                             auto_start=False)
    src = sorted(e.name for e in setup.fabric.endpoints())[0]
    endpoint = setup.fabric.device(src)
    routes = fabric_endpoint_routes(setup.fabric, src)
    dst = sorted(routes)[0]
    pool, out_port = routes[dst]
    order = []
    setup.entities[dst].app_handler = \
        lambda packet, port: order.append(packet.header.tc)

    def inject(tc):
        header = RouteHeader(pi=PI_APPLICATION, tc=tc,
                             turn_pointer=pool.bits, turn_pool=pool.pool)
        endpoint.inject(
            Packet(header=header, payload=bytes(64), src=src),
            port_index=out_port,
        )

    for _ in range(4):
        inject(0)
    inject(7)  # the management traffic class, queued last
    setup.env.run(until=1e-4)
    assert len(order) == 5
    return order


class TestQoSPreemption:
    """Pinned, fully deterministic port-arbitration check: no RNG, no
    timing model — just five packets racing out of one egress port."""

    def test_bvc_mapping_lets_management_preempt(self):
        # Strict-priority BVC mapping: TC7 rides VC1, which the port
        # arbiter drains first, so the management packet overtakes the
        # whole VC0 application backlog.
        order = _delivery_order(DEFAULT_PARAMS.tc_vc_map)
        assert order[0] == 7
        assert order[1:] == [0, 0, 0, 0]

    def test_mixed_mapping_queues_management_behind_apps(self):
        # Single-VC mapping: TC7 shares VC0's FIFO and waits out every
        # application packet queued ahead of it.
        order = _delivery_order((0,) * 8)
        assert order == [0, 0, 0, 0, 7]


class TestPaperClaim:
    def test_traffic_scarcely_influences_discovery_time(self):
        """Section 4.1's claim: management packets have priority, so
        application load barely moves the discovery time."""
        spec = make_mesh(3, 3)

        def measure(load):
            setup = build_simulation(spec, algorithm=PARALLEL,
                                     auto_start=False)
            if load:
                gen = TrafficGenerator(setup.fabric, load=load, seed=4)
                gen.attach_sinks(setup.entities)
                gen.start()
            setup.fm.start_discovery()
            return run_until_ready(setup).discovery_time

        idle = measure(None)
        loaded = measure(0.6)
        assert loaded < idle * 1.10  # within 10%
