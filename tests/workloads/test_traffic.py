"""Tests for the background application-traffic workload."""

import pytest

from repro.experiments.runner import build_simulation, run_until_ready
from repro.manager import PARALLEL
from repro.topology import make_mesh
from repro.workloads.traffic import TrafficGenerator


class TestTrafficGenerator:
    def test_validation(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        with pytest.raises(ValueError):
            TrafficGenerator(setup.fabric, load=0)
        with pytest.raises(ValueError):
            TrafficGenerator(setup.fabric, load=1.5)
        with pytest.raises(ValueError):
            TrafficGenerator(setup.fabric, packet_bytes=0)

    def test_traffic_flows_end_to_end(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.3, seed=1)
        gen.attach_sinks(setup.entities)
        gen.start()
        setup.env.run(until=1e-3)
        gen.stop()
        setup.env.run(until=setup.env.now + 1e-4)
        assert gen.stats["packets_injected"] > 50
        # Virtually everything injected is delivered (no losses in a
        # healthy fabric; at most the last few packets are in flight).
        assert gen.stats["packets_delivered"] >= \
            gen.stats["packets_injected"] - 10

    def test_load_scales_injection_rate(self):
        rates = {}
        for load in (0.2, 0.8):
            setup = build_simulation(make_mesh(2, 2), auto_start=False)
            gen = TrafficGenerator(setup.fabric, load=load, seed=2)
            gen.start()
            setup.env.run(until=1e-3)
            gen.stop()
            rates[load] = gen.stats["packets_injected"]
        assert rates[0.8] > 2.5 * rates[0.2]

    def test_double_start_rejected(self):
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.2)
        gen.start()
        with pytest.raises(RuntimeError):
            gen.start()

    def test_app_packets_do_not_cost_management_time(self):
        """The entity processes application packets at zero cost."""
        setup = build_simulation(make_mesh(2, 2), auto_start=False)
        gen = TrafficGenerator(setup.fabric, load=0.5, seed=3)
        gen.attach_sinks(setup.entities)
        gen.start()
        setup.env.run(until=0.5e-3)
        delivered = sum(
            e.stats["app_packets"] for e in setup.entities.values()
        )
        assert delivered > 0


class TestPaperClaim:
    def test_traffic_scarcely_influences_discovery_time(self):
        """Section 4.1's claim: management packets have priority, so
        application load barely moves the discovery time."""
        spec = make_mesh(3, 3)

        def measure(load):
            setup = build_simulation(spec, algorithm=PARALLEL,
                                     auto_start=False)
            if load:
                gen = TrafficGenerator(setup.fabric, load=load, seed=4)
                gen.attach_sinks(setup.entities)
                gen.start()
            setup.fm.start_discovery()
            return run_until_ready(setup).discovery_time

        idle = measure(None)
        loaded = measure(0.6)
        assert loaded < idle * 1.10  # within 10%
