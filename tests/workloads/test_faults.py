"""FaultInjector hold-until-busy timing: ``max_hold`` is an env-time
deadline, honored exactly."""

import random

from repro.experiments.runner import build_simulation
from repro.topology import make_mesh
from repro.workloads.faults import FaultInjector


class _QuietFM:
    """An FM stub that never discovers (forces the full hold)."""

    is_discovering = False
    is_assimilating = False


class _BusyFM:
    """An FM stub that is always mid-walk (no hold at all)."""

    is_discovering = True
    is_assimilating = False


def _first_interval(seed: int, mean_interval: float) -> float:
    """The injector's first inter-fault delay for ``seed``."""
    return random.Random(seed).expovariate(1.0 / mean_interval)


class TestMaxHoldDeadline:
    def test_quiet_fabric_fires_exactly_at_the_deadline(self):
        # poll_interval (0.4 ms) does NOT divide max_hold (1.0 ms):
        # a per-poll tally would overshoot to 1.2 ms, but the env-time
        # deadline clamps the last wait to 0.2 ms and fires at exactly
        # interval + max_hold.
        mean, poll, hold = 1e-3, 0.4e-3, 1.0e-3
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        injector = FaultInjector(
            setup.fabric, mean_interval=mean, seed=5, fm=_QuietFM(),
            during_discovery=True, poll_interval=poll, max_hold=hold,
        )
        done = injector.run(faults=1)
        log = setup.env.run(until=done)
        assert len(log) == 1
        expected = _first_interval(5, mean) + hold
        assert abs(log[0].time - expected) < 1e-12
        assert log[0].mid_discovery is False

    def test_busy_fm_fires_without_any_hold(self):
        mean = 1e-3
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        injector = FaultInjector(
            setup.fabric, mean_interval=mean, seed=5, fm=_BusyFM(),
            during_discovery=True, poll_interval=0.4e-3, max_hold=1.0e-3,
        )
        done = injector.run(faults=1)
        log = setup.env.run(until=done)
        assert len(log) == 1
        assert abs(log[0].time - _first_interval(5, mean)) < 1e-12
        assert log[0].mid_discovery is True

    def test_hold_shorter_than_one_poll_still_respects_deadline(self):
        # max_hold below poll_interval: the single wait is clamped to
        # max_hold itself.
        mean, poll, hold = 1e-3, 5e-3, 0.3e-3
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        injector = FaultInjector(
            setup.fabric, mean_interval=mean, seed=5, fm=_QuietFM(),
            during_discovery=True, poll_interval=poll, max_hold=hold,
        )
        done = injector.run(faults=1)
        log = setup.env.run(until=done)
        expected = _first_interval(5, mean) + hold
        assert abs(log[0].time - expected) < 1e-12


class TestFmKillPlane:
    def test_gating_off_keeps_the_schedule_bit_identical(self):
        # With allow_fm_kill off the candidate-kind list never grows,
        # so the RNG draw sequence — and the whole seeded schedule —
        # matches an injector that has no fm at all.
        logs = []
        for fm in (None, _QuietFM()):
            setup = build_simulation(make_mesh(3, 3), auto_start=False)
            injector = FaultInjector(
                setup.fabric, mean_interval=1e-3, seed=11, fm=fm,
            )
            done = injector.run(faults=6)
            log = setup.env.run(until=done)
            logs.append([(e.time, e.kind, e.target) for e in log])
        assert logs[0] == logs[1]

    def test_validation(self):
        import pytest
        setup = build_simulation(make_mesh(3, 3), auto_start=False)
        with pytest.raises(ValueError):
            FaultInjector(setup.fabric, allow_fm_kill=True)
        with pytest.raises(ValueError):
            FaultInjector(setup.fabric, fm=_QuietFM(),
                          allow_fm_kill=True, fm_restart_delay=0.0)

    def test_kill_then_scheduled_restart_rewalks_the_fabric(self):
        from repro.experiments.runner import run_until_ready
        setup = build_simulation(make_mesh(3, 3))
        run_until_ready(setup)
        walks = len(setup.fm.history)
        injector = FaultInjector(
            setup.fabric, mean_interval=1e-3, seed=0, fm=setup.fm,
            allow_fm_kill=True, fm_restart_delay=2e-3,
        )
        events = []
        injector.on_fault = events.append
        injector.kill_fm_now()
        assert injector.fm_down
        injector.kill_fm_now()  # idempotent: no second event
        assert [e.kind for e in events] == ["kill_fm"]
        setup.env.run(until=setup.env.now + 30e-3)
        assert not injector.fm_down
        assert [e.kind for e in events] == ["kill_fm", "restart_fm"]
        # A rebooted manager walks the fabric on startup.
        assert len(setup.fm.history) > walks

    def test_stop_cancels_a_pending_restart(self):
        from repro.experiments.runner import run_until_ready
        setup = build_simulation(make_mesh(3, 3))
        run_until_ready(setup)
        injector = FaultInjector(
            setup.fabric, mean_interval=1e-3, seed=0, fm=setup.fm,
            allow_fm_kill=True, fm_restart_delay=5e-3,
        )
        injector.kill_fm_now()
        injector.stop()
        setup.env.run(until=setup.env.now + 20e-3)
        assert injector.fm_down  # the resurrection never fired
