"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


@pytest.fixture
def env():
    return Environment()


def test_process_requires_generator(env):
    with pytest.raises(ValueError):
        env.process(lambda: None)


def test_process_return_value(env):
    def proc(env):
        yield env.timeout(1)
        return 123

    assert env.run(until=env.process(proc(env))) == 123


def test_process_is_alive_lifecycle(env):
    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_wait_for_another_process(env):
    def worker(env):
        yield env.timeout(3)
        return "result"

    def waiter(env):
        worker_p = env.process(worker(env))
        value = yield worker_p
        return (env.now, value)

    assert env.run(until=env.process(waiter(env))) == (3.0, "result")


def test_exception_in_process_propagates_to_waiter(env):
    def bad(env):
        yield env.timeout(1)
        raise KeyError("oops")

    def waiter(env):
        with pytest.raises(KeyError):
            yield env.process(bad(env))
        return "caught"

    assert env.run(until=env.process(waiter(env))) == "caught"


def test_unhandled_process_exception_crashes_run(env):
    def bad(env):
        yield env.timeout(1)
        raise KeyError("unhandled")

    env.process(bad(env))
    with pytest.raises(KeyError):
        env.run()


def test_yield_non_event_fails_process(env):
    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()
    assert not p.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as exc:
                return ("interrupted", exc.cause, env.now)

        def attacker(env, victim_p):
            yield env.timeout(5)
            victim_p.interrupt(cause="stop it")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        assert env.run(until=v) == ("interrupted", "stop it", 5.0)

    def test_interrupted_event_can_be_reyielded(self, env):
        def victim(env):
            target = env.timeout(10)
            try:
                yield target
            except Interrupt:
                pass
            yield target  # resume waiting for the original event
            return env.now

        def attacker(env, victim_p):
            yield env.timeout(2)
            victim_p.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        assert env.run(until=v) == 10.0

    def test_cannot_interrupt_dead_process(self, env):
        def quick(env):
            yield env.timeout(0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_cannot_interrupt_self(self, env):
        def selfish(env):
            with pytest.raises(SimulationError):
                env.active_process.interrupt()
            yield env.timeout(0)
            return True

        assert env.run(until=env.process(selfish(env))) is True

    def test_unhandled_interrupt_kills_process(self, env):
        def victim(env):
            yield env.timeout(100)

        def attacker(env, victim_p):
            yield env.timeout(1)
            victim_p.interrupt("die")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        with pytest.raises(Interrupt):
            env.run()
        assert not v.is_alive


def test_active_process_visible_during_execution(env):
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(0)

    p = env.process(proc(env))
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_many_concurrent_processes(env):
    results = []

    def proc(env, i):
        yield env.timeout(i % 7)
        results.append(i)

    for i in range(500):
        env.process(proc(env, i))
    env.run()
    assert sorted(results) == list(range(500))


def test_process_chain_same_timestep(env):
    """Processes can hand off repeatedly without advancing the clock."""

    def relay(env, depth):
        if depth == 0:
            return 0
        child = env.process(relay(env, depth - 1))
        value = yield child
        return value + 1

    assert env.run(until=env.process(relay(env, 50))) == 50
    assert env.now == 0.0
