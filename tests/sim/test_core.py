"""Unit tests for the simulation environment (clock, heap, run loop)."""

import pytest

from repro.sim import (
    EmptySchedule,
    Environment,
    Infinity,
    SimulationError,
)


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(initial_time=5.0).now == 5.0


def test_run_until_time_advances_clock():
    env = Environment()
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=3.0)
    with pytest.raises(ValueError):
        env.run(until=3.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_without_until_exhausts_queue():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [2.5]
    assert env.now == 2.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return "done"

    result = env.run(until=env.process(proc(env)))
    assert result == "done"


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed(42)
    env.run()  # processes ev
    assert env.run(until=ev) == 42


def test_run_until_event_never_triggered_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == Infinity
    env.timeout(4.0)
    env.timeout(2.0)
    assert env.peek() == 2.0


def test_events_at_same_time_fifo_ordered():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_clock_is_monotonic_across_many_events():
    env = Environment()
    stamps = []

    def proc(env, delay):
        yield env.timeout(delay)
        stamps.append(env.now)

    import random

    rng = random.Random(7)
    delays = [rng.uniform(0, 10) for _ in range(200)]
    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert stamps == sorted(stamps)
    assert len(stamps) == 200


def test_nested_process_start_during_run():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(1.0)
        log.append(("child", env.now))

    def parent(env):
        yield env.timeout(0.5)
        env.process(child(env))
        log.append(("parent", env.now))

    env.process(parent(env))
    env.run()
    assert log == [("parent", 0.5), ("child", 1.5)]


def test_cancel_removes_scheduled_timeout():
    env = Environment()
    keep = env.timeout(1.0)
    stale = env.timeout(100.0)
    assert env.cancel(stale) is True
    env.run()
    assert env.now == 1.0
    assert keep.processed
    assert not stale.processed


def test_cancel_unscheduled_or_processed_event_is_a_noop():
    env = Environment()
    assert env.cancel(env.event()) is False  # never scheduled
    done = env.timeout(1.0)
    env.run()
    assert env.cancel(done) is False  # already processed


def test_cancel_preserves_heap_order():
    env = Environment()
    stamps = []

    def proc(env, delay):
        yield env.timeout(delay)
        stamps.append(env.now)

    for delay in (5.0, 1.0, 3.0):
        env.process(proc(env, delay))
    victim = env.timeout(2.0)
    env.cancel(victim)
    env.run()
    assert stamps == [1.0, 3.0, 5.0]
