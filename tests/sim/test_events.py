"""Unit tests for events, timeouts, and conditions."""

import pytest

from repro.sim import Environment, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_value_unavailable_until_triggered(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed("payload")
        assert ev.triggered
        assert ev.ok
        assert ev.value == "payload"

    def test_double_succeed_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_propagates_to_waiter(self, env):
        ev = env.event()

        def proc(env, ev):
            with pytest.raises(RuntimeError, match="boom"):
                yield ev
            return "handled"

        p = env.process(proc(env, ev))
        ev.fail(RuntimeError("boom"))
        assert env.run(until=p) == "handled"

    def test_unhandled_failure_crashes_run(self, env):
        ev = env.event()
        ev.fail(RuntimeError("nobody catches me"))
        with pytest.raises(RuntimeError, match="nobody catches me"):
            env.run()

    def test_defused_failure_does_not_crash(self, env):
        ev = env.event()
        ev.fail(RuntimeError("defused"))
        ev.defused = True
        env.run()  # no exception

    def test_trigger_copies_state(self, env):
        a, b = env.event(), env.event()
        a.succeed(99)
        env.run()
        b.trigger(a)
        assert b.value == 99


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_value_passed_through(self, env):
        def proc(env):
            got = yield env.timeout(1.0, value="tick")
            return got

        assert env.run(until=env.process(proc(env))) == "tick"

    def test_zero_delay_fires_now(self, env):
        def proc(env):
            yield env.timeout(0)
            return env.now

        assert env.run(until=env.process(proc(env))) == 0.0


class TestConditions:
    def test_and_waits_for_both(self, env):
        def proc(env):
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(2, value="b")
            result = yield t1 & t2
            assert env.now == 2
            return result

        result = env.run(until=env.process(proc(env)))
        assert list(result.values()) == ["a", "b"]

    def test_or_returns_on_first(self, env):
        def proc(env):
            t1 = env.timeout(1, value="fast")
            t2 = env.timeout(5, value="slow")
            result = yield t1 | t2
            assert env.now == 1
            assert t1 in result
            assert t2 not in result
            return result[t1]

        assert env.run(until=env.process(proc(env))) == "fast"

    def test_all_of_empty_triggers_immediately(self, env):
        cond = env.all_of([])
        assert cond.triggered

    def test_all_of_many(self, env):
        def proc(env):
            events = [env.timeout(i, value=i) for i in range(5)]
            result = yield env.all_of(events)
            return sorted(result.values())

        assert env.run(until=env.process(proc(env))) == [0, 1, 2, 3, 4]

    def test_any_of_failure_propagates(self, env):
        def failer(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def proc(env):
            p = env.process(failer(env))
            with pytest.raises(ValueError, match="inner"):
                yield env.any_of([p, env.timeout(10)])
            return True

        assert env.run(until=env.process(proc(env))) is True

    def test_condition_value_mapping_interface(self, env):
        def proc(env):
            t1 = env.timeout(1, value="x")
            t2 = env.timeout(1, value="y")
            result = yield t1 & t2
            assert result[t1] == "x"
            assert result[t2] == "y"
            assert result == {t1: "x", t2: "y"}
            assert list(result.keys()) == [t1, t2]
            assert dict(result.items()) == {t1: "x", t2: "y"}
            with pytest.raises(KeyError):
                _ = result[env.event()]
            return len(result.todict())

        assert env.run(until=env.process(proc(env))) == 2

    def test_cross_environment_condition_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            env.all_of([env.timeout(1), other.timeout(1)])

    def test_nested_conditions_flatten_values(self, env):
        def proc(env):
            t1 = env.timeout(1, value=1)
            t2 = env.timeout(2, value=2)
            t3 = env.timeout(3, value=3)
            result = yield (t1 & t2) & t3
            return sorted(result.values())

        assert env.run(until=env.process(proc(env))) == [1, 2, 3]
