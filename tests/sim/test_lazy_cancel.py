"""Tests for lazy (tombstone) cancellation and the callback fast path.

``Environment.cancel`` marks events instead of rebuilding the heap;
these tests pin down the observable contract: cancelled events never
fire, cancellation of dead events is a no-op, tombstones do not disturb
the ordering of live events, and the heap stays bounded under
schedule/cancel churn.
"""

from repro.sim import Deferred, Environment, Infinity
from repro.sim.core import COMPACT_THRESHOLD


class TestLazyCancel:
    def test_cancelled_timeout_callbacks_never_run(self):
        env = Environment()
        fired = []
        victim = env.timeout(1.0)
        victim.callbacks.append(lambda ev: fired.append(env.now))
        env.timeout(2.0)  # keep the run alive past the victim's time
        assert env.cancel(victim) is True
        env.run()
        assert fired == []
        assert env.now == 2.0

    def test_cancel_is_one_shot(self):
        env = Environment()
        victim = env.timeout(1.0)
        assert env.cancel(victim) is True
        assert env.cancel(victim) is False  # already a tombstone

    def test_cancel_processed_event_returns_false(self):
        env = Environment()
        done = env.timeout(1.0)
        env.run()
        assert done.processed
        assert env.cancel(done) is False

    def test_cancel_pending_event_returns_false(self):
        env = Environment()
        assert env.cancel(env.event()) is False

    def test_tombstones_preserve_same_timestamp_ordering(self):
        env = Environment()
        order = []

        def note(tag):
            return lambda ev: order.append(tag)

        timeouts = {}
        for tag in "abcde":
            timeouts[tag] = env.timeout(1.0)
            timeouts[tag].callbacks.append(note(tag))
        env.cancel(timeouts["b"])
        env.cancel(timeouts["d"])
        env.run()
        # Live events at an equal timestamp still fire in creation
        # order; the interleaved tombstones are silently discarded.
        assert order == ["a", "c", "e"]

    def test_heap_bounded_under_schedule_cancel_churn(self):
        env = Environment()
        backlog = 50  # live far-future events pinning the heap
        for _ in range(backlog):
            env.timeout(1000.0)
        for _ in range(50 * COMPACT_THRESHOLD):
            env.cancel(env.timeout(500.0))
        # Compaction keeps the heap within a constant factor of the
        # live count instead of growing with the churn count.
        assert len(env._queue) <= 2 * (backlog + COMPACT_THRESHOLD + 1)
        env.run()
        assert env.now == 1000.0

    def test_peek_skips_tombstones(self):
        env = Environment()
        victim = env.timeout(1.0)
        env.timeout(2.0)
        env.cancel(victim)
        assert env.peek() == 2.0

    def test_peek_empty_after_all_cancelled(self):
        env = Environment()
        env.cancel(env.timeout(1.0))
        assert env.peek() == Infinity


class TestScheduleCallback:
    def test_fires_at_the_right_time(self):
        env = Environment()
        fired = []
        handle = env.schedule_callback(1.5, lambda ev: fired.append(env.now))
        assert isinstance(handle, Deferred)
        env.run()
        assert fired == [1.5]

    def test_orders_like_a_timeout(self):
        env = Environment()
        order = []
        first = env.timeout(1.0)
        first.callbacks.append(lambda ev: order.append("timeout-1"))
        env.schedule_callback(1.0, lambda ev: order.append("deferred"))
        second = env.timeout(1.0)
        second.callbacks.append(lambda ev: order.append("timeout-2"))
        env.run()
        # The deferred occupies the same scheduling slot a Timeout
        # created at that point would have.
        assert order == ["timeout-1", "deferred", "timeout-2"]

    def test_urgent_priority_sorts_first(self):
        env = Environment()
        order = []
        env.schedule_callback(1.0, lambda ev: order.append("normal"))
        from repro.sim.events import URGENT

        env.schedule_callback(1.0, lambda ev: order.append("urgent"), URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_handle_is_cancellable(self):
        env = Environment()
        fired = []
        handle = env.schedule_callback(1.0, lambda ev: fired.append(1))
        env.timeout(2.0)
        assert env.cancel(handle) is True
        env.run()
        assert fired == []
