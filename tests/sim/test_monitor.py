"""Unit tests for instrumentation helpers."""

import math

import pytest

from repro.sim import Counter, Monitor, Tally


class TestMonitor:
    def test_record_and_iterate(self):
        m = Monitor("q")
        m.record(0.0, 1)
        m.record(1.0, 2)
        assert list(m) == [(0.0, 1), (1.0, 2)]
        assert len(m) == 2

    def test_time_must_not_decrease(self):
        m = Monitor()
        m.record(5.0, 0)
        with pytest.raises(ValueError):
            m.record(4.0, 0)

    def test_mean(self):
        m = Monitor()
        for t, v in enumerate([2, 4, 6]):
            m.record(float(t), v)
        assert m.mean() == 4

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            Monitor().mean()

    def test_time_average_piecewise_constant(self):
        m = Monitor()
        m.record(0.0, 0)  # 0 for [0, 2)
        m.record(2.0, 10)  # 10 for [2, 4)
        assert m.time_average(until=4.0) == pytest.approx(5.0)

    def test_time_average_validations(self):
        m = Monitor()
        with pytest.raises(ValueError):
            m.time_average(1.0)
        m.record(2.0, 1)
        with pytest.raises(ValueError):
            m.time_average(1.0)


class TestCounter:
    def test_incr_and_lookup(self):
        c = Counter()
        c.incr("pkts")
        c.incr("pkts", 2)
        assert c["pkts"] == 3
        assert c["missing"] == 0

    def test_asdict_is_copy(self):
        c = Counter()
        c.incr("x")
        d = c.asdict()
        d["x"] = 99
        assert c["x"] == 1


class TestTally:
    def test_streaming_stats_match_batch(self):
        data = [1.0, 2.0, 3.0, 4.0, 100.0]
        t = Tally()
        for x in data:
            t.observe(x)
        mean = sum(data) / len(data)
        var = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
        assert t.n == 5
        assert t.mean == pytest.approx(mean)
        assert t.variance == pytest.approx(var)
        assert t.stdev == pytest.approx(math.sqrt(var))
        assert t.min == 1.0
        assert t.max == 100.0

    def test_empty_tally_raises_on_mean(self):
        with pytest.raises(ValueError):
            _ = Tally().mean

    def test_single_observation_zero_variance(self):
        t = Tally()
        t.observe(7.0)
        assert t.variance == 0.0
        assert t.stdev == 0.0
