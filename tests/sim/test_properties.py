"""Property-based tests of the simulation kernel (hypothesis)."""

import heapq

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, PriorityItem, PriorityStore, Store


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=60))
def test_timeouts_fire_in_sorted_order(delays):
    """Regardless of creation order, events fire in time order."""
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(delay)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(delays)
    assert env.now == max(delays)


@given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
def test_store_is_fifo_for_any_put_sequence(items):
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            got.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == items


@given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 1000)),
                min_size=1, max_size=50))
def test_priority_store_is_a_stable_heap(pairs):
    """PriorityStore pops items in (priority, insertion) order."""
    env = Environment()
    store = PriorityStore(env)
    got = []

    def runner(env):
        # Load everything first so interleaving cannot reorder puts
        # and gets; the property is about the queue discipline.
        for priority, value in pairs:
            yield store.put(PriorityItem(priority, value))
        for _ in pairs:
            item = yield store.get()
            got.append((item.priority, item.item))

    env.process(runner(env))
    env.run()

    expected = [
        (priority, value)
        for priority, _i, value in sorted(
            (priority, i, value)
            for i, (priority, value) in enumerate(pairs)
        )
    ]
    assert got == expected


@given(
    st.lists(st.floats(min_value=1e-9, max_value=10.0, allow_nan=False),
             min_size=2, max_size=20),
)
@settings(deadline=None)
def test_all_of_triggers_at_max_any_of_at_min(delays):
    env = Environment()
    events = [env.timeout(d) for d in delays]
    all_done = env.all_of(events)
    any_done = env.any_of(events[:])

    times = {}

    def watch(name, event):
        def record(_ev):
            times[name] = env.now

        event.callbacks.append(record)

    watch("all", all_done)
    watch("any", any_done)
    env.run()
    assert times["all"] == max(delays)
    assert times["any"] == min(delays)


@given(st.integers(1, 200), st.integers(0, 10_000))
def test_many_processes_share_one_clock(n, seed):
    """N independent busy loops never observe time running backwards."""
    import random

    rng = random.Random(seed)
    env = Environment()
    observations = []

    def busy(env, steps):
        for _ in range(steps):
            before = env.now
            yield env.timeout(rng.uniform(0, 1))
            observations.append(env.now - before)

    for _ in range(min(n, 40)):
        env.process(busy(env, rng.randint(1, 5)))
    env.run()
    assert all(delta >= 0 for delta in observations)
