"""Unit tests for stores and resources."""

import pytest

from repro.sim import (
    Environment,
    FilterStore,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
)


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_fifo_order(self, env):
        store = Store(env)
        got = []

        def producer(env, store):
            for i in range(5):
                yield store.put(i)

        def consumer(env, store):
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer(env, store):
            item = yield store.get()
            return (env.now, item)

        def producer(env, store):
            yield env.timeout(4)
            yield store.put("late")

        c = env.process(consumer(env, store))
        env.process(producer(env, store))
        assert env.run(until=c) == (4.0, "late")

    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer(env, store):
            yield env.timeout(3)
            item = yield store.get()
            log.append((f"got-{item}", env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert log == [("put-a", 0.0), ("got-a", 3.0), ("put-b", 3.0)]

    def test_len_tracks_items(self, env):
        store = Store(env)

        def proc(env, store):
            yield store.put(1)
            yield store.put(2)
            assert len(store) == 2
            yield store.get()
            assert len(store) == 1

        env.process(proc(env, store))
        env.run()


class TestPriorityStore:
    def test_lowest_priority_first(self, env):
        store = PriorityStore(env)
        got = []

        def proc(env, store):
            yield store.put(PriorityItem(3, "low"))
            yield store.put(PriorityItem(1, "high"))
            yield store.put(PriorityItem(2, "mid"))
            for _ in range(3):
                item = yield store.get()
                got.append(item.item)

        env.process(proc(env, store))
        env.run()
        assert got == ["high", "mid", "low"]

    def test_equal_priority_is_fifo(self, env):
        store = PriorityStore(env)
        got = []

        def proc(env, store):
            for name in "abc":
                yield store.put(PriorityItem(5, name))
            for _ in range(3):
                item = yield store.get()
                got.append(item.item)

        env.process(proc(env, store))
        env.run()
        assert got == ["a", "b", "c"]


class TestFilterStore:
    def test_filter_selects_matching_item(self, env):
        store = FilterStore(env)
        got = []

        def proc(env, store):
            for i in range(5):
                yield store.put(i)
            item = yield store.get(lambda x: x % 2 == 1)
            got.append(item)
            item = yield store.get(lambda x: x > 3)
            got.append(item)

        env.process(proc(env, store))
        env.run()
        assert got == [1, 4]

    def test_blocked_filter_does_not_block_others(self, env):
        store = FilterStore(env)
        got = []

        def blocked(env, store):
            item = yield store.get(lambda x: x == "never")
            got.append(item)

        def lucky(env, store):
            item = yield store.get(lambda x: x == "yes")
            got.append((item, env.now))

        def producer(env, store):
            yield env.timeout(1)
            yield store.put("yes")

        env.process(blocked(env, store))
        env.process(lucky(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [("yes", 1.0)]

    def test_get_cancel(self, env):
        store = FilterStore(env)

        def proc(env, store):
            req = store.get(lambda x: True)
            req.cancel()
            yield store.put("item")
            assert not req.triggered
            assert store.items == ["item"]

        env.process(proc(env, store))
        env.run()


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_mutual_exclusion(self, env):
        res = Resource(env, capacity=1)
        log = []

        def user(env, res, name, hold):
            with res.request() as req:
                yield req
                log.append((name, "in", env.now))
                yield env.timeout(hold)
                log.append((name, "out", env.now))

        env.process(user(env, res, "a", 2))
        env.process(user(env, res, "b", 1))
        env.run()
        assert log == [
            ("a", "in", 0.0),
            ("a", "out", 2.0),
            ("b", "in", 2.0),
            ("b", "out", 3.0),
        ]

    def test_capacity_two_admits_two(self, env):
        res = Resource(env, capacity=2)
        admitted = []

        def user(env, res, name):
            with res.request() as req:
                yield req
                admitted.append((name, env.now))
                yield env.timeout(1)

        for name in "abc":
            env.process(user(env, res, name))
        env.run()
        assert admitted == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_release_is_idempotent(self, env):
        res = Resource(env)

        def proc(env, res):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)
            assert res.count == 0

        env.process(proc(env, res))
        env.run()

    def test_queued_request_can_be_withdrawn(self, env):
        res = Resource(env, capacity=1)
        got_it = []

        def holder(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def impatient(env, res):
            req = res.request()
            yield env.timeout(1)
            res.release(req)  # give up while still queued

        def patient(env, res):
            yield env.timeout(0.5)
            with res.request() as req:
                yield req
                got_it.append(env.now)

        env.process(holder(env, res))
        env.process(impatient(env, res))
        env.process(patient(env, res))
        env.run()
        assert got_it == [5.0]
