"""Stateful (model-based) tests of the kernel's Store semantics."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.sim import Environment, Store


class StoreModel(RuleBasedStateMachine):
    """Drive a Store against a plain-list reference model.

    Puts and gets execute inside one simulation process so the FIFO
    contract is exercised without interleaving ambiguity; the model is
    simply a Python list.
    """

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.store = Store(self.env)
        self.model = []
        self.counter = 0

    def _run(self, generator):
        process = self.env.process(generator)
        self.env.run()
        return process.value

    @rule()
    def put(self):
        self.counter += 1
        item = self.counter

        def do(env=self.env):
            yield self.store.put(item)

        self._run(do())
        self.model.append(item)

    @precondition(lambda self: self.model)
    @rule()
    def get(self):
        def do(env=self.env):
            value = yield self.store.get()
            return value

        got = self._run(do())
        expected = self.model.pop(0)
        assert got == expected, (got, expected)

    @rule(n=st.integers(1, 5))
    def put_many_then_get_some(self, n):
        items = []
        for _ in range(n):
            self.counter += 1
            items.append(self.counter)

        def do(env=self.env):
            for item in items:
                yield self.store.put(item)

        self._run(do())
        self.model.extend(items)

    @invariant()
    def store_matches_model(self):
        assert list(self.store.items) == self.model


TestStoreModel = StoreModel.TestCase
TestStoreModel.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
