"""Integration tests for the per-device management entity."""

import pytest

from repro.capability import (
    BASELINE_CAP_ID,
    EVENT_ROUTE_CAP_ID,
    GENERAL_INFO_DWORDS,
    decode_general_info,
)
from repro.fabric import Fabric
from repro.protocols import ManagementEntity, pi4, pi5
from repro.routing.turnpool import Hop, build_turn_pool
from repro.sim import Environment


class Recorder:
    """Minimal manager stub: records delivered packets."""

    def __init__(self, cost=0.0):
        self.cost = cost
        self.packets = []
        self.local_events = []

    def packet_cost(self, packet):
        return self.cost

    def note_packet_arrival(self, packet):
        pass

    def handle_management_packet(self, packet, port):
        self.packets.append(packet)

    def handle_local_event(self, event):
        self.local_events.append(event)


@pytest.fixture
def rig():
    """ep -- sw, with management entities everywhere."""
    env = Environment()
    fabric = Fabric(env)
    fabric.add_endpoint("ep")
    fabric.add_switch("sw")
    fabric.connect("ep", 0, "sw", 3)
    entities = {
        name: ManagementEntity(dev) for name, dev in fabric.devices.items()
    }
    fabric.power_up()
    return env, fabric, entities


def test_read_request_gets_completion_with_data(rig):
    env, fabric, entities = rig
    manager = Recorder()
    entities["ep"].manager = manager

    pool = build_turn_pool([])  # not used: direct neighbour via 1 hop
    # Route ep -> sw: zero switch hops are needed to *reach* sw?  No:
    # the packet must terminate at sw, entering at sw port 3 with an
    # exhausted pool.
    req = pi4.ReadRequest(cap_id=BASELINE_CAP_ID, offset=0, tag=11,
                          count=GENERAL_INFO_DWORDS)
    entities["ep"].send_pi4(req, turn_pool=0, turn_pointer=0, out_port=0)
    env.run()

    assert len(manager.packets) == 1
    completion = pi4.decode(manager.packets[0].payload)
    assert isinstance(completion, pi4.ReadCompletion)
    assert completion.tag == 11
    info = decode_general_info(list(completion.data))
    assert info["dsn"] == fabric.device("sw").dsn
    assert info["nports"] == 16


def test_bad_read_gets_error_completion(rig):
    env, fabric, entities = rig
    manager = Recorder()
    entities["ep"].manager = manager
    req = pi4.ReadRequest(cap_id=0x7F, offset=0, tag=5)
    entities["ep"].send_pi4(req, turn_pool=0, turn_pointer=0)
    env.run()
    completion = pi4.decode(manager.packets[0].payload)
    assert isinstance(completion, pi4.ReadError)
    assert completion.tag == 5


def test_write_request_modifies_capability(rig):
    env, fabric, entities = rig
    manager = Recorder()
    entities["ep"].manager = manager
    values = tuple(
        __import__("repro.capability.event_route", fromlist=["EventRouteCapability"])
        .EventRouteCapability.encode(0xBEEF, 12, 3)
    )
    req = pi4.WriteRequest(cap_id=EVENT_ROUTE_CAP_ID, offset=0, tag=9,
                           data=values)
    entities["ep"].send_pi4(req, turn_pool=0, turn_pointer=0)
    env.run()
    completion = pi4.decode(manager.packets[0].payload)
    assert isinstance(completion, pi4.WriteCompletion)
    assert completion.status == pi4.STATUS_OK
    cap = fabric.device("sw").config_space.capability(EVENT_ROUTE_CAP_ID)
    assert cap.get_route() == (0xBEEF, 12, 3)


def test_local_loopback_read(rig):
    """A zero-length route reads the FM's own endpoint locally."""
    env, fabric, entities = rig
    manager = Recorder()
    entities["ep"].manager = manager
    req = pi4.ReadRequest(cap_id=BASELINE_CAP_ID, offset=0, tag=1,
                          count=GENERAL_INFO_DWORDS)
    # out_port=None: loopback to the local device.
    packet = entities["ep"].send_pi4(req, turn_pool=0, turn_pointer=0,
                                     out_port=None)
    # The loopback must not have touched the wire.
    env.run()
    info = decode_general_info(
        list(pi4.decode(manager.packets[0].payload).data)
    )
    assert info["dsn"] == fabric.device("ep").dsn


def test_device_processing_time_is_charged(rig):
    env, fabric, entities = rig
    manager = Recorder()
    entities["ep"].manager = manager
    t_device = entities["sw"].device_time
    req = pi4.ReadRequest(cap_id=BASELINE_CAP_ID, offset=0, tag=1)
    entities["ep"].send_pi4(req, turn_pool=0, turn_pointer=0)
    env.run()
    # Round trip must cost at least the device processing time.
    assert env.now >= t_device


def test_processing_factor_speeds_up_device():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_endpoint("ep")
    dev = fabric.devices["ep"]
    fast = ManagementEntity(dev, processing_time=4e-6, processing_factor=4)
    assert fast.device_time == pytest.approx(1e-6)
    with pytest.raises(ValueError):
        ManagementEntity(dev, processing_factor=0)


def test_pi5_emitted_along_programmed_event_route(rig):
    env, fabric, entities = rig
    manager = Recorder()
    entities["ep"].manager = manager

    # Program sw's event route: one backward-ish forward route sw->ep
    # (single hop through... sw itself is the reporter, so the route is
    # from sw out of port 3 with zero further turns).
    cap = fabric.device("sw").config_space.capability(EVENT_ROUTE_CAP_ID)
    cap.set_route(turn_pool=0, turn_pointer=0, out_port=3)

    # Cause a port-state change at sw by failing an unrelated link:
    # first wire a second endpoint to sw.
    fabric.add_endpoint("ep2")
    ManagementEntity(fabric.device("ep2"))
    fabric.connect("ep2", 0, "sw", 5)
    fabric.power_up()
    env.run()
    manager.packets.clear()

    fabric.fail_link("ep2", "sw")
    env.run()

    events = [pi5.decode(p.payload) for p in manager.packets
              if p.header.pi == 5]
    assert len(events) == 1
    assert events[0].reporter_dsn == fabric.device("sw").dsn
    assert events[0].port == 5
    assert events[0].up is False


def test_pi5_without_route_is_counted_not_sent(rig):
    env, fabric, entities = rig
    fabric.add_endpoint("ep2")
    ManagementEntity(fabric.device("ep2"))
    fabric.connect("ep2", 0, "sw", 5)
    fabric.power_up()
    env.run()
    fabric.fail_link("ep2", "sw")
    env.run()
    assert entities["sw"].stats["events_unroutable"] >= 1


def test_fm_endpoint_sees_its_own_port_events(rig):
    env, fabric, entities = rig
    manager = Recorder()
    entities["ep"].manager = manager
    fabric.fail_link("ep", "sw")
    env.run()
    assert len(manager.local_events) == 1
    assert manager.local_events[0].up is False


def test_multicast_flood_reaches_neighbor(rig):
    env, fabric, entities = rig
    got = []
    entities["sw"].flood_handler = lambda packet, port: got.append(
        (packet.payload, port.index if port else None)
    )
    entities["ep"].send_multicast(b"HELLO")
    env.run()
    assert got == [(b"HELLO", 3)]


def test_manager_cost_serializes_completions(rig):
    """FM processing time is charged per completion, serially."""
    env, fabric, entities = rig
    manager = Recorder(cost=10e-6)
    entities["ep"].manager = manager

    for tag in range(3):
        req = pi4.ReadRequest(cap_id=BASELINE_CAP_ID, offset=0, tag=tag)
        entities["ep"].send_pi4(req, turn_pool=0, turn_pointer=0)
    env.run()
    assert len(manager.packets) == 3
    # Three completions at 10 us each must take at least 30 us.
    assert env.now >= 30e-6


class TestEntityEdgeCases:
    def test_undecodable_pi4_payload_counted(self, rig):
        """Garbage PI-4 payloads are counted, not crashed on."""
        env, fabric, entities = rig
        from repro.fabric.packet import Packet, make_management_header

        header = make_management_header(0, 0, pi=4)
        fabric.device("ep").inject(Packet(header=header, payload=b"\x01"))
        env.run()
        assert entities["sw"].stats["pi4_decode_errors"] == 1

    def test_unknown_pi_counted(self, rig):
        env, fabric, entities = rig
        from repro.fabric.header import RouteHeader
        from repro.fabric.packet import Packet

        header = RouteHeader(pi=0x77, tc=7, ts=1, turn_pointer=0)
        fabric.device("ep").inject(Packet(header=header, payload=b"?"))
        env.run()
        assert entities["sw"].stats["unknown_pi"] == 1

    def test_completion_without_manager_counted(self, rig):
        env, fabric, entities = rig
        from repro.fabric.packet import Packet, make_management_header

        # A completion arriving at a device with no attached manager.
        header = make_management_header(0, 0, pi=4)
        payload = pi4.ReadCompletion(cap_id=0, offset=0, tag=1,
                                     data=(1,)).pack()
        fabric.device("ep").inject(Packet(header=header, payload=payload))
        env.run()
        assert entities["sw"].stats["unexpected_completions"] == 1

    def test_multicast_exclude_port(self, rig):
        env, fabric, entities = rig
        # The switch has one up port (3, to ep); excluding it sends 0.
        sent = entities["sw"].send_multicast(b"x", exclude_port=3)
        assert sent == 0
        sent = entities["sw"].send_multicast(b"x")
        assert sent == 1

    def test_app_packets_cost_nothing(self, rig):
        env, fabric, entities = rig
        from repro.fabric.header import RouteHeader
        from repro.fabric.packet import PI_APPLICATION, Packet

        got = []
        entities["sw"].app_handler = lambda packet, port: got.append(
            env.now
        )
        header = RouteHeader(pi=PI_APPLICATION, tc=0, turn_pointer=0)
        t0 = env.now
        fabric.device("ep").inject(Packet(header=header, payload=b"data"))
        env.run()
        assert len(got) == 1
        # Delivered after wire time only — far below the 2.5 us the
        # entity charges for management packets.
        assert got[0] - t0 < 1e-6
        assert entities["sw"].stats["app_packets"] == 1
