"""Tests for the retrying PI-4 transaction engine and its policy."""

import pytest

from repro.fabric import Fabric
from repro.sim.monitor import Counter
from repro.manager.timing import PARALLEL, ProcessingTimeModel
from repro.protocols import (
    ManagementEntity,
    TimeoutPolicy,
    TransactionEngine,
    pi4,
)
from repro.protocols.transaction import DEFAULT_TIMEOUT
from repro.fabric.params import DEFAULT_PARAMS
from repro.routing.turnpool import Hop, build_turn_pool
from repro.sim import Environment


class StubEntity:
    """Records transmissions; nothing ever completes."""

    def __init__(self):
        self.sent = []

    def send_pi4(self, message, turn_pool, turn_pointer, out_port=None):
        self.sent.append(message)
        return object()


def make_engine(env, **kwargs):
    entity = StubEntity()
    counters = Counter()
    engine = TransactionEngine(env, entity, counters, **kwargs)
    return engine, entity, counters


def request(tag=0):
    return pi4.ReadRequest(cap_id=0, offset=0, tag=tag, count=1)


class TestTagAllocation:
    def test_tags_are_unique_and_retagged_onto_messages(self):
        env = Environment()
        engine, entity, _ = make_engine(env)
        pool = build_turn_pool([])
        results = []
        t1 = engine.open(request(), pool, 0, lambda c, ctx: results.append(c))
        t2 = engine.open(request(), pool, 0, lambda c, ctx: results.append(c))
        assert t1 != t2
        assert [m.tag for m in entity.sent] == [t1, t2]

    def test_salted_engines_use_disjoint_tag_spaces(self):
        env = Environment()
        a, _, _ = make_engine(env, tag_salt=1)
        b, _, _ = make_engine(env, tag_salt=2)
        pool = build_turn_pool([])
        tags_a = {a.open(request(), pool, 0, lambda c, x: None)
                  for _ in range(50)}
        tags_b = {b.open(request(), pool, 0, lambda c, x: None)
                  for _ in range(50)}
        assert not tags_a & tags_b


class TestRetryBehaviour:
    def test_retries_then_gives_up_with_none(self):
        env = Environment()
        engine, entity, counters = make_engine(env, max_retries=3)
        results = []
        engine.open(request(), build_turn_pool([]), 0,
                    lambda c, ctx: results.append((c, ctx)), ctx="x")
        env.run()
        assert results == [(None, "x")]
        assert len(entity.sent) == 4  # original + 3 retries
        assert counters["requests_sent"] == 4
        assert counters["retries"] == 3
        assert counters["timeouts"] == 1
        assert not engine.pending

    def test_explicit_timeout_keeps_fixed_cadence(self):
        env = Environment()
        engine, entity, _ = make_engine(env, max_retries=2)
        times = []
        engine.on_transmit = lambda entry, pkt: times.append(env.now)
        engine.open(request(), build_turn_pool([]), 0,
                    lambda c, ctx: None, timeout=1e-4)
        env.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps == pytest.approx([1e-4, 1e-4])

    def test_default_requests_back_off_exponentially(self):
        env = Environment()
        engine, entity, _ = make_engine(env, max_retries=2, backoff=2.0)
        times = []
        engine.on_transmit = lambda entry, pkt: times.append(env.now)
        engine.open(request(), build_turn_pool([]), 0, lambda c, ctx: None)
        env.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert len(gaps) == 2
        assert gaps[1] == pytest.approx(2.0 * gaps[0])

    def test_arrival_suppresses_pending_timeout(self):
        env = Environment()
        engine, entity, counters = make_engine(env, max_retries=3)
        tag = engine.open(request(), build_turn_pool([]), 0,
                          lambda c, ctx: None)
        engine.note_arrival(tag)
        env.run()
        # The completion is queued at the requester: no retries fire and
        # the transaction stays open for complete() to claim.
        assert counters["retries"] == 0
        assert tag in engine.pending

    def test_complete_matches_and_flags_stale(self):
        env = Environment()
        engine, entity, counters = make_engine(env)
        tag = engine.open(request(), build_turn_pool([]), 0,
                          lambda c, ctx: None)
        completion = pi4.ReadCompletion(cap_id=0, offset=0, tag=tag,
                                        data=(1,))
        entry = engine.complete(completion)
        assert entry is not None and entry.tag == tag
        assert counters["completions_received"] == 1
        # A duplicate delivery of the same completion is stale.
        assert engine.complete(completion) is None
        assert counters["stale_completions"] == 1

    def test_cancel_all_silences_timers(self):
        env = Environment()
        engine, entity, counters = make_engine(env, max_retries=3)
        results = []
        engine.open(request(), build_turn_pool([]), 0,
                    lambda c, ctx: results.append(c))
        engine.cancel_all()
        env.run()
        assert results == []
        assert counters["retries"] == 0


class TestTimeoutPolicy:
    def _policy(self, floor=DEFAULT_TIMEOUT):
        return TimeoutPolicy(DEFAULT_PARAMS, ProcessingTimeModel(),
                             PARALLEL, floor=floor)

    def test_floor_dominates_for_short_routes(self):
        policy = self._policy()
        assert policy.timeout_for(build_turn_pool([])) == DEFAULT_TIMEOUT

    def test_derived_timeout_grows_with_route_length(self):
        policy = self._policy(floor=0.0)
        short = policy.timeout_for(build_turn_pool([Hop(16, 0, 1)]))
        long = policy.timeout_for(
            build_turn_pool([Hop(16, 0, 1)] * 6)
        )
        assert long > short > 0.0

    def test_policy_never_lowers_below_floor(self):
        policy = self._policy(floor=10.0)
        assert policy.timeout_for(
            build_turn_pool([Hop(16, 0, 1)] * 6), known_devices=100
        ) == 10.0

    def test_route_hops_decodes_pool_length(self):
        policy = self._policy()
        assert policy.route_hops(build_turn_pool([])) == 0
        assert policy.route_hops(build_turn_pool([Hop(16, 0, 1)] * 3)) == 3


@pytest.fixture
def rig():
    """ep -- sw with management entities, mirroring test_entity.py."""
    env = Environment()
    fabric = Fabric(env)
    fabric.add_endpoint("ep")
    fabric.add_switch("sw")
    fabric.connect("ep", 0, "sw", 3)
    entities = {
        name: ManagementEntity(dev) for name, dev in fabric.devices.items()
    }
    fabric.power_up()
    return env, fabric, entities


class Recorder:
    def __init__(self):
        self.packets = []

    def packet_cost(self, packet):
        return 0.0

    def note_packet_arrival(self, packet):
        pass

    def handle_management_packet(self, packet, port):
        self.packets.append(packet)

    def handle_local_event(self, event):
        pass


class TestResponderDuplicateSuppression:
    def test_duplicate_request_served_from_cache(self, rig):
        env, fabric, entities = rig
        manager = Recorder()
        entities["ep"].manager = manager
        req = pi4.ReadRequest(cap_id=0, offset=0, tag=77, count=1)
        entities["ep"].send_pi4(req, turn_pool=0, turn_pointer=0)
        env.run()
        entities["ep"].send_pi4(req, turn_pool=0, turn_pointer=0)
        env.run()
        # Both transmissions got a completion, the second from cache.
        assert len(manager.packets) == 2
        assert entities["sw"].stats["duplicate_requests"] == 1

    def test_duplicate_write_is_not_reexecuted(self, rig):
        from repro.capability import EVENT_ROUTE_CAP_ID
        from repro.capability.event_route import EventRouteCapability

        env, fabric, entities = rig
        manager = Recorder()
        entities["ep"].manager = manager
        values = tuple(EventRouteCapability.encode(0xBEEF, 12, 3))
        req = pi4.WriteRequest(cap_id=EVENT_ROUTE_CAP_ID, offset=0,
                               tag=31, data=values)
        entities["ep"].send_pi4(req, turn_pool=0, turn_pointer=0)
        env.run()
        cap = fabric.device("sw").config_space.capability(EVENT_ROUTE_CAP_ID)
        assert cap.get_route() == (0xBEEF, 12, 3)

        # The device's state moves on; a replayed copy of the same
        # request (same tag) must NOT clobber it.
        cap.set_route(0xCAFE, 7, 1)
        entities["ep"].send_pi4(req, turn_pool=0, turn_pointer=0)
        env.run()
        assert cap.get_route() == (0xCAFE, 7, 1)
        assert entities["sw"].stats["duplicate_requests"] == 1
        # The requester still receives a (cached) completion.
        assert len(manager.packets) == 2


class TestPi4DecodeError:
    def test_short_payload_raises_typed_error(self):
        with pytest.raises(pi4.Pi4DecodeError):
            pi4.decode(b"\x01")

    def test_unknown_message_type_raises_typed_error(self):
        req = pi4.ReadRequest(cap_id=0, offset=0, tag=1).pack()
        garbled = bytes([0xEE]) + req[1:]
        with pytest.raises(pi4.Pi4DecodeError):
            pi4.decode(garbled)

    def test_decode_error_is_a_pi4_error(self):
        assert issubclass(pi4.Pi4DecodeError, pi4.Pi4Error)
