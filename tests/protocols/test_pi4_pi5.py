"""Unit tests for PI-4 / PI-5 message encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols import pi4, pi5


class TestPi4Encoding:
    def test_read_request_roundtrip(self):
        msg = pi4.ReadRequest(cap_id=0, offset=6, tag=42, count=2)
        decoded = pi4.decode(msg.pack())
        assert decoded == msg

    def test_read_completion_roundtrip(self):
        msg = pi4.ReadCompletion(
            cap_id=0, offset=0, tag=7, data=(1, 2, 0xFFFFFFFF)
        )
        decoded = pi4.decode(msg.pack())
        assert decoded == msg
        assert decoded.data == (1, 2, 0xFFFFFFFF)

    def test_read_error_roundtrip(self):
        msg = pi4.ReadError(cap_id=5, offset=9, tag=1,
                            status=pi4.STATUS_BAD_RANGE)
        assert pi4.decode(msg.pack()) == msg

    def test_write_roundtrip(self):
        msg = pi4.WriteRequest(cap_id=5, offset=0, tag=3, data=(0xAB, 0xCD))
        assert pi4.decode(msg.pack()) == msg
        done = pi4.WriteCompletion(cap_id=5, offset=0, tag=3)
        assert pi4.decode(done.pack()) == done

    def test_count_bounds(self):
        with pytest.raises(pi4.Pi4Error):
            pi4.ReadRequest(cap_id=0, offset=0, tag=0, count=0)
        with pytest.raises(pi4.Pi4Error):
            pi4.ReadRequest(cap_id=0, offset=0, tag=0, count=9)
        with pytest.raises(pi4.Pi4Error):
            pi4.WriteRequest(cap_id=0, offset=0, tag=0, data=())

    def test_decode_rejects_short_payload(self):
        with pytest.raises(pi4.Pi4Error):
            pi4.decode(b"\x01\x01")

    def test_decode_rejects_truncated_data(self):
        msg = pi4.ReadCompletion(cap_id=0, offset=0, tag=0, data=(1, 2))
        with pytest.raises(pi4.Pi4Error, match="truncated"):
            pi4.decode(msg.pack()[:-4])

    def test_decode_rejects_unknown_type(self):
        raw = bytearray(pi4.ReadRequest(cap_id=0, offset=0, tag=0).pack())
        raw[0] = 0x7F
        with pytest.raises(pi4.Pi4Error, match="unknown"):
            pi4.decode(bytes(raw))

    def test_request_completion_classification(self):
        req = pi4.ReadRequest(cap_id=0, offset=0, tag=0)
        comp = pi4.ReadCompletion(cap_id=0, offset=0, tag=0)
        err = pi4.ReadError(cap_id=0, offset=0, tag=0)
        wreq = pi4.WriteRequest(cap_id=0, offset=0, tag=0, data=(1,))
        wcomp = pi4.WriteCompletion(cap_id=0, offset=0, tag=0)
        assert [pi4.is_request(m) for m in (req, comp, err, wreq, wcomp)] == [
            True, False, False, True, False,
        ]
        assert [pi4.is_completion(m) for m in (req, comp, err, wreq, wcomp)] == [
            False, True, True, False, True,
        ]

    @given(
        cap_id=st.integers(0, 255),
        offset=st.integers(0, 0xFFFFFFFF),
        tag=st.integers(0, 0xFFFFFFFF),
        data=st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=8),
    )
    def test_completion_roundtrip_property(self, cap_id, offset, tag, data):
        msg = pi4.ReadCompletion(
            cap_id=cap_id, offset=offset, tag=tag, data=tuple(data)
        )
        assert pi4.decode(msg.pack()) == msg


class TestPi5Encoding:
    def test_roundtrip(self):
        event = pi5.PortEvent(
            reporter_dsn=0x1234_5678_9ABC, port=7, up=False, seq=99
        )
        decoded = pi5.decode(event.pack())
        assert decoded == event

    def test_up_event(self):
        event = pi5.PortEvent(reporter_dsn=1, port=0, up=True, seq=1)
        assert pi5.decode(event.pack()).up is True

    def test_short_payload_rejected(self):
        with pytest.raises(pi5.Pi5Error):
            pi5.decode(b"\x01\x02")

    def test_unknown_event_code_rejected(self):
        raw = bytearray(
            pi5.PortEvent(reporter_dsn=1, port=0, up=True, seq=1).pack()
        )
        raw[0] = 0x7E
        with pytest.raises(pi5.Pi5Error, match="unknown"):
            pi5.decode(bytes(raw))

    @given(
        dsn=st.integers(0, (1 << 64) - 1),
        port=st.integers(0, 255),
        up=st.booleans(),
        seq=st.integers(0, 0xFFFFFFFF),
    )
    def test_roundtrip_property(self, dsn, port, up, seq):
        event = pi5.PortEvent(reporter_dsn=dsn, port=port, up=up, seq=seq)
        assert pi5.decode(event.pack()) == event
