"""Tests: the analytical model against the simulator."""

import pytest

from repro.analysis.model import PipelineModel, expected_packets
from repro.experiments.runner import build_simulation, run_until_ready
from repro.manager import (
    PARALLEL,
    SERIAL_DEVICE,
    SERIAL_PACKET,
    ProcessingTimeModel,
)
from repro.topology import make_fattree, make_mesh, make_torus


def simulate(spec, algorithm, timing=None):
    setup = build_simulation(spec, algorithm=algorithm, timing=timing,
                             auto_start=False)
    setup.fm.start_discovery()
    return run_until_ready(setup)


class TestExpectedPackets:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: make_mesh(3, 3),
            lambda: make_torus(3, 3),
            lambda: make_mesh(4, 4),
            lambda: make_fattree(4, 3),
            lambda: make_fattree(8, 2),
        ],
        ids=["mesh3", "torus3", "mesh4", "tree43", "tree82"],
    )
    def test_matches_simulation_exactly(self, builder):
        spec = builder()
        stats = simulate(spec, PARALLEL)
        assert stats.requests_sent == expected_packets(spec)


class TestPipelineModel:
    def test_periods_ordering(self):
        model = PipelineModel(t_fm=15e-6, t_device=2.5e-6, t_prop=0.5e-6)
        assert model.serial_period > model.parallel_period
        assert model.serial_period == pytest.approx(
            15e-6 + 2 * 0.5e-6 + 2.5e-6
        )

    def test_predicts_serial_packet_within_10_percent(self):
        spec = make_mesh(3, 3)
        timing = ProcessingTimeModel()
        stats = simulate(spec, SERIAL_PACKET, timing)
        model = PipelineModel.from_parameters(
            timing, SERIAL_PACKET,
            known_devices=spec.total_devices // 2,
        )
        predicted = model.predict(SERIAL_PACKET, stats.requests_sent)
        assert predicted == pytest.approx(stats.discovery_time, rel=0.10)

    def test_predicts_parallel_within_10_percent(self):
        spec = make_mesh(3, 3)
        timing = ProcessingTimeModel()
        stats = simulate(spec, PARALLEL, timing)
        model = PipelineModel.from_parameters(
            timing, PARALLEL, known_devices=spec.total_devices // 2,
        )
        predicted = model.predict(PARALLEL, stats.requests_sent)
        assert predicted == pytest.approx(stats.discovery_time, rel=0.10)

    def test_serial_device_between_the_other_two(self):
        timing = ProcessingTimeModel()
        n = 200
        base = PipelineModel.from_parameters(timing, SERIAL_PACKET)
        fast = PipelineModel.from_parameters(timing, PARALLEL)
        mid = PipelineModel.from_parameters(timing, SERIAL_DEVICE)
        assert fast.predict(PARALLEL, n) \
            < mid.predict(SERIAL_DEVICE, n) \
            < base.predict(SERIAL_PACKET, n)

    def test_device_speed_knee_positive_with_outstanding(self):
        model = PipelineModel(t_fm=13e-6, t_device=2.5e-6, t_prop=0.5e-6)
        knee = model.device_speed_knee(outstanding=16)
        # Devices can be ~75x slower before Parallel notices.
        assert knee > 20 * model.t_device
        assert model.device_speed_knee(outstanding=1) == 0.0

    def test_unknown_algorithm_rejected(self):
        model = PipelineModel(t_fm=1e-6, t_device=1e-6, t_prop=1e-6)
        with pytest.raises(ValueError):
            model.predict("bogus", 10)
