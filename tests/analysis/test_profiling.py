"""Tests for the Fig. 4 profiling methodology."""

import pytest

from repro.analysis.profiling import (
    profile_all_algorithms,
    profile_fm_processing,
)
from repro.manager import PARALLEL
from repro.topology import make_mesh


class TestProfiling:
    def test_profile_single_algorithm(self):
        result = profile_fm_processing(make_mesh(2, 2), PARALLEL)
        assert result.algorithm == PARALLEL
        assert result.samples > 50  # one sample per completion
        assert 0 < result.mean_seconds < 1e-3  # microsecond-scale handler
        assert result.max_seconds >= result.mean_seconds
        d = result.asdict()
        assert d["mean_us"] > 0

    def test_profile_all_algorithms_covers_everything(self):
        results = profile_all_algorithms(make_mesh(2, 2))
        assert set(results) == {"serial_packet", "serial_device", "parallel"}
        samples = {r.samples for r in results.values()}
        assert len(samples) == 1  # identical work across algorithms
