"""Tier-1 scale acceptance: a ~1k-device Dragonfly discovers fully.

Pins the mega-scale contract at a size tier-1 can afford: the
992-device ``dragonfly-k8m62`` builds, completes a full parallel
discovery, and does so within a pinned kernel-event budget — so event
blow-ups (accidental per-port work, retry storms, route churn) fail
the suite instead of only showing up in the scale bench.
"""

from repro.experiments.runner import build_simulation, run_until_ready
from repro.topology import resolve_topology

#: Kernel events scheduled for the whole run (measured 847,323 on the
#: tree that introduced the generators; headroom for small refactors,
#: tight enough to catch a per-device or per-port regression).
EVENT_BUDGET = 950_000


class TestThousandDeviceDragonfly:
    def test_discovery_completes_within_event_budget(self):
        spec = resolve_topology("dragonfly-k8m62")
        setup = build_simulation(spec, algorithm="parallel")
        devices = len(setup.fabric.devices)
        assert devices == 992
        stats = run_until_ready(setup)
        assert stats.devices_found == devices
        events = next(setup.env._eid)
        assert events <= EVENT_BUDGET, (
            f"discovery of {devices} devices scheduled {events:,} events "
            f"(budget {EVENT_BUDGET:,})"
        )
