"""Tests for ASCII report rendering."""

import pytest

from repro.experiments.report import (
    format_value,
    render_kv,
    render_series,
    render_table,
)


class TestFormatValue:
    def test_booleans(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_microseconds(self):
        assert format_value(15e-6) == "15.00u"

    def test_milliseconds(self):
        assert format_value(2.5e-3) == "2.500m"

    def test_plain_numbers(self):
        assert format_value(42) == "42"
        assert format_value(3.25) == "3.25"
        assert format_value(0.0) == "0"

    def test_strings_passthrough(self):
        assert format_value("8x8 mesh") == "8x8 mesh"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "n"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        widths = {len(line) for line in lines if line.strip()}
        assert len({len(lines[1]), len(lines[2]), len(lines[3])}) <= 2

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_union_of_x_values(self):
        text = render_series(
            "T", "x", "y",
            {"s1": [(1, 10.0), (2, 20.0)], "s2": [(2, 5.0), (3, 6.0)]},
        )
        assert "T" in text
        lines = text.splitlines()
        assert any(line.startswith("1 ") for line in lines)
        assert any(line.startswith("3 ") for line in lines)
        # Missing points rendered as '-'.
        assert "-" in lines[-1] or "-" in lines[2]

    def test_kv_block(self):
        text = render_kv("Title", {"alpha": 1, "beta_long": 2.5e-6})
        assert text.splitlines()[0] == "Title"
        assert "2.50u" in text
