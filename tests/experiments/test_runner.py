"""Tests for the single-experiment runner's bookkeeping."""

from repro.experiments.io import spec_to_dict
from repro.experiments.runner import (
    MAX_SIM_TIME,
    build_simulation,
    run_until_discovery_count,
)
from repro.experiments.scenario import Scenario
from repro.sim.events import Timeout
from repro.topology import make_mesh


class TestResultDict:
    def test_asdict_includes_family(self):
        result = Scenario(kind="change",
                          topology=spec_to_dict(make_mesh(2, 2)),
                          seed=0).run()
        info = result.asdict()
        assert info["family"] == "mesh"
        assert info["topology"] == "2x2 mesh"


class TestHorizonTimeout:
    def test_horizon_defused_after_success(self):
        setup = build_simulation(make_mesh(2, 2))
        run_until_discovery_count(setup, 1)
        # Cancellation is lazy: the horizon Timeout may linger on the
        # heap as a tombstone, but it must be cancelled so it can never
        # fire or advance the clock.
        horizons = [
            entry[3] for entry in setup.env._queue
            if isinstance(entry[3], Timeout)
            and entry[3].delay == MAX_SIM_TIME
        ]
        assert all(timeout._cancelled for timeout in horizons)

    def test_bare_run_does_not_spin_to_horizon(self):
        setup = build_simulation(make_mesh(2, 2))
        run_until_discovery_count(setup, 1)
        setup.env.run()  # drain whatever the simulation still holds
        assert setup.env.now < MAX_SIM_TIME / 2
